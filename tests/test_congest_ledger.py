"""Tests for the round ledger and tree cost model."""

from __future__ import annotations

import pytest

from repro.congest import RoundLedger, TreeCostModel


class TestRoundLedger:
    def test_total_accumulates(self):
        ledger = RoundLedger()
        ledger.charge(3, "a")
        ledger.charge(4, "b")
        assert ledger.total == 7

    def test_zero_charge_not_recorded(self):
        ledger = RoundLedger()
        ledger.charge(0, "a")
        assert ledger.total == 0
        assert not ledger.records

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge(-1, "a")

    def test_by_category(self):
        ledger = RoundLedger()
        ledger.charge(1, "stage1.fd")
        ledger.charge(2, "stage1.fd")
        ledger.charge(5, "stage2.bfs")
        assert ledger.by_category() == {"stage1.fd": 3, "stage2.bfs": 5}

    def test_by_prefix(self):
        ledger = RoundLedger()
        ledger.charge(1, "stage1.fd")
        ledger.charge(2, "stage1.cv")
        ledger.charge(5, "stage2.bfs")
        assert ledger.by_prefix() == {"stage1": 3, "stage2": 5}

    def test_merge(self):
        a, b = RoundLedger(), RoundLedger()
        a.charge(1, "x")
        b.charge(2, "y")
        a.merge(b)
        assert a.total == 3

    def test_merge_parallel_takes_max(self):
        main = RoundLedger()
        others = [RoundLedger(), RoundLedger()]
        others[0].charge(10, "p")
        others[1].charge(3, "p")
        cost = main.merge_parallel(others, "parallel")
        assert cost == 10
        assert main.total == 10

    def test_merge_parallel_empty(self):
        main = RoundLedger()
        assert main.merge_parallel([], "parallel") == 0

    def test_merge_parallel_empty_leaves_no_record(self):
        main = RoundLedger()
        main.charge(4, "before")
        main.merge_parallel([], "parallel")
        assert main.total == 4
        assert "parallel" not in main.by_category()

    def test_merge_parallel_accepts_any_iterable(self):
        main = RoundLedger()
        others = [RoundLedger(), RoundLedger()]
        others[0].charge(7, "p")
        cost = main.merge_parallel((o for o in others), "parallel")
        assert cost == 7
        (record,) = main.records
        assert record.note == "max over 2 parallel components"

    def test_merge_parallel_all_zero_totals(self):
        main = RoundLedger()
        assert main.merge_parallel([RoundLedger(), RoundLedger()], "p") == 0
        assert main.records == []

    def test_by_prefix_without_dot_uses_whole_category(self):
        ledger = RoundLedger()
        ledger.charge(3, "standalone")
        ledger.charge(2, "standalone.sub")
        assert ledger.by_prefix() == {"standalone": 5}

    def test_by_prefix_empty_ledger(self):
        assert RoundLedger().by_prefix() == {}

    def test_summary_mentions_categories(self):
        ledger = RoundLedger()
        ledger.charge(2, "alpha")
        text = ledger.summary()
        assert "alpha" in text and "2" in text

    def test_summary_empty_and_indented(self):
        assert RoundLedger().summary() == "total rounds: 0"
        ledger = RoundLedger()
        ledger.charge(1, "beta.x")
        ledger.charge(2, "alpha.y")
        text = ledger.summary(indent="  ")
        lines = text.splitlines()
        assert lines[0] == "  total rounds: 3"
        # Categories render sorted, each further indented.
        assert lines[1].strip().startswith("alpha.y")
        assert lines[2].strip().startswith("beta.x")

    def test_iteration(self):
        ledger = RoundLedger()
        ledger.charge(2, "a", "note")
        records = list(ledger)
        assert records[0].rounds == 2
        assert records[0].note == "note"


class TestTreeCostModel:
    def test_broadcast_height_zero(self):
        assert TreeCostModel().broadcast(0) == 1

    def test_broadcast_pipelines_words(self):
        model = TreeCostModel()
        assert model.broadcast(5, words=3) == 7

    def test_convergecast_pipelines_messages(self):
        model = TreeCostModel()
        assert model.convergecast(5, messages=4) == 8

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            TreeCostModel().broadcast(-1)
        with pytest.raises(ValueError):
            TreeCostModel().convergecast(-2)

    def test_super_round_composition(self):
        model = TreeCostModel()
        cost = model.super_round(height=4, alpha=3)
        expected = 1 + model.convergecast(4, messages=10) + model.broadcast(4)
        assert cost == expected

    def test_aux_relay_roundtrip(self):
        model = TreeCostModel()
        assert model.aux_message_relay(3) == (
            model.broadcast(3) + 1 + model.convergecast(3)
        )

    def test_costs_monotone_in_height(self):
        model = TreeCostModel()
        for h in range(5):
            assert model.broadcast(h + 1) >= model.broadcast(h)
            assert model.super_round(h + 1, 3) > model.super_round(h, 3)
