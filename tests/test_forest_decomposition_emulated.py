"""Tests for the emulated forest decomposition, incl. cross-validation
against the genuinely distributed protocol."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import RoundLedger
from repro.congest.programs import run_forest_decomposition_simulated
from repro.partition import (
    AuxiliaryGraph,
    Partition,
    forest_decomposition_emulated,
)


def singleton_aux(graph):
    return AuxiliaryGraph(Partition.singletons(graph))


class TestEmulated:
    def test_succeeds_on_planar(self, planar_zoo):
        for name, graph in planar_zoo:
            fd = forest_decomposition_emulated(singleton_aux(graph), alpha=3)
            assert fd.success, name

    def test_out_degree_bound(self, small_apollonian):
        fd = forest_decomposition_emulated(singleton_aux(small_apollonian), alpha=3)
        assert max(len(v) for v in fd.out_edges.values()) <= 9

    def test_orientation_acyclic(self, small_apollonian):
        fd = forest_decomposition_emulated(singleton_aux(small_apollonian), alpha=3)
        dg = nx.DiGraph(
            (u, v) for u, outs in fd.out_edges.items() for v in outs
        )
        assert nx.is_directed_acyclic_graph(dg)

    def test_rejects_high_arboricity(self):
        fd = forest_decomposition_emulated(
            singleton_aux(nx.complete_graph(14)), alpha=1
        )
        assert not fd.success
        assert len(fd.rejecting_parts) == 14

    def test_ledger_charged(self, small_grid):
        ledger = RoundLedger()
        forest_decomposition_emulated(singleton_aux(small_grid), alpha=3, ledger=ledger)
        assert ledger.total > 0
        assert "stage1.forest_decomposition" in ledger.by_category()

    def test_full_budget_vs_actual(self, small_grid):
        full = RoundLedger()
        actual = RoundLedger()
        forest_decomposition_emulated(
            singleton_aux(small_grid), alpha=3, ledger=full, charge_full_budget=True
        )
        forest_decomposition_emulated(
            singleton_aux(small_grid), alpha=3, ledger=actual, charge_full_budget=False
        )
        assert full.total >= actual.total

    def test_budget_override(self, small_grid):
        fd = forest_decomposition_emulated(singleton_aux(small_grid), alpha=3, budget=1)
        # grid: all degrees <= 4 <= 9, so one round deactivates everyone
        assert fd.success


class TestCrossValidation:
    """On singleton partitions, the emulated process must match the real
    message-passing protocol exactly (same deactivation rounds, same
    orientation)."""

    @pytest.mark.parametrize("alpha", [1, 3])
    def test_matches_simulated(self, alpha, planar_zoo):
        for name, graph in planar_zoo[:4]:
            sim = run_forest_decomposition_simulated(graph, alpha=alpha)
            emu = forest_decomposition_emulated(singleton_aux(graph), alpha=alpha)
            assert sim.success == emu.success, name
            assert sim.inactive_round == emu.inactive_round, name
            sim_out = {v: set(outs) for v, outs in sim.out_neighbors.items()}
            emu_out = {v: set(outs) for v, outs in emu.out_edges.items()}
            assert sim_out == emu_out, name

    def test_matches_simulated_on_k5(self, k5):
        sim = run_forest_decomposition_simulated(k5, alpha=3)
        emu = forest_decomposition_emulated(singleton_aux(k5), alpha=3)
        assert sim.inactive_round == emu.inactive_round
        assert {v: set(o) for v, o in sim.out_neighbors.items()} == {
            v: set(o) for v, o in emu.out_edges.items()
        }

    def test_matches_simulated_on_rejection(self):
        graph = nx.complete_graph(10)
        sim = run_forest_decomposition_simulated(graph, alpha=1)
        emu = forest_decomposition_emulated(singleton_aux(graph), alpha=1)
        assert not sim.success and not emu.success
        assert set(sim.rejecting_nodes) == set(emu.rejecting_parts)
