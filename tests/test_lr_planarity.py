"""Tests for the from-scratch LR planarity test.

networkx is used strictly as an *oracle* for the verdict; embeddings are
verified independently through Euler's formula.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import GraphInputError
from repro.planarity import check_planarity, is_planar, verify_planar_embedding


def assert_agrees_with_oracle(graph):
    mine = check_planarity(graph)
    oracle, _ = nx.check_planarity(graph)
    assert mine.is_planar == oracle
    if mine.is_planar:
        verify_planar_embedding(mine.embedding, graph)
    else:
        assert mine.embedding is None
    return mine


class TestVerdicts:
    def test_k5_not_planar(self, k5):
        assert not is_planar(k5)

    def test_k33_not_planar(self, k33):
        assert not is_planar(k33)

    def test_k4_planar(self):
        assert is_planar(nx.complete_graph(4))

    def test_petersen_not_planar(self):
        assert not is_planar(nx.petersen_graph())

    def test_planar_zoo(self, planar_zoo):
        for name, graph in planar_zoo:
            result = assert_agrees_with_oracle(graph)
            assert result.is_planar, name

    def test_far_zoo(self, far_zoo):
        for name, graph, _f in far_zoo:
            result = assert_agrees_with_oracle(graph)
            assert not result.is_planar, name

    def test_k5_subdivision_not_planar(self, k5):
        # subdivide every edge once; still a K5 subdivision
        sub = nx.Graph()
        next_id = 5
        for u, v in k5.edges():
            sub.add_edge(u, next_id)
            sub.add_edge(next_id, v)
            next_id += 1
        assert not is_planar(sub)

    def test_dense_shortcut(self):
        graph = nx.complete_graph(30)  # m >> 3n - 6: shortcut path
        assert not is_planar(graph)

    def test_named_planar_graphs(self):
        for builder in (
            nx.dodecahedral_graph,
            nx.icosahedral_graph,
            nx.frucht_graph,
            lambda: nx.wheel_graph(12),
            lambda: nx.circular_ladder_graph(9),
        ):
            assert_agrees_with_oracle(builder())

    def test_named_nonplanar_graphs(self):
        for builder in (
            nx.heawood_graph,
            nx.pappus_graph,
            nx.desargues_graph,
            lambda: nx.complete_graph(6),
            lambda: nx.hypercube_graph(4),
        ):
            graph = nx.convert_node_labels_to_integers(builder())
            assert_agrees_with_oracle(graph)


class TestEdgeCases:
    def test_empty_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = check_planarity(graph)
        assert result.is_planar
        assert result.embedding.rotation(0) == []

    def test_single_edge(self):
        result = check_planarity(nx.path_graph(2))
        assert result.is_planar
        assert result.embedding.rotation(0) == [1]

    def test_disconnected(self):
        graph = nx.union(
            nx.cycle_graph(4),
            nx.relabel_nodes(nx.complete_graph(4), {i: i + 10 for i in range(4)}),
        )
        assert_agrees_with_oracle(graph)

    def test_disconnected_with_nonplanar_component(self, k5):
        graph = nx.union(
            nx.path_graph(3),
            nx.relabel_nodes(k5, {i: i + 10 for i in range(5)}),
        )
        assert not is_planar(graph)

    def test_deep_path_no_recursion_error(self):
        assert is_planar(nx.path_graph(20000))

    def test_large_grid_embedding(self):
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(40, 40))
        result = check_planarity(graph)
        assert result.is_planar
        verify_planar_embedding(result.embedding, graph)

    def test_self_loop_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        with pytest.raises(GraphInputError):
            check_planarity(graph)

    def test_directed_rejected(self):
        with pytest.raises(GraphInputError):
            check_planarity(nx.DiGraph([(0, 1)]))

    def test_result_truthiness(self):
        assert check_planarity(nx.path_graph(3))
        assert not check_planarity(nx.complete_graph(5))


class TestRandomizedOracle:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(1, 14),
        seed=st.integers(0, 10_000),
        p=st.floats(0.05, 0.95),
    )
    def test_gnp_agrees_with_oracle(self, n, seed, p):
        graph = nx.gnp_random_graph(n, p, seed=seed)
        assert_agrees_with_oracle(graph)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(4, 30), seed=st.integers(0, 1000))
    def test_random_planar_has_valid_embedding(self, n, seed):
        from repro.graphs import random_planar

        graph = random_planar(n, seed=seed)
        result = check_planarity(graph)
        assert result.is_planar
        verify_planar_embedding(result.embedding, graph)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_near_planar_boundary(self, seed):
        # maximal planar graph plus one random edge: always non-planar
        from repro.graphs import random_apollonian
        import random

        rng = random.Random(seed)
        graph = random_apollonian(20, seed=seed)
        while True:
            u, v = rng.randrange(20), rng.randrange(20)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
                break
        assert not is_planar(graph)
