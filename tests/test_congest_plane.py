"""Differential tests: the dense message plane must not change results.

The hard requirement of the dense-index data plane: routing payloads
through flat CSR edge-slot buffers instead of per-node dict inboxes may
change only wall-clock.  For every bundled program, both instrumentation
profiles, and a seeded sweep of generated graphs, the dense plane must
produce outputs, rounds, halting behavior, message/bit totals, and
(under the faithful profile) per-round stats identical to the seed's
dict plane, which is retained precisely as this suite's reference.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import (
    BROADCAST,
    CongestNetwork,
    DenseMessagePlane,
    NodeProgram,
    PLANE_ENV_VAR,
    SlotInbox,
    compile_topology,
    resolve_plane,
)
from repro.congest.programs import (
    BFSTreeProgram,
    BroadcastStormProgram,
    FloodProgram,
    cole_vishkin_coloring,
    flood_eccentricity,
    run_bipartite_check_simulated,
    run_cycle_check_simulated,
    run_forest_decomposition_simulated,
)
from repro.congest.programs.forest_decomposition import (
    barenboim_elkin_round_budget,
)
from repro.errors import ProtocolError
from repro.graphs import make_planar

SEEDS = (0, 1, 2)
PROFILES = ("faithful", "fast")


def _identical(dict_result, dense_result, faithful=False):
    assert dict_result.outputs == dense_result.outputs
    assert dict_result.rounds == dense_result.rounds
    assert dict_result.halted == dense_result.halted
    assert dict_result.total_messages == dense_result.total_messages
    assert dict_result.total_bits == dense_result.total_bits
    assert dict_result.max_message_bits == dense_result.max_message_bits
    assert dict_result.over_budget_messages == dense_result.over_budget_messages
    if faithful:
        assert dict_result.round_stats == dense_result.round_stats


def _run_planes(graph, program, max_rounds, config, profile, seed=0):
    return [
        CongestNetwork(graph, seed=seed).run(
            program,
            max_rounds=max_rounds,
            config=config,
            strict_bandwidth=True,
            profile=profile,
            plane=plane,
        )
        for plane in ("dict", "dense")
    ]


class TestDifferentialPrograms:
    """Seeded sweep: all bundled programs x both profiles x both planes."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_bfs(self, profile):
        for seed in SEEDS:
            graph = make_planar("delaunay", 80, seed=seed)
            a, b = _run_planes(
                graph, BFSTreeProgram, graph.number_of_nodes() + 2,
                {"root": 0}, profile, seed=seed,
            )
            _identical(a, b, faithful=profile == "faithful")

    @pytest.mark.parametrize("profile", PROFILES)
    def test_flood(self, profile):
        for seed in SEEDS:
            graph = make_planar("grid", 64, seed=seed)
            a, b = _run_planes(
                graph, FloodProgram, graph.number_of_nodes() + 2,
                {"root": 0}, profile, seed=seed,
            )
            _identical(a, b, faithful=profile == "faithful")

    @pytest.mark.parametrize("profile", PROFILES)
    def test_forest_decomposition(self, profile):
        from repro.congest.programs import BarenboimElkinProgram

        for seed in SEEDS:
            graph = make_planar("apollonian", 60, seed=seed)
            budget = barenboim_elkin_round_budget(graph.number_of_nodes())
            a, b = _run_planes(
                graph, BarenboimElkinProgram, budget + 3,
                {"alpha": 3, "budget": budget}, profile, seed=seed,
            )
            _identical(a, b, faithful=profile == "faithful")

    @pytest.mark.parametrize("profile", PROFILES)
    def test_storm(self, profile):
        for seed in SEEDS:
            graph = nx.gnp_random_graph(48, 0.3, seed=seed)
            results = [
                CongestNetwork(graph, seed=seed).run(
                    BroadcastStormProgram,
                    max_rounds=8,
                    config={"storm_rounds": 6},
                    profile=profile,
                    plane=plane,
                )
                for plane in ("dict", "dense")
            ]
            _identical(*results, faithful=profile == "faithful")

    def test_stage2_verification(self, monkeypatch):
        from repro.congest.programs import run_stage2_verification_simulated
        from repro.planarity import check_planarity

        graph = make_planar("delaunay", 60, seed=3)
        rotation = check_planarity(graph).embedding.to_dict()
        for seed in SEEDS:
            per_plane = []
            for plane in ("dict", "dense"):
                monkeypatch.setenv(PLANE_ENV_VAR, plane)
                per_plane.append(
                    run_stage2_verification_simulated(
                        graph, 0, rotation, epsilon=0.2, seed=seed
                    )
                )
            a, b = per_plane
            assert a.accepted == b.accepted
            assert a.rejecting_nodes == b.rejecting_nodes
            assert a.positions == b.positions
            assert a.rounds == b.rounds

    def test_entry_points_under_env_plane(self, monkeypatch):
        """Program entry points follow REPRO_SIM_PLANE like workers do."""
        graph = make_planar("tri-grid", 60, seed=0)
        path = nx.path_graph(9)
        parents = {i: i + 1 if i < 8 else None for i in range(9)}
        per_plane = []
        for plane in ("dict", "dense"):
            monkeypatch.setenv(PLANE_ENV_VAR, plane)
            per_plane.append(
                (
                    flood_eccentricity(graph, 0),
                    cole_vishkin_coloring(path, parents),
                    run_cycle_check_simulated(graph, 0),
                    run_bipartite_check_simulated(graph, 0),
                    run_forest_decomposition_simulated(graph, alpha=3),
                )
            )
        (f_ecc, f_cv, f_cyc, f_bip, f_fd), (d_ecc, d_cv, d_cyc, d_bip, d_fd) = (
            per_plane
        )
        assert f_ecc == d_ecc
        assert f_cv == d_cv
        assert (f_cyc.accepted, f_cyc.rejecting_nodes) == (
            d_cyc.accepted,
            d_cyc.rejecting_nodes,
        )
        assert (f_bip.accepted, f_bip.rejecting_nodes) == (
            d_bip.accepted,
            d_bip.rejecting_nodes,
        )
        assert f_fd.inactive_round == d_fd.inactive_round
        assert f_fd.out_neighbors == d_fd.out_neighbors


class TestDensePlaneMechanics:
    def test_resolve_plane_defaults_and_env(self, monkeypatch):
        monkeypatch.delenv(PLANE_ENV_VAR, raising=False)
        assert resolve_plane(None) == "dense"
        monkeypatch.setenv(PLANE_ENV_VAR, "dict")
        assert resolve_plane(None) == "dict"
        assert resolve_plane("dense") == "dense"
        with pytest.raises(ValueError, match="unknown message plane"):
            resolve_plane("warp")

    def test_slot_inbox_is_a_mapping(self):
        graph = nx.path_graph(4)
        topology = compile_topology(graph)
        plane = DenseMessagePlane(topology)

        class Announce(NodeProgram):
            def step(self, round_index, inbox):
                if round_index == 0:
                    return {BROADCAST: ("hello", self.ctx.node)}
                self.seen = dict(inbox.items())
                self.length = len(inbox)
                self.halt()
                return None

        network = CongestNetwork(graph)
        result = network.run(Announce, max_rounds=3, plane="dense")
        middle = result.programs[1]
        assert middle.length == 2
        assert middle.seen == {0: ("hello", 0), 2: ("hello", 2)}

    def test_slot_inbox_lookup_and_iteration(self):
        graph = nx.star_graph(4)  # center 0, leaves 1..4
        topology = compile_topology(graph)
        plane = DenseMessagePlane(topology)
        token = 1
        # File a message from leaf 3 to the center by hand.
        slot = topology.plane_arrays().send_slot[3][0]
        plane.next_data[slot] = "payload"
        plane.next_stamp[slot] = token
        plane.next_mark[0] = token
        plane.next_count[0] = 1
        plane.swap()
        inbox = plane.inbox_view(0, token)
        assert isinstance(inbox, SlotInbox)
        assert len(inbox) == 1
        assert inbox[3] == "payload"
        assert 3 in inbox and 1 not in inbox
        assert list(inbox) == [3]
        assert inbox.items() == [(3, "payload")]
        assert inbox.values() == ["payload"]
        with pytest.raises(KeyError):
            inbox[2]

    def test_dense_fast_profile_validates_every_explicit_target(self):
        class BadSender(NodeProgram):
            def step(self, round_index, inbox):
                if round_index == 0:
                    return {self.ctx.node: "self"}  # not a neighbor
                self.halt()
                return None

        graph = nx.path_graph(3)
        with pytest.raises(ProtocolError, match="non-neighbor"):
            CongestNetwork(graph).run(
                BadSender, max_rounds=2, profile="fast", plane="dense"
            )

    def test_plane_arrays_are_consistent(self):
        graph = make_planar("grid", 36, seed=0)
        topology = compile_topology(graph)
        arrays = topology.plane_arrays()
        indptr, indices = topology.indptr, topology.indices
        for u in range(topology.n):
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                mirror = arrays.mirror[j]
                # The mirror slot lies in v's row and points back at u.
                assert indptr[v] <= mirror < indptr[v + 1]
                assert indices[mirror] == u
                assert arrays.row_owner[mirror] == v
                assert arrays.csr_ids[mirror] == topology.nodes[u]
                assert (
                    arrays.send_slot[u][topology.nodes[v]] == mirror
                )
