"""Tests for the MPX baseline partition, baseline spanners, ground truth."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import (
    bipartiteness_ground_truth,
    cluster_spanner,
    cycle_freeness_ground_truth,
    greedy_spanner,
    mpx_partition,
    planarity_ground_truth,
)
from repro.errors import GraphInputError
from repro.graphs import make_planar


class TestMPXPartition:
    def test_valid_partition(self):
        graph = make_planar("delaunay", 250, seed=1)
        result = mpx_partition(graph, beta=0.3, seed=2)
        result.partition.validate()

    def test_cut_expectation(self):
        # E[cut] <= beta * m; check across seeds with slack factor 2.
        graph = make_planar("grid", 400, seed=0)
        m = graph.number_of_edges()
        beta = 0.2
        cuts = [mpx_partition(graph, beta=beta, seed=s).cut_size for s in range(10)]
        assert sum(cuts) / len(cuts) <= 2 * beta * m

    def test_rounds_reported(self):
        graph = make_planar("grid", 200, seed=0)
        result = mpx_partition(graph, beta=0.3, seed=1)
        assert result.rounds >= result.partition.max_height()

    def test_smaller_beta_bigger_clusters(self):
        graph = make_planar("grid", 400, seed=0)
        fine = mpx_partition(graph, beta=0.9, seed=3)
        coarse = mpx_partition(graph, beta=0.05, seed=3)
        assert coarse.partition.size <= fine.partition.size

    def test_invalid_beta(self, small_grid):
        with pytest.raises(GraphInputError):
            mpx_partition(small_grid, beta=0)
        with pytest.raises(GraphInputError):
            mpx_partition(small_grid, beta=1.5)

    def test_deterministic(self):
        graph = make_planar("delaunay", 150, seed=2)
        a = mpx_partition(graph, beta=0.3, seed=9)
        b = mpx_partition(graph, beta=0.3, seed=9)
        assert {p: sorted(part.nodes) for p, part in a.partition.parts.items()} == {
            p: sorted(part.nodes) for p, part in b.partition.parts.items()
        }


class TestBaselineSpanners:
    def test_cluster_spanner_spans(self):
        graph = make_planar("delaunay", 200, seed=3)
        spanner, result = cluster_spanner(graph, beta=0.3, seed=1)
        assert nx.is_connected(spanner)
        assert set(spanner.nodes()) == set(graph.nodes())

    def test_greedy_spanner_stretch_guarantee(self):
        graph = make_planar("grid", 100, seed=0)
        spanner = greedy_spanner(graph, stretch=3)
        for u, v in graph.edges():
            assert nx.shortest_path_length(spanner, u, v) <= 3

    def test_greedy_spanner_sparser_than_input(self):
        graph = make_planar("apollonian", 100, seed=1)
        spanner = greedy_spanner(graph, stretch=5)
        assert spanner.number_of_edges() < graph.number_of_edges()

    def test_greedy_stretch_one_keeps_everything(self):
        graph = nx.cycle_graph(8)
        spanner = greedy_spanner(graph, stretch=1)
        assert spanner.number_of_edges() == graph.number_of_edges()

    def test_greedy_even_stretch_rejected(self, small_grid):
        with pytest.raises(GraphInputError):
            greedy_spanner(small_grid, stretch=4)


class TestGroundTruth:
    def test_planarity(self, k5, small_grid):
        assert planarity_ground_truth(small_grid)
        assert not planarity_ground_truth(k5)

    def test_cycle_freeness(self):
        assert cycle_freeness_ground_truth(nx.random_labeled_tree(20, seed=0))
        assert not cycle_freeness_ground_truth(nx.cycle_graph(5))

    def test_bipartiteness(self, small_grid, small_tri_grid):
        assert bipartiteness_ground_truth(small_grid)
        assert not bipartiteness_ground_truth(small_tri_grid)
