"""Differential suite: the batched tensor plane vs. the scalar dense plane.

The batched engine's contract is *bit identity* with the scalar dense
plane under the ``fast`` profile, per trial: outputs, round counts,
halting, message/bit ledger totals, ``max_message_bits``, bandwidth
budgets, and over-budget counts.  This suite certifies it across every
bundled generator (planar and far-from-planar families) for all five
vectorized programs, including ragged batches with padded CSR and
trials that halt mid-batch, plus the strict-bandwidth abort path.
"""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.congest import (
    BatchTopology,
    CongestNetwork,
    batch_kernels,
    compile_topology,
    pad_groups,
    run_batched,
)
from repro.congest.batch import BIG
from repro.congest.programs import (
    BFSTreeProgram,
    BarenboimElkinProgram,
    BroadcastStormProgram,
    FloodProgram,
)
from repro.congest.programs.cole_vishkin import (
    ColeVishkinProgram,
    cv_schedule,
    min_neighbor_parents,
)
from repro.congest.programs.forest_decomposition import (
    barenboim_elkin_round_budget,
)
from repro.congest.xp import get_xp, int_bit_length
from repro.errors import BandwidthExceededError
from repro.graphs.far_from_planar import FAR_FAMILIES, make_far
from repro.graphs.generators import PLANAR_FAMILIES, make_planar

PROGRAMS = ("flood", "bfs", "forest", "cv", "storm")

RESULT_FIELDS = (
    "rounds",
    "halted",
    "total_messages",
    "total_bits",
    "max_message_bits",
    "bandwidth_bits",
    "over_budget_messages",
    "profile",
)

STORM_ROUNDS = 5


def scalar_reference(program, graph, bandwidth_bits=None):
    """Run *program* on the scalar dense plane exactly as jobs do."""
    network = CongestNetwork(graph, bandwidth_bits=bandwidth_bits, seed=0)
    root = min(graph.nodes())
    if program == "flood":
        return network.run(
            FloodProgram,
            max_rounds=network.n + 2,
            config={"root": root},
            strict_bandwidth=True,
            profile="fast",
        )
    if program == "bfs":
        return network.run(
            BFSTreeProgram,
            max_rounds=network.n + 2,
            config={"root": root},
            strict_bandwidth=True,
            profile="fast",
        )
    if program == "forest":
        budget = barenboim_elkin_round_budget(network.n)
        return network.run(
            BarenboimElkinProgram,
            max_rounds=budget + 3,
            config={"alpha": 3, "budget": budget},
            strict_bandwidth=True,
            profile="fast",
        )
    if program == "cv":
        schedule = cv_schedule(max(graph.nodes(), default=1))
        return network.run(
            ColeVishkinProgram,
            max_rounds=len(schedule) + 3,
            config={
                "parents": min_neighbor_parents(graph),
                "schedule": schedule,
            },
            strict_bandwidth=True,
            profile="fast",
        )
    assert program == "storm"
    return network.run(
        BroadcastStormProgram,
        max_rounds=STORM_ROUNDS + 2,
        config={"storm_rounds": STORM_ROUNDS},
        profile="fast",
    )


def assert_trial_identical(program, graph, batched, bandwidth_bits=None):
    scalar = scalar_reference(program, graph, bandwidth_bits=bandwidth_bits)
    for field in RESULT_FIELDS:
        assert getattr(batched, field) == getattr(scalar, field), (
            program,
            graph.number_of_nodes(),
            field,
            getattr(batched, field),
            getattr(scalar, field),
        )
    assert batched.outputs == scalar.outputs, (
        program,
        graph.number_of_nodes(),
    )


@pytest.fixture(scope="module")
def generator_zoo():
    """One small instance per bundled generator, two seeds each (ragged)."""
    graphs = []
    for family in sorted(PLANAR_FAMILIES):
        for seed in (0, 1):
            graphs.append(make_planar(family, 40, seed=seed))
    for family in sorted(FAR_FAMILIES):
        for seed in (0, 1):
            graph, _farness = make_far(family, 40, seed=seed)
            graphs.append(graph)
    return graphs


@pytest.mark.parametrize("program", PROGRAMS)
def test_bit_identical_across_all_generators(program, generator_zoo):
    """Every bundled generator, as one ragged batch, per-trial identical."""
    params = {"alpha": 3, "storm_rounds": STORM_ROUNDS}
    results = run_batched(program, generator_zoo, params=params)
    assert len(results) == len(generator_zoo)
    for graph, batched in zip(generator_zoo, results):
        assert_trial_identical(program, graph, batched)


@pytest.mark.parametrize("program", PROGRAMS)
def test_mid_batch_halting(program):
    """Trials of wildly different durations drop out without resizing."""
    graphs = [
        nx.path_graph(60),  # long flood: ~61 rounds
        nx.complete_graph(8),  # finishes in a handful of rounds
        nx.empty_graph(6),  # isolated nodes: degree-0 edge cases
        nx.path_graph(3),
        nx.disjoint_union(nx.path_graph(10), nx.path_graph(5)),  # unreachable
    ]
    params = {"alpha": 3, "storm_rounds": STORM_ROUNDS}
    results = run_batched(program, graphs, params=params)
    rounds = {r.rounds for r in results}
    if program in ("flood", "bfs"):
        assert len(rounds) > 2, "expected staggered halting across the batch"
    for graph, batched in zip(graphs, results):
        assert_trial_identical(program, graph, batched)


def test_identical_topologies_share_one_compilation():
    """B copies of one pinned graph batch against a single topology."""
    graph = nx.gnp_random_graph(30, 0.2, seed=5)
    topology = compile_topology(graph)
    results = run_batched("storm", [topology] * 16, params={"storm_rounds": 4})
    assert len(results) == 16
    first = results[0]
    for batched in results[1:]:
        assert batched.outputs == first.outputs
        assert batched.total_bits == first.total_bits
    scalar = CongestNetwork(graph, seed=0).run(
        BroadcastStormProgram,
        max_rounds=4 + 2,
        config={"storm_rounds": 4},
        profile="fast",
    )
    assert first.outputs == scalar.outputs
    assert first.total_messages == scalar.total_messages


def test_strict_bandwidth_raises_identically():
    """Both planes abort with the same sender/bits/budget under strict."""
    graph = nx.path_graph(8)
    topology = compile_topology(graph)
    topology.bandwidth_bits = 3  # below any flood payload
    with pytest.raises(BandwidthExceededError) as batched_exc:
        run_batched("flood", [topology])
    with pytest.raises(BandwidthExceededError) as scalar_exc:
        scalar_reference("flood", graph, bandwidth_bits=3)
    assert batched_exc.value.args == scalar_exc.value.args


def test_over_budget_counts_match_non_strict():
    """The storm (non-strict) counts over-budget messages identically."""
    graph = nx.gnp_random_graph(20, 0.3, seed=9)
    topology = compile_topology(graph)
    topology.bandwidth_bits = 3
    (batched,) = run_batched(
        "storm", [topology], params={"storm_rounds": STORM_ROUNDS}
    )
    scalar = scalar_reference("storm", graph, bandwidth_bits=3)
    assert batched.over_budget_messages == scalar.over_budget_messages > 0
    assert batched.total_bits == scalar.total_bits


def test_unknown_program_rejected():
    with pytest.raises(ValueError, match="no batch kernel"):
        run_batched("gossip", [nx.path_graph(3)])
    assert set(batch_kernels()) == set(PROGRAMS)


def test_int_bit_length_matches_python():
    xp = get_xp()
    values = list(range(0, 70)) + [2**k for k in range(1, 50)] + [
        2**k - 1 for k in range(2, 50)
    ]
    got = int_bit_length(np.array(values, dtype=np.int64), xp)
    want = [v.bit_length() for v in values]
    assert got.tolist() == want


def test_pad_groups_partitions_and_bounds():
    graphs = [nx.path_graph(n) for n in (4, 5, 6, 500, 510, 7, 8)]
    topologies = [compile_topology(g) for g in graphs]
    groups = pad_groups(topologies, limit=3, waste=4.0)
    covered = sorted(i for group in groups for i in group)
    assert covered == list(range(len(topologies)))
    for group in groups:
        assert 1 <= len(group) <= 3
        slots = [max(1, 2 * topologies[i].m) for i in group]
        assert max(slots) <= 4.0 * min(slots)
    with pytest.raises(ValueError):
        pad_groups(topologies, limit=0)


def test_reduce_fallback_matches_reduceat():
    """The scatter (`ufunc.at`) formulation = the reduceat one (cupy path)."""
    graphs = [nx.gnp_random_graph(15, 0.3, seed=s) for s in (0, 1)] + [
        nx.empty_graph(4)
    ]
    xp = get_xp()
    batch = BatchTopology(graphs)
    rng = np.random.default_rng(0)
    values = xp.asarray(
        rng.integers(0, 50, size=(batch.B, batch.slots_alloc), dtype=np.int64)
    )
    mins = batch.reduce_min(xp.where(values > 25, values, BIG))
    sums = batch.reduce_sum(values)
    batch._use_reduceat = False
    mins_fallback = batch.reduce_min(xp.where(values > 25, values, BIG))
    sums_fallback = batch.reduce_sum(values)
    assert (mins == mins_fallback).all()
    assert (sums == sums_fallback).all()


def test_batched_plane_matches_dict_plane_fixture():
    """Three-way agreement: batched == dense == the dict-plane fixture."""
    graph = nx.gnp_random_graph(25, 0.2, seed=3)
    network = CongestNetwork(graph, seed=0)
    dict_result = network.run(
        BFSTreeProgram,
        max_rounds=network.n + 2,
        config={"root": min(graph.nodes())},
        strict_bandwidth=True,
        profile="fast",
        plane="dict",
    )
    (batched,) = run_batched("bfs", [graph])
    assert batched.outputs == dict_result.outputs
    assert batched.rounds == dict_result.rounds
    assert batched.total_messages == dict_result.total_messages
    assert batched.total_bits == dict_result.total_bits


def test_dict_plane_is_a_fixture_module_now():
    """Satellite: the dict loop lives in _differential, not the network."""
    from repro.congest import _differential

    assert callable(_differential.run_dict_plane)
    assert not hasattr(CongestNetwork, "_run_dict_plane")
