"""Binary shard format: mixed directories, migration, index sidecars.

The companion of ``test_runtime_store.py``: that file pins the store's
format-agnostic contract (and runs on the default ``rbin`` format);
this one pins what is *specific* to the binary format -- raw-bytes
append/read (the zero-copy splice the wire protocol rides), ``.idx``
sidecar seeding, ``.jsonl``/``.rbin`` coexistence in one directory,
the ``migrate()`` upgrade/downgrade path, and the binary mirrors of
the concurrent-writer and GC-during-write suites pinned explicitly to
``record_format="rbin"`` so they keep covering binary shards even if
the default or ``REPRO_STORE_FORMAT`` changes.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.runtime import ShardedStore
from repro.runtime.codec import (
    ShapeRegistry,
    UnknownShapeError,
    decode_record,
    encode_record,
)
from repro.runtime.store import (
    FORMAT_ENV_VAR,
    FORMAT_JSONL,
    FORMAT_RBIN,
    count_record_entries,
    resolve_format,
)

# -- format resolution --------------------------------------------------------


def test_format_resolution_order(monkeypatch):
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
    assert resolve_format(None, None) == FORMAT_RBIN
    assert resolve_format(None, FORMAT_JSONL) == FORMAT_JSONL
    assert resolve_format(FORMAT_RBIN, FORMAT_JSONL) == FORMAT_RBIN
    monkeypatch.setenv(FORMAT_ENV_VAR, FORMAT_JSONL)
    assert resolve_format(None, None) == FORMAT_JSONL
    # persisted (store.json) beats the environment: an existing store
    # keeps its format no matter who opens it
    assert resolve_format(None, FORMAT_RBIN) == FORMAT_RBIN


def test_persisted_format_survives_reopen(tmp_path, monkeypatch):
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
    store = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    store.put("k", {"v": 1})
    monkeypatch.setenv(FORMAT_ENV_VAR, FORMAT_RBIN)
    reopened = ShardedStore(tmp_path / "s")
    assert reopened.format == FORMAT_JSONL
    assert reopened.get("k") == {"v": 1}


def test_invalid_format_rejected(tmp_path):
    with pytest.raises(ValueError):
        ShardedStore(tmp_path / "s", record_format="parquet")


# -- raw byte append / read (the zero-copy splice) ----------------------------


def test_put_raw_get_raw_round_trip(tmp_path):
    store = ShardedStore(tmp_path / "s")
    record = {"rounds": 12, "planar": True, "eps": 0.5}
    payload, _shape = encode_record(record)
    store.put_raw("k", payload)
    assert bytes(store.get_raw("k")) == payload
    assert store.get("k") == record
    # and the raw bytes a fresh process reads back are the same bytes
    assert bytes(ShardedStore(tmp_path / "s").get_raw("k")) == payload


def test_put_raw_rejects_unregistered_shape(tmp_path):
    store = ShardedStore(tmp_path / "s")
    foreign = ShapeRegistry()
    payload, _shape = encode_record({"zz": 1}, foreign)
    # the shape never reached the process-global registry via a wire
    # frame or a shard scan: appending would write undecodable bytes
    local_payload = bytes(payload[:8][::-1]) + payload[8:]  # unknown id
    with pytest.raises(UnknownShapeError):
        store.put_raw("k", local_payload)


def test_put_raw_on_jsonl_store_degrades_to_decode(tmp_path):
    store = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    record = {"v": 7, "name": "x"}
    payload, _shape = encode_record(record)
    store.put_raw("k", payload)  # jsonl shards cannot splice bytes
    assert store.get("k") == record
    from repro.runtime.store import shard_of_key

    shard_id = shard_of_key("k", store.shards)
    assert (tmp_path / "s" / "shard-{:02d}.jsonl".format(shard_id)).exists()
    assert not (tmp_path / "s" / "shard-{:02d}.rbin".format(shard_id)).exists()


def test_get_raw_returns_none_for_jsonl_source(tmp_path):
    jsonl = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    jsonl.put("k", {"v": 1})
    assert jsonl.get_raw("k") is None  # no packed bytes exist for it
    assert jsonl.get("k") == {"v": 1}


# -- mixed directories --------------------------------------------------------


def test_mixed_directory_reads_both_formats(tmp_path):
    legacy = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    for i in range(8):
        legacy.put(f"old-{i}", {"v": i, "src": "jsonl"})
    # flip the store to binary: old keys stay readable, new appends
    # land in .rbin shards beside the .jsonl ones
    store = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
    for i in range(8):
        store.put(f"new-{i}", {"v": i, "src": "rbin"})
    fresh = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
    for i in range(8):
        assert fresh.get(f"old-{i}") == {"v": i, "src": "jsonl"}
        assert fresh.get(f"new-{i}") == {"v": i, "src": "rbin"}
    assert len(fresh) == 16
    assert count_record_entries(tmp_path / "s") == 16


def test_mixed_directory_newest_wins_across_formats(tmp_path):
    legacy = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    legacy.put("k", {"gen": "old"})
    store = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
    store.put("k", {"gen": "new"})
    assert ShardedStore(tmp_path / "s").get("k") == {"gen": "new"}
    # compaction folds the loser away entirely
    report = store.gc()
    assert report.entries_kept == 1
    assert ShardedStore(tmp_path / "s").get("k") == {"gen": "new"}


# -- migration ----------------------------------------------------------------


def _fill(store, count=30):
    expected = {}
    for i in range(count):
        record = {"v": i, "family": "grid", "rounds": float(i) / 3}
        store.put(f"key-{i}", record)
        expected[f"key-{i}"] = record
    store.put_meta("cost:test:36", {"kind": "test", "n": 36, "count": 2.0,
                                    "total_s": 1.0, "mean_s": 0.5})
    return expected


def test_migrate_jsonl_to_rbin_round_trip(tmp_path, monkeypatch):
    monkeypatch.delenv(FORMAT_ENV_VAR, raising=False)
    legacy = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    expected = _fill(legacy)
    legacy.put("key-0", expected["key-0"])  # a dead duplicate to drop
    before = dict(_dump(legacy))

    migrator = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
    report = migrator.migrate()
    assert report.format == FORMAT_RBIN
    assert report.entries == len(expected)
    assert report.meta_entries == 1
    assert not list((tmp_path / "s").glob("shard-*.jsonl"))

    # a fresh opener resolves rbin from store.json, no env needed
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.format == FORMAT_RBIN
    assert dict(_dump(fresh)) == before == expected
    assert fresh.get_meta("cost:test:36")["mean_s"] == 0.5
    for key in expected:
        assert fresh.get_raw(key) is not None  # now spliceable bytes


def test_migrate_rbin_to_jsonl_downgrade(tmp_path):
    store = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
    expected = _fill(store, count=10)
    down = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    report = down.migrate()
    assert report.format == FORMAT_JSONL
    assert not list((tmp_path / "s").glob("shard-*.rbin"))
    assert not list((tmp_path / "s").glob("shard-*.idx"))
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.format == FORMAT_JSONL
    assert dict(_dump(fresh)) == expected


def _dump(store):
    for key, _stamp, record in store.dump():
        yield key, record


def test_migrate_preserves_stamps(tmp_path):
    legacy = ShardedStore(tmp_path / "s", record_format=FORMAT_JSONL)
    legacy.put("k", {"v": 1})
    stamps_before = {key: stamp for key, stamp, _r in legacy.dump()}
    migrator = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
    migrator.migrate()
    stamps_after = {
        key: stamp for key, stamp, _r in ShardedStore(tmp_path / "s").dump()
    }
    assert stamps_after == stamps_before


# -- index sidecars -----------------------------------------------------------


def test_compaction_writes_idx_and_fresh_open_seeds_from_it(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=2)
    _fill(store, count=40)
    store.gc()  # compaction rewrites shards + sidecar indexes
    idx_files = list((tmp_path / "s").glob("shard-*.idx"))
    assert idx_files

    fresh = ShardedStore(tmp_path / "s")
    for i in range(40):
        assert fresh.get(f"key-{i}") is not None
    assert fresh.stats.index_hits > 0
    assert fresh.stats.index_misses == 0


def test_corrupt_idx_falls_back_to_full_scan(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=2)
    _fill(store, count=20)
    store.gc()
    for idx in (tmp_path / "s").glob("shard-*.idx"):
        idx.write_bytes(b"RIDX\x01" + b"\x00" * 10)  # valid magic, bad body
    fresh = ShardedStore(tmp_path / "s")
    for i in range(20):
        assert fresh.get(f"key-{i}") is not None, "fallback scan lost a key"
    assert fresh.stats.index_hits == 0


def test_stale_idx_ignored_after_further_appends(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1)
    _fill(store, count=10)
    store.gc()
    # appends after the rewrite: the sidecar no longer matches the
    # data size it recorded, so a fresh open must scan, not seed
    store.put("late", {"v": 99})
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.get("late") == {"v": 99}
    for i in range(10):
        assert fresh.get(f"key-{i}") is not None


# -- torn tails and corruption ------------------------------------------------


def test_torn_binary_tail_degrades_to_miss(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1)
    store.put("a", {"v": 1})
    store.put("b", {"v": 2})
    path = tmp_path / "s" / "shard-00.rbin"
    blob = path.read_bytes()
    path.write_bytes(blob[:-3])  # crash mid-append on the last entry
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.get("a") == {"v": 1}
    assert fresh.get("b") is None  # torn, not resurrected
    fresh.put("b", {"v": 3})  # overwrite repairs the shard
    assert ShardedStore(tmp_path / "s").get("b") == {"v": 3}


def test_garbage_between_entries_resyncs(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1)
    store.put("a", {"v": 1})
    path = tmp_path / "s" / "shard-00.rbin"
    with path.open("ab") as handle:
        handle.write(b"\x00\xffgarbage-from-a-crashed-writer")
    store2 = ShardedStore(tmp_path / "s")
    store2.put("b", {"v": 2})
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.get("a") == {"v": 1}
    assert fresh.get("b") == {"v": 2}


# -- binary mirrors of the concurrency suites ---------------------------------


def _bin_writer_process(root, start, barrier, count):
    store = ShardedStore(root, shards=2, record_format=FORMAT_RBIN)
    barrier.wait()  # maximize interleaving
    for index in range(start, start + count):
        store.put(f"key-{index}", {"writer": start, "v": index})


def test_concurrent_binary_writers_share_one_index(tmp_path):
    root = tmp_path / "s"
    ShardedStore(root, shards=2, record_format=FORMAT_RBIN).put(
        "seed", {"v": -1}
    )
    count = 200
    barrier = multiprocessing.Barrier(2)
    procs = [
        multiprocessing.Process(
            target=_bin_writer_process, args=(root, start, barrier, count)
        )
        for start in (0, count)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0
    store = ShardedStore(root)
    assert len(store) == 2 * count + 1
    for index in range(2 * count):
        assert store.get(f"key-{index}") == {
            "writer": 0 if index < count else count,
            "v": index,
        }
    # every persisted entry parses: no interleaved or torn appends
    assert count_record_entries(root) == 2 * count + 1


def test_concurrent_binary_writer_during_gc_loses_nothing(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=2, record_format=FORMAT_RBIN)
    store.put("seed", {"v": -1})
    stop = threading.Event()
    written = []

    def writer():
        peer = ShardedStore(tmp_path / "s")
        index = 0
        while not stop.is_set() and index < 300:
            peer.put(f"w{index}", {"v": index})
            written.append(f"w{index}")
            index += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(10):
            store.gc(ttl=3600.0)
    finally:
        stop.set()
        thread.join()
    store.gc(ttl=3600.0)
    reader = ShardedStore(tmp_path / "s")
    for key in written:
        assert reader.get(key) is not None, f"gc lost {key}"
    assert reader.get("seed") == {"v": -1}


def test_migrate_racing_writer_loses_nothing(tmp_path):
    legacy = ShardedStore(tmp_path / "s", shards=2,
                          record_format=FORMAT_JSONL)
    for i in range(50):
        legacy.put(f"pre-{i}", {"v": i})
    stop = threading.Event()
    written = []

    def writer():
        peer = ShardedStore(tmp_path / "s")
        index = 0
        while not stop.is_set() and index < 200:
            peer.put(f"mid-{index}", {"v": index})
            written.append(f"mid-{index}")
            index += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        migrator = ShardedStore(tmp_path / "s", record_format=FORMAT_RBIN)
        migrator.migrate()
    finally:
        stop.set()
        thread.join()
    reader = ShardedStore(tmp_path / "s")
    for i in range(50):
        assert reader.get(f"pre-{i}") == {"v": i}
    for key in written:
        assert reader.get(key) is not None, f"migrate lost {key}"


def test_raw_appends_decode_identically_cross_process(tmp_path):
    """put_raw bytes written by one process decode in another purely
    from the shard stream (shape defs travel inside the file)."""
    payloads = {}
    store = ShardedStore(tmp_path / "s")
    for i in range(10):
        record = {"idx": i, "label": f"r{i}", "frac": i / 7}
        payload, _shape = encode_record(record)
        store.put_raw(f"k{i}", payload)
        payloads[f"k{i}"] = (payload, record)

    def reader_process(root, queue):
        peer = ShardedStore(root)
        raws = {}
        for i in range(10):
            raw = peer.get_raw(f"k{i}")
            raws[f"k{i}"] = bytes(raw) if raw is not None else None
        queue.put(raws)

    queue = multiprocessing.Queue()
    proc = multiprocessing.Process(
        target=reader_process, args=(tmp_path / "s", queue)
    )
    proc.start()
    raws = queue.get(timeout=30)
    proc.join()
    assert proc.exitcode == 0
    for key, (payload, record) in payloads.items():
        assert raws[key] == payload
        assert decode_record(raws[key]) == record
