"""Compiled topologies (repro.congest.topology) and their reuse paths."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import (
    CompiledTopology,
    CongestNetwork,
    compile_topology,
    default_bandwidth_bits,
    reset_topology_stats,
    topology_stats,
)
from repro.errors import GraphInputError
from repro.runtime import JobSpec, ResultCache, SerialBackend, run_jobs


class TestCompiledTopology:
    def test_dense_indices_follow_sorted_ids(self):
        graph = nx.Graph([(10, 3), (3, 7), (7, 10)])
        topo = CompiledTopology(graph)
        assert topo.nodes == (3, 7, 10)
        assert topo.index == {3: 0, 7: 1, 10: 2}

    def test_csr_rows_match_sorted_adjacency(self):
        graph = nx.path_graph(5)
        graph.add_edge(0, 4)
        topo = CompiledTopology(graph)
        for v in graph.nodes():
            i = topo.index[v]
            row = list(topo.neighbor_indices(i))
            expected = [topo.index[w] for w in sorted(graph.neighbors(v))]
            assert row == expected
            assert topo.neighbor_index_sets[i] == frozenset(expected)

    def test_neighbor_tuples_and_sets(self):
        graph = nx.cycle_graph(6)
        topo = CompiledTopology(graph)
        for v in graph.nodes():
            assert topo.neighbors[v] == tuple(sorted(graph.neighbors(v)))
            assert topo.neighbor_sets[v] == set(graph.neighbors(v))

    def test_degree_table(self):
        graph = nx.star_graph(4)  # center 0 with 4 leaves
        topo = CompiledTopology(graph)
        assert topo.degree(0) == 4
        assert all(topo.degree(v) == 1 for v in range(1, 5))
        assert list(topo.degrees) == [4, 1, 1, 1, 1]

    def test_bandwidth_budget_precomputed(self):
        graph = nx.path_graph(9)
        topo = CompiledTopology(graph)
        assert topo.bandwidth_bits == default_bandwidth_bits(9)

    def test_validation_moved_into_topology(self):
        with pytest.raises(GraphInputError):
            CompiledTopology(nx.DiGraph([(0, 1)]))
        with pytest.raises(GraphInputError):
            CompiledTopology(nx.Graph())
        loop = nx.Graph()
        loop.add_edge(0, 0)
        with pytest.raises(GraphInputError):
            CompiledTopology(loop)
        with pytest.raises(GraphInputError):
            CompiledTopology(nx.MultiGraph([(0, 1), (0, 1)]))


class TestCompileMemo:
    def test_same_graph_object_compiles_once(self):
        reset_topology_stats()
        graph = nx.cycle_graph(8)
        first = compile_topology(graph)
        second = compile_topology(graph)
        assert first is second
        stats = topology_stats()
        assert stats.compiled == 1
        assert stats.reused == 1

    def test_mutated_graph_recompiles(self):
        # Memo hits whose node/edge counts drifted are stale and must
        # recompile (same-count rewires remain the caller's problem).
        graph = nx.path_graph(4)
        first = compile_topology(graph)
        graph.add_edge(0, 3)
        second = compile_topology(graph)
        assert second is not first
        assert second.neighbor_sets[0] == {1, 3}
        assert compile_topology(graph) is second

    def test_distinct_objects_compile_separately(self):
        reset_topology_stats()
        compile_topology(nx.cycle_graph(8))
        compile_topology(nx.cycle_graph(8))
        assert topology_stats().compiled == 2

    def test_networks_share_topology(self):
        graph = nx.path_graph(6)
        net1 = CongestNetwork(graph)
        net2 = CongestNetwork(graph, seed=3)
        assert net1.topology is net2.topology

    def test_explicit_topology_accepted(self):
        graph = nx.path_graph(4)
        topo = compile_topology(graph)
        net = CongestNetwork(topology=topo)
        assert net.graph is graph
        assert net.n == 4

    def test_mismatched_topology_rejected(self):
        topo = compile_topology(nx.path_graph(4))
        with pytest.raises(GraphInputError):
            CongestNetwork(nx.path_graph(4), topology=topo)

    def test_network_requires_graph_or_topology(self):
        with pytest.raises(GraphInputError):
            CongestNetwork()


class TestRuntimeTopologyReuse:
    def _trial_specs(self, trials):
        # Same graph coordinates across all trials; distinct configs so
        # nothing deduplicates away.
        return [
            JobSpec.make(
                "simulate_program",
                family="grid",
                n=25,
                seed=0,
                program="bfs",
                trial=trial,
            )
            for trial in range(trials)
        ]

    def test_cached_sweep_compiles_topology_once(self):
        reset_topology_stats()
        batch = run_jobs(
            self._trial_specs(4), backend=SerialBackend(), cache=ResultCache()
        )
        assert batch.executed == 4
        assert topology_stats().compiled == 1  # acceptance criterion

    def test_uncached_sweep_compiles_topology_once(self):
        reset_topology_stats()
        batch = run_jobs(self._trial_specs(3), backend=SerialBackend())
        assert batch.executed == 3
        assert topology_stats().compiled == 1

    def test_graph_seed_splits_topologies(self):
        # delaunay generation is seed-sensitive (grid is not), so two
        # graph seeds really are two topologies.
        reset_topology_stats()
        specs = [
            JobSpec.make(
                "simulate_program",
                family="delaunay",
                n=25,
                seed=7,
                graph_seed=graph_seed,
                program="bfs",
            )
            for graph_seed in (0, 0, 1)
        ]
        run_jobs(specs, backend=SerialBackend(), cache=ResultCache())
        assert topology_stats().compiled == 2  # one per distinct graph


class TestGraphSeed:
    def test_graph_seed_defaults_to_seed(self):
        spec = JobSpec.make("test_planarity", family="grid", n=16, seed=5)
        assert spec.graph_seed is None
        assert spec.effective_graph_seed == 5

    def test_graph_seed_overrides_generation(self):
        pinned = JobSpec.make(
            "test_planarity", family="delaunay", n=32, seed=9, graph_seed=2
        )
        reference = JobSpec.make(
            "test_planarity", family="delaunay", n=32, seed=2
        )
        assert nx.utils.graphs_equal(
            pinned.build_graph(), reference.build_graph()
        )

    def test_canonical_unchanged_when_unset(self):
        spec = JobSpec.make("test_planarity", family="grid", n=16, seed=5)
        assert "graph_seed" not in spec.canonical()

    def test_canonical_includes_graph_seed_when_set(self):
        spec = JobSpec.make(
            "test_planarity", family="grid", n=16, seed=5, graph_seed=1
        )
        assert '"graph_seed":1' in spec.canonical()
