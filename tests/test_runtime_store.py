"""Sharded single-index disk store (repro.runtime.store)."""

from __future__ import annotations

import multiprocessing
import os

from repro.runtime import JobSpec, ResultCache, ShardedStore, run_jobs
from repro.runtime.store import count_record_entries, shard_of_key

def test_round_trip_and_miss(tmp_path):
    store = ShardedStore(tmp_path / "s")
    assert store.get("missing") is None
    store.put("k1", {"rounds": 7, "ok": True})
    assert store.get("k1") == {"rounds": 7, "ok": True}
    assert len(store) == 1
    assert store.stats.appends == 1
    assert store.stats.hits == 1

def test_newest_wins_and_compaction(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1, record_format="jsonl")
    for version in range(5):
        store.put("k", {"v": version})
    assert store.get("k") == {"v": 4}
    report = store.compact()
    assert report.entries_removed == 0  # dedup is not eviction
    assert report.bytes_reclaimed > 0  # four stale lines dropped
    # The shard file now holds exactly one live line.
    shard_path = tmp_path / "s" / "shard-00.jsonl"
    lines = shard_path.read_bytes().splitlines()
    assert len(lines) == 1
    assert store.get("k") == {"v": 4}

def test_eviction_cap_reports_counts(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1, max_entries=3)
    for index in range(8):
        store.put(f"key-{index}", {"v": index})
    store.compact()
    assert len(store) <= 3
    assert store.stats.evicted_entries >= 5
    assert store.stats.bytes_reclaimed > 0
    # The *newest* entries survive (recency order eviction).
    assert store.get("key-7") == {"v": 7}

def test_fresh_instance_reads_existing_store(tmp_path):
    first = ShardedStore(tmp_path / "s", shards=4)
    first.put("a", {"v": 1})
    second = ShardedStore(tmp_path / "s")
    assert second.shards == 4  # persisted in store.json
    assert second.get("a") == {"v": 1}

def test_incremental_refresh_sees_other_writers(tmp_path):
    writer = ShardedStore(tmp_path / "s", shards=1)
    reader = ShardedStore(tmp_path / "s", shards=1)
    writer.put("a", {"v": 1})
    assert reader.get("a") == {"v": 1}
    writer.put("b", {"v": 2})  # appended after the reader's first scan
    assert reader.get("b") == {"v": 2}

def test_corrupt_lines_degrade_to_misses(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1, record_format="jsonl")
    store.put("good", {"v": 1})
    shard_path = tmp_path / "s" / "shard-00.jsonl"
    with open(shard_path, "ab") as handle:
        handle.write(b"{not json}\n")
        handle.write(b'{"k": "torn", "r": {"v"')  # no trailing newline
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.get("good") == {"v": 1}
    assert fresh.get("torn") is None

def test_clear_reports_entries_and_bytes(tmp_path):
    store = ShardedStore(tmp_path / "s")
    for index in range(6):
        store.put(f"k{index}", {"v": index})
    report = store.clear()
    assert report.entries_removed == 6
    assert report.bytes_reclaimed > 0
    assert len(store) == 0
    assert store.get("k0") is None

def _writer_process(root, start, barrier, count):
    store = ShardedStore(root, shards=2)
    barrier.wait()  # maximize interleaving
    for index in range(start, start + count):
        store.put(f"key-{index}", {"writer": start, "v": index})

def test_concurrent_writers_share_one_index(tmp_path):
    """Two processes appending to the same shards: no torn or lost lines."""
    root = tmp_path / "s"
    ShardedStore(root, shards=2).put("seed", {"v": -1})
    count = 200
    barrier = multiprocessing.Barrier(2)
    procs = [
        multiprocessing.Process(
            target=_writer_process, args=(root, start, barrier, count)
        )
        for start in (0, count)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0
    store = ShardedStore(root)
    assert len(store) == 2 * count + 1
    for index in range(2 * count):
        assert store.get(f"key-{index}") == {
            "writer": 0 if index < count else count,
            "v": index,
        }
    # Every persisted entry parses (no interleaved or torn writes):
    # one physical record per append, nothing lost to resync.
    assert count_record_entries(root) == 2 * count + 1

def _sweep_process(root, queue):
    specs = [
        JobSpec.make("test_planarity", family="grid", n=36, seed=seed,
                     epsilon=0.5)
        for seed in (0, 1)
    ]
    batch = run_jobs(specs, cache=ResultCache(disk_dir=root))
    queue.put((batch.executed, batch.cache_stats.hits))

def test_two_pool_workers_share_hits_from_one_disk_index(tmp_path):
    """Acceptance: a second process is served from the first's entries."""
    root = tmp_path / "cache"
    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    first = ctx.Process(target=_sweep_process, args=(root, queue))
    first.start()
    first.join()
    assert first.exitcode == 0
    executed, hits = queue.get()
    assert executed == 2 and hits == 0
    second = ctx.Process(target=_sweep_process, args=(root, queue))
    second.start()
    second.join()
    assert second.exitcode == 0
    executed, hits = queue.get()
    assert executed == 0 and hits == 2  # shared via the on-disk index

def test_shard_placement_is_stable():
    assert shard_of_key("abc", 8) == shard_of_key("abc", 8)
    spread = {shard_of_key(f"key-{i}", 8) for i in range(64)}
    assert len(spread) > 1  # keys actually spread over shards

class TestGC:
    def _clocked_store(self, tmp_path, monkeypatch, shards=1):
        import repro.runtime.store as store_mod

        clock = {"t": 1000.0}
        monkeypatch.setattr(store_mod, "_now", lambda: clock["t"])
        return ShardedStore(tmp_path / "s", shards=shards), clock

    def test_ttl_expires_old_entries(self, tmp_path, monkeypatch):
        store, clock = self._clocked_store(tmp_path, monkeypatch, shards=2)
        store.put("old-a", {"v": 1})
        store.put("old-b", {"v": 2})
        clock["t"] = 2000.0
        store.put("fresh", {"v": 3})
        report = store.gc(ttl=500.0, now=2100.0)
        assert report.entries_removed == 2
        assert report.expired_entries == 2
        assert report.bytes_reclaimed > 0
        assert store.get("old-a") is None
        assert store.get("old-b") is None
        assert store.get("fresh") == {"v": 3}
        # A fresh process agrees (the rewrite is on disk, not in-index).
        assert ShardedStore(tmp_path / "s").get("old-a") is None

    def test_max_bytes_keeps_newest_first(self, tmp_path, monkeypatch):
        store, clock = self._clocked_store(tmp_path, monkeypatch)
        for index in range(10):
            clock["t"] = 1000.0 + index
            store.put(f"k{index}", {"v": index})
        live = store._scan_live(store._shards[0])
        budget = sum(live[f"k{i}"][2] for i in (9, 8, 7))
        report = store.gc(max_bytes=budget, now=2000.0)
        assert report.evicted_entries == 7
        assert report.entries_kept == 3
        # Newest-wins retention: exactly the three youngest survive.
        assert sorted(store.keys()) == ["k7", "k8", "k9"]
        assert report.bytes_kept == budget

    def test_gc_without_bounds_is_compaction(self, tmp_path):
        store = ShardedStore(tmp_path / "s", shards=1)
        for version in range(5):
            store.put("k", {"v": version})
        report = store.gc()
        assert report.entries_removed == 0
        assert report.bytes_reclaimed > 0  # four dead duplicates dropped
        assert store.get("k") == {"v": 4}

    def test_concurrent_writer_during_gc_loses_nothing(self, tmp_path):
        import threading

        store = ShardedStore(tmp_path / "s", shards=2)
        store.put("seed", {"v": -1})
        stop = threading.Event()
        written = []

        def writer():
            peer = ShardedStore(tmp_path / "s")
            index = 0
            while not stop.is_set() and index < 300:
                peer.put(f"w{index}", {"v": index})
                written.append(f"w{index}")
                index += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(10):
                store.gc(ttl=3600.0)
        finally:
            stop.set()
            thread.join()
        store.gc(ttl=3600.0)
        reader = ShardedStore(tmp_path / "s")
        for key in written:
            assert reader.get(key) is not None, f"gc lost {key}"

    def test_entries_appended_mid_gc_survive_snapshot(
        self, tmp_path, monkeypatch
    ):
        """An entry stamped after the GC snapshot is always retained,
        even when the TTL would nominally cover it."""
        store = ShardedStore(tmp_path / "s", shards=1)
        store.put("early", {"v": 0})
        # now= places the snapshot before the append's real timestamp.
        report = store.gc(ttl=0.000001, now=0.5)
        assert report.entries_removed == 0
        assert store.get("early") == {"v": 0}

    def test_gc_updates_store_stats(self, tmp_path, monkeypatch):
        store, clock = self._clocked_store(tmp_path, monkeypatch)
        store.put("a", {"v": 1})
        clock["t"] = 5000.0
        store.put("b", {"v": 2})
        report = store.gc(ttl=10.0, now=5001.0)
        assert report.entries_removed == 1
        assert store.stats.evicted_entries >= 1
        assert store.stats.bytes_reclaimed >= report.bytes_reclaimed

    def test_grace_window_shields_recent_entries(self, tmp_path, monkeypatch):
        """Entries inside the grace window survive any TTL/byte bound:
        the cross-host clock-skew guard for concurrent fleet writers."""
        store, clock = self._clocked_store(tmp_path, monkeypatch)
        store.put("recent", {"v": 1})
        # TTL nominally condemns it, but it is only 5s old vs grace=60.
        report = store.gc(ttl=0.001, now=1005.0)
        assert report.entries_removed == 0
        assert store.get("recent") == {"v": 1}
        # Outside the grace window the same TTL collects it.
        report = store.gc(ttl=0.001, now=2000.0)
        assert report.entries_removed == 1
        assert store.get("recent") is None

    def test_gc_compacts_meta_shard(self, tmp_path):
        store = ShardedStore(
            tmp_path / "s", shards=1, record_format="jsonl"
        )
        for version in range(20):
            store.put_meta("cost:k:10", {"count": version})
        meta_path = tmp_path / "s" / "meta-00.jsonl"
        grown = meta_path.stat().st_size
        report = store.gc()
        assert meta_path.stat().st_size < grown
        assert report.bytes_reclaimed > 0
        assert store.get_meta("cost:k:10") == {"count": 19}
        assert list(store.meta_keys()) == ["cost:k:10"]

    def test_usage_reports_live_and_reclaimable(self, tmp_path):
        # compact_factor high enough that the duplicates stay on disk.
        store = ShardedStore(tmp_path / "s", shards=1, compact_factor=100.0)
        for version in range(4):
            store.put("dup", {"v": version})
        usage = store.usage()
        assert usage["entries"] == 1
        assert usage["file_bytes"] > usage["live_bytes"] > 0
        assert usage["reclaimable_bytes"] == (
            usage["file_bytes"] - usage["live_bytes"]
        )
        assert usage["newest_t"] >= usage["oldest_t"] > 0

class TestMetaShard:
    def test_round_trip_and_isolation(self, tmp_path):
        store = ShardedStore(tmp_path / "s", shards=2)
        store.put("data-key", {"v": 1})
        store.put_meta("cost:test:64", {"count": 2, "mean_s": 0.5})
        assert store.get_meta("cost:test:64") == {"count": 2, "mean_s": 0.5}
        assert list(store.meta_keys()) == ["cost:test:64"]
        # Meta entries never leak into the data surface, or vice versa.
        assert len(store) == 1
        assert list(store.keys()) == ["data-key"]
        assert store.get("cost:test:64") is None
        assert store.get_meta("data-key") is None

    def test_newest_wins_and_cross_process(self, tmp_path):
        first = ShardedStore(tmp_path / "s")
        first.put_meta("cell", {"count": 1})
        first.put_meta("cell", {"count": 2})
        second = ShardedStore(tmp_path / "s")
        assert second.get_meta("cell") == {"count": 2}

    def test_meta_survives_gc(self, tmp_path, monkeypatch):
        import repro.runtime.store as store_mod

        monkeypatch.setattr(store_mod, "_now", lambda: 100.0)
        store = ShardedStore(tmp_path / "s")
        store.put("data", {"v": 1})
        store.put_meta("cost:k:10", {"mean_s": 1.0})
        report = store.gc(ttl=1.0, now=10_000.0)
        assert report.entries_removed == 1  # the data entry expired
        assert store.get_meta("cost:k:10") == {"mean_s": 1.0}

class TestResultCacheIntegration:
    def test_disk_round_trip_through_cache(self, tmp_path):
        first = ResultCache(disk_dir=tmp_path / "store")
        first.store("key1", {"rounds": 7, "accepted": True})
        second = ResultCache(disk_dir=tmp_path / "store")
        assert second.lookup("key1") == {"rounds": 7, "accepted": True}
        assert second.stats.disk_hits == 1

    def test_clear_reports_eviction_accounting(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.store("a", {"v": 1})
        cache.store("b", {"v": 2})
        report = cache.clear(disk=True)
        assert report.entries_removed >= 2
        assert report.bytes_reclaimed > 0
        assert cache.stats.disk_evictions >= 2
        assert cache.stats.disk_bytes_reclaimed == report.bytes_reclaimed
        assert cache.lookup("a") is None

    def test_memory_only_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.store("k", {"v": 1})
        report = cache.clear()
        assert report.entries_removed == 1
        assert report.bytes_reclaimed == 0
        assert cache.lookup("k") == {"v": 1}  # still on disk

    def test_cache_gc_collects_disk_store(self, tmp_path, monkeypatch):
        import repro.runtime.store as store_mod

        clock = {"t": 100.0}
        monkeypatch.setattr(store_mod, "_now", lambda: clock["t"])
        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.store("stale", {"v": 1})
        clock["t"] = 10_000.0
        report = cache.gc(ttl=1.0)
        assert report.entries_removed == 1
        assert cache.stats.disk_evictions >= 1
        assert cache.stats.disk_bytes_reclaimed > 0
        # Other processes miss immediately.
        assert ResultCache(disk_dir=tmp_path / "store").lookup("stale") is None
        assert ResultCache().gc(ttl=1.0) is None  # memory-only: no-op
