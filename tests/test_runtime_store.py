"""Sharded single-index disk store (repro.runtime.store)."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.runtime import JobSpec, ResultCache, ShardedStore, run_jobs
from repro.runtime.store import shard_of_key


def test_round_trip_and_miss(tmp_path):
    store = ShardedStore(tmp_path / "s")
    assert store.get("missing") is None
    store.put("k1", {"rounds": 7, "ok": True})
    assert store.get("k1") == {"rounds": 7, "ok": True}
    assert len(store) == 1
    assert store.stats.appends == 1
    assert store.stats.hits == 1


def test_newest_wins_and_compaction(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1)
    for version in range(5):
        store.put("k", {"v": version})
    assert store.get("k") == {"v": 4}
    report = store.compact()
    assert report.entries_removed == 0  # dedup is not eviction
    assert report.bytes_reclaimed > 0  # four stale lines dropped
    # The shard file now holds exactly one live line.
    shard_path = tmp_path / "s" / "shard-00.jsonl"
    lines = shard_path.read_bytes().splitlines()
    assert len(lines) == 1
    assert store.get("k") == {"v": 4}


def test_eviction_cap_reports_counts(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1, max_entries=3)
    for index in range(8):
        store.put(f"key-{index}", {"v": index})
    store.compact()
    assert len(store) <= 3
    assert store.stats.evicted_entries >= 5
    assert store.stats.bytes_reclaimed > 0
    # The *newest* entries survive (recency order eviction).
    assert store.get("key-7") == {"v": 7}


def test_fresh_instance_reads_existing_store(tmp_path):
    first = ShardedStore(tmp_path / "s", shards=4)
    first.put("a", {"v": 1})
    second = ShardedStore(tmp_path / "s")
    assert second.shards == 4  # persisted in store.json
    assert second.get("a") == {"v": 1}


def test_incremental_refresh_sees_other_writers(tmp_path):
    writer = ShardedStore(tmp_path / "s", shards=1)
    reader = ShardedStore(tmp_path / "s", shards=1)
    writer.put("a", {"v": 1})
    assert reader.get("a") == {"v": 1}
    writer.put("b", {"v": 2})  # appended after the reader's first scan
    assert reader.get("b") == {"v": 2}


def test_corrupt_lines_degrade_to_misses(tmp_path):
    store = ShardedStore(tmp_path / "s", shards=1)
    store.put("good", {"v": 1})
    shard_path = tmp_path / "s" / "shard-00.jsonl"
    with open(shard_path, "ab") as handle:
        handle.write(b"{not json}\n")
        handle.write(b'{"k": "torn", "r": {"v"')  # no trailing newline
    fresh = ShardedStore(tmp_path / "s")
    assert fresh.get("good") == {"v": 1}
    assert fresh.get("torn") is None


def test_clear_reports_entries_and_bytes(tmp_path):
    store = ShardedStore(tmp_path / "s")
    for index in range(6):
        store.put(f"k{index}", {"v": index})
    report = store.clear()
    assert report.entries_removed == 6
    assert report.bytes_reclaimed > 0
    assert len(store) == 0
    assert store.get("k0") is None


def _writer_process(root, start, barrier, count):
    store = ShardedStore(root, shards=2)
    barrier.wait()  # maximize interleaving
    for index in range(start, start + count):
        store.put(f"key-{index}", {"writer": start, "v": index})


def test_concurrent_writers_share_one_index(tmp_path):
    """Two processes appending to the same shards: no torn or lost lines."""
    root = tmp_path / "s"
    ShardedStore(root, shards=2).put("seed", {"v": -1})
    count = 200
    barrier = multiprocessing.Barrier(2)
    procs = [
        multiprocessing.Process(
            target=_writer_process, args=(root, start, barrier, count)
        )
        for start in (0, count)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0
    store = ShardedStore(root)
    assert len(store) == 2 * count + 1
    for index in range(2 * count):
        assert store.get(f"key-{index}") == {
            "writer": 0 if index < count else count,
            "v": index,
        }
    # Every persisted line is valid JSON (no interleaved writes).
    for shard_file in sorted(root.glob("shard-*.jsonl")):
        for line in shard_file.read_bytes().splitlines():
            payload = json.loads(line)
            assert set(payload) == {"k", "r"}


def _sweep_process(root, queue):
    specs = [
        JobSpec.make("test_planarity", family="grid", n=36, seed=seed,
                     epsilon=0.5)
        for seed in (0, 1)
    ]
    batch = run_jobs(specs, cache=ResultCache(disk_dir=root))
    queue.put((batch.executed, batch.cache_stats.hits))


def test_two_pool_workers_share_hits_from_one_disk_index(tmp_path):
    """Acceptance: a second process is served from the first's entries."""
    root = tmp_path / "cache"
    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    first = ctx.Process(target=_sweep_process, args=(root, queue))
    first.start()
    first.join()
    assert first.exitcode == 0
    executed, hits = queue.get()
    assert executed == 2 and hits == 0
    second = ctx.Process(target=_sweep_process, args=(root, queue))
    second.start()
    second.join()
    assert second.exitcode == 0
    executed, hits = queue.get()
    assert executed == 0 and hits == 2  # shared via the on-disk index


def test_shard_placement_is_stable():
    assert shard_of_key("abc", 8) == shard_of_key("abc", 8)
    spread = {shard_of_key(f"key-{i}", 8) for i in range(64)}
    assert len(spread) > 1  # keys actually spread over shards


class TestResultCacheIntegration:
    def test_disk_round_trip_through_cache(self, tmp_path):
        first = ResultCache(disk_dir=tmp_path / "store")
        first.store("key1", {"rounds": 7, "accepted": True})
        second = ResultCache(disk_dir=tmp_path / "store")
        assert second.lookup("key1") == {"rounds": 7, "accepted": True}
        assert second.stats.disk_hits == 1

    def test_clear_reports_eviction_accounting(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.store("a", {"v": 1})
        cache.store("b", {"v": 2})
        report = cache.clear(disk=True)
        assert report.entries_removed >= 2
        assert report.bytes_reclaimed > 0
        assert cache.stats.disk_evictions >= 2
        assert cache.stats.disk_bytes_reclaimed == report.bytes_reclaimed
        assert cache.lookup("a") is None

    def test_memory_only_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.store("k", {"v": 1})
        report = cache.clear()
        assert report.entries_removed == 1
        assert report.bytes_reclaimed == 0
        assert cache.lookup("k") == {"v": 1}  # still on disk
