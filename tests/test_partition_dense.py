"""Differential tests: the CSR-native partition engine vs the seed engine.

The acceptance bar of the dense-index pipeline: on every bundled
generator (planar and far families alike) the dense engine must produce
bit-identical partitions -- same parts, roots, spanning-tree parents and
heights -- plus identical phase statistics, ledger charges, round
totals, rejection evidence, and (for the randomized variant) identical
RNG-driven draws.  The legacy dict engine is retained exactly for this
comparison.
"""

from __future__ import annotations

import pytest

from repro.graphs import make_far, make_planar
from repro.graphs.far_from_planar import FAR_FAMILIES
from repro.graphs.generators import PLANAR_FAMILIES
from repro.partition import partition_randomized, partition_stage1
from repro.partition.dense import dense_supported
from repro.partition.stage1 import ENGINE_ENV_VAR, ENGINES, resolve_engine

N = 150
SEEDS = (0, 1)


def _canonical(result):
    """Everything a Stage1Result exposes, in an order-insensitive shape."""
    parts = {
        part.pid: (part.nodes, dict(part.parents), part.height)
        for part in result.partition.parts.values()
    }
    return (
        parts,
        dict(result.partition.part_of),
        result.success,
        result.rejecting_parts,
        [vars(stats) for stats in result.phases],
        result.ledger.total,
        result.ledger.by_category(),
        [(r.rounds, r.category, r.note) for r in result.ledger.records],
        result.target_cut,
        result.theoretical_phase_cap,
    )


class TestStage1Differential:
    @pytest.mark.parametrize("family", sorted(PLANAR_FAMILIES))
    def test_planar_families_identical(self, family):
        for seed in SEEDS:
            graph = make_planar(family, N, seed=seed)
            legacy = partition_stage1(graph, epsilon=0.1, engine="legacy")
            dense = partition_stage1(graph, epsilon=0.1, engine="dense")
            assert _canonical(legacy) == _canonical(dense), (family, seed)
            dense.partition.validate()

    @pytest.mark.parametrize("far", sorted(FAR_FAMILIES))
    def test_far_families_identical(self, far):
        graph, _farness = make_far(far, N, seed=0)
        legacy = partition_stage1(graph, epsilon=0.1, engine="legacy")
        dense = partition_stage1(graph, epsilon=0.1, engine="dense")
        assert _canonical(legacy) == _canonical(dense), far
        assert legacy.success == dense.success

    def test_eps_n_target_identical(self):
        graph = make_planar("delaunay", 200, seed=3)
        n = graph.number_of_nodes()
        legacy = partition_stage1(
            graph, epsilon=0.2, target_cut=0.2 * n, engine="legacy"
        )
        dense = partition_stage1(
            graph, epsilon=0.2, target_cut=0.2 * n, engine="dense"
        )
        assert _canonical(legacy) == _canonical(dense)

    def test_no_early_stop_identical(self):
        graph = make_planar("grid", 100, seed=0)
        legacy = partition_stage1(
            graph, epsilon=0.3, early_stop=False, max_phases=4, engine="legacy"
        )
        dense = partition_stage1(
            graph, epsilon=0.3, early_stop=False, max_phases=4, engine="dense"
        )
        assert _canonical(legacy) == _canonical(dense)


class TestRandomizedDifferential:
    @pytest.mark.parametrize("family", ("delaunay", "apollonian", "grid"))
    def test_same_rng_stream(self, family):
        for seed in SEEDS:
            graph = make_planar(family, N, seed=0)
            legacy = partition_randomized(
                graph, epsilon=0.2, delta=0.1, seed=seed, engine="legacy"
            )
            dense = partition_randomized(
                graph, epsilon=0.2, delta=0.1, seed=seed, engine="dense"
            )
            assert _canonical(legacy) == _canonical(dense), (family, seed)
            assert legacy.trials == dense.trials
            assert legacy.met_target == dense.met_target

    def test_randomized_coloring_variant_identical(self):
        graph = make_planar("tri-grid", 120, seed=0)
        legacy = partition_randomized(
            graph, epsilon=0.2, delta=0.2, seed=5,
            coloring="randomized", engine="legacy",
        )
        dense = partition_randomized(
            graph, epsilon=0.2, delta=0.2, seed=5,
            coloring="randomized", engine="dense",
        )
        assert _canonical(legacy) == _canonical(dense)

    @pytest.mark.parametrize(
        "family",
        ("grid", "tri-grid", "apollonian", "delaunay", "planar-sparse",
         "outerplanar", "tree"),
    )
    def test_vectorized_selection_matches_legacy_and_rng_stream(self, family):
        """The vectorized Theorem 4 selection draws the exact edges of
        the sequential loop *and* leaves the RNG in the same state, on
        the singleton aux of every bundled family."""
        import random

        from repro.congest.topology import compile_topology
        from repro.partition.dense import (
            DensePartitionState,
            weighted_selection_dense,
        )
        from repro.partition.weighted_selection import weighted_edge_selection

        graph = make_planar(family, 150, seed=0)
        aux = DensePartitionState(compile_topology(graph)).build_aux()
        for trials in (1, 2, 5):
            legacy_rng = random.Random(1234)
            dense_rng = random.Random(1234)
            legacy = weighted_edge_selection(aux, trials, legacy_rng)
            dense = weighted_selection_dense(aux, trials, dense_rng)
            assert legacy == dense, (family, trials)
            # Same draws consumed: subsequent randomness stays aligned.
            assert legacy_rng.getstate() == dense_rng.getstate()


class TestEngineResolution:
    def test_auto_picks_dense_for_int_labels(self):
        graph = make_planar("grid", 36, seed=0)
        assert dense_supported(graph)
        assert resolve_engine("auto", graph) == "dense"
        assert resolve_engine(None, graph) == "dense"

    def test_auto_falls_back_for_exotic_labels(self):
        import networkx as nx

        graph = nx.path_graph(["a", "b", "c"])
        assert not dense_supported(graph)
        assert resolve_engine("auto", graph) == "legacy"
        with pytest.raises(ValueError, match="dense partition engine"):
            resolve_engine("dense", graph)
        # The legacy engine still runs such graphs.
        result = partition_stage1(graph, epsilon=0.5)
        assert result.success

    def test_env_var_selects_engine(self, monkeypatch):
        graph = make_planar("grid", 36, seed=0)
        monkeypatch.setenv(ENGINE_ENV_VAR, "legacy")
        assert resolve_engine(None, graph) == "legacy"
        monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
        with pytest.raises(ValueError, match="unknown partition engine"):
            resolve_engine(None, graph)

    def test_engine_registry(self):
        assert set(ENGINES) == {"auto", "dense", "legacy"}
