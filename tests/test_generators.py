"""Tests for the graph generators and far-family certification."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphInputError
from repro.graphs import (
    FAR_FAMILIES,
    PLANAR_FAMILIES,
    delaunay_graph,
    grid_graph,
    make_far,
    make_planar,
    planted_kuratowski,
    random_apollonian,
    random_outerplanar,
    random_planar,
    random_tree,
    triangulated_grid,
)
from repro.planarity import is_planar


class TestPlanarFamilies:
    def test_all_families_planar_and_connected(self):
        for fam in PLANAR_FAMILIES:
            graph = make_planar(fam, 80, seed=1)
            assert nx.is_connected(graph), fam
            assert is_planar(graph), fam
            assert min(graph.nodes()) == 0, fam

    def test_unknown_family(self):
        with pytest.raises(GraphInputError):
            make_planar("nope", 10)

    def test_apollonian_is_maximal_planar(self):
        graph = random_apollonian(30, seed=2)
        n, m = graph.number_of_nodes(), graph.number_of_edges()
        assert m == 3 * n - 6

    def test_apollonian_determinism(self):
        assert nx.utils.graphs_equal(
            random_apollonian(25, seed=9), random_apollonian(25, seed=9)
        )

    def test_apollonian_small_n_rejected(self):
        with pytest.raises(GraphInputError):
            random_apollonian(2)

    def test_random_planar_edge_target(self):
        graph = random_planar(50, m=80, seed=0)
        assert graph.number_of_edges() == 80
        assert nx.is_connected(graph)
        assert is_planar(graph)

    def test_random_planar_bad_target(self):
        with pytest.raises(GraphInputError):
            random_planar(50, m=30)  # below n - 1
        with pytest.raises(GraphInputError):
            random_planar(50, m=500)  # above 3n - 6

    def test_triangulated_grid_edge_count(self):
        graph = triangulated_grid(4, 5)
        base = nx.grid_2d_graph(4, 5).number_of_edges()
        assert graph.number_of_edges() == base + 3 * 4

    def test_grid_validation(self):
        with pytest.raises(GraphInputError):
            grid_graph(0, 5)
        with pytest.raises(GraphInputError):
            triangulated_grid(1, 5)

    def test_delaunay_planar(self):
        graph = delaunay_graph(60, seed=4)
        assert is_planar(graph)
        assert nx.is_connected(graph)

    def test_outerplanar_is_outerplanar(self):
        # Outerplanar iff the graph plus a universal vertex is planar.
        graph = random_outerplanar(30, seed=5)
        assert is_planar(graph)
        augmented = nx.Graph(graph)
        hub = 1000
        augmented.add_edges_from((hub, v) for v in graph.nodes())
        assert is_planar(augmented)

    def test_outerplanar_maximal_edge_count(self):
        graph = random_outerplanar(30, seed=5, maximal=True)
        assert graph.number_of_edges() == 2 * 30 - 3

    def test_tree_sizes(self):
        for n in (1, 2, 3, 40):
            tree = random_tree(n, seed=0)
            assert tree.number_of_nodes() == n
            assert tree.number_of_edges() == max(0, n - 1)
            assert nx.is_forest(tree)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(10, 120), seed=st.integers(0, 100))
    def test_apollonian_always_planar(self, n, seed):
        assert is_planar(random_apollonian(n, seed=seed))


class TestFarFamilies:
    def test_all_families_certified(self):
        for fam in FAR_FAMILIES:
            graph, farness = make_far(fam, 120, seed=2)
            assert nx.is_connected(graph), fam
            assert farness > 0, fam
            assert not is_planar(graph), fam

    def test_unknown_family(self):
        with pytest.raises(GraphInputError):
            make_far("nope", 100)

    def test_planted_k5_contains_cliques(self):
        graph, farness = planted_kuratowski(100, count=3, minor="k5", seed=1)
        assert farness >= 3 / graph.number_of_edges()

    def test_planted_k33_certificate(self):
        graph, farness = planted_kuratowski(100, count=2, minor="k33", seed=1)
        assert farness >= 2 / graph.number_of_edges()

    def test_planted_invalid_minor(self):
        with pytest.raises(GraphInputError):
            planted_kuratowski(100, minor="k7")

    def test_planted_too_many(self):
        with pytest.raises(GraphInputError):
            planted_kuratowski(20, count=10, minor="k5")

    def test_certificates_below_true_farness(self, far_zoo):
        # the certificate is a *lower* bound: the graph really needs at
        # least certificate * m removals; sanity-check against the
        # constructive upper bound.
        from repro.graphs import planarity_farness_bounds

        for name, graph, certified in far_zoo:
            lower, upper = planarity_farness_bounds(graph, seed=0)
            assert certified <= upper + 1e-9, name
