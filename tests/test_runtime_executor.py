"""Execution backends and run_jobs (repro.runtime.executor)."""

from __future__ import annotations

import pytest

from repro.runtime import (
    JobSpec,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    make_backend,
    run_jobs,
)

SMALL_SPECS = [
    JobSpec.make("test_planarity", family="grid", n=36, seed=seed,
                 epsilon=epsilon)
    for seed in (0, 1)
    for epsilon in (0.5, 0.25)
]


def test_make_backend_registry():
    assert isinstance(make_backend("serial"), SerialBackend)
    assert isinstance(make_backend("process", max_workers=2), ProcessPoolBackend)
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend("quantum")


def test_run_jobs_preserves_order():
    batch = run_jobs(SMALL_SPECS, backend=SerialBackend())
    assert len(batch) == len(SMALL_SPECS)
    for spec, record in zip(SMALL_SPECS, batch):
        assert record["seed"] == spec.seed
        assert record["epsilon"] == spec.params["epsilon"]


def test_serial_and_process_results_identical():
    serial = run_jobs(SMALL_SPECS, backend=SerialBackend())
    pooled = run_jobs(SMALL_SPECS, backend=ProcessPoolBackend(max_workers=2))
    assert serial.records == pooled.records


def test_cache_repeat_hit_rate():
    cache = ResultCache()
    first = run_jobs(SMALL_SPECS, cache=cache)
    assert first.cache_stats.hit_rate == 0.0
    assert first.executed == len(SMALL_SPECS)
    second = run_jobs(SMALL_SPECS, cache=cache)
    assert second.cache_stats.hit_rate >= 0.9  # acceptance criterion
    assert second.executed == 0
    assert second.records == first.records


def test_duplicate_specs_execute_once():
    cache = ResultCache()
    specs = [SMALL_SPECS[0]] * 5
    batch = run_jobs(specs, cache=cache)
    assert batch.executed == 1
    assert len(batch) == 5
    assert all(record == batch.records[0] for record in batch.records)


def test_duplicates_deduplicated_without_cache():
    specs = [SMALL_SPECS[0]] * 3 + [SMALL_SPECS[1]]
    batch = run_jobs(specs)
    assert batch.executed == 2
    assert len(batch) == 4


def test_disk_cache_survives_new_run(tmp_path):
    specs = SMALL_SPECS[:2]
    run_jobs(specs, cache=ResultCache(disk_dir=tmp_path / "c"))
    rerun = run_jobs(specs, cache=ResultCache(disk_dir=tmp_path / "c"))
    assert rerun.executed == 0
    assert rerun.cache_stats.hit_rate == 1.0


def test_pool_falls_back_to_serial_for_one_worker():
    batch = run_jobs(SMALL_SPECS[:1], backend=ProcessPoolBackend(max_workers=1))
    assert len(batch) == 1


def test_cached_serial_path_builds_each_graph_once(monkeypatch):
    # Fingerprinting builds the graph; the serial backend must reuse it
    # rather than regenerating per miss.
    import repro.runtime.jobs as jobs_mod

    calls = {"count": 0}
    real_make_planar = jobs_mod.make_planar

    def counting(*args, **kwargs):
        calls["count"] += 1
        return real_make_planar(*args, **kwargs)

    monkeypatch.setattr(jobs_mod, "make_planar", counting)
    specs = [
        JobSpec.make("test_planarity", family="grid", n=36, epsilon=epsilon)
        for epsilon in (0.5, 0.25, 0.1)
    ]
    batch = run_jobs(specs, backend=SerialBackend(), cache=ResultCache())
    assert batch.executed == 3
    assert calls["count"] == 1  # one shared graph, built exactly once


def test_empty_batch():
    batch = run_jobs([], backend=ProcessPoolBackend())
    assert batch.records == []
    assert batch.executed == 0
