"""RunConfig: precedence, env export, and the deprecation shims."""

from __future__ import annotations

import os

import pytest

from repro.runtime import JobSpec, ResultCache, RunConfig, run_jobs, run_sweep
from repro.runtime.sweeps import SweepSpec


def _specs(n=2):
    return [
        JobSpec.make("test_planarity", family="grid", n=36, epsilon=0.5, seed=s)
        for s in range(n)
    ]


class TestResolvePrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        assert RunConfig().resolve("sim_batch") == 1
        assert RunConfig().resolve("sim_batch_waste") == 4.0
        assert RunConfig().resolve("sim_xp") == "numpy"
        assert RunConfig().resolve("store_format") == "rbin"
        assert RunConfig().resolve("partition_engine") == "auto"
        assert RunConfig().resolve("cache_coord_keys") is True

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "8")
        monkeypatch.setenv("REPRO_CACHE_COORD_KEYS", "0")
        config = RunConfig()
        assert config.resolve("sim_batch") == 8
        assert config.resolve("cache_coord_keys") is False

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "8")
        assert RunConfig(sim_batch=2).resolve("sim_batch") == 2

    def test_auto_batch_string(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "auto")
        assert RunConfig().resolve("sim_batch") == "auto"
        assert RunConfig(sim_batch="auto").resolve("sim_batch") == "auto"

    def test_unparsable_env_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "banana")
        with pytest.warns(RuntimeWarning, match="unparsable"):
            assert RunConfig().resolve("sim_batch") == 1

    def test_unknown_knob_raises(self):
        with pytest.raises(KeyError, match="unknown runtime knob"):
            RunConfig().resolve("warp_factor")

    def test_resolved_and_overrides(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        config = RunConfig(sim_batch=4, partition_engine="dense")
        assert config.overrides() == {
            "sim_batch": 4,
            "partition_engine": "dense",
        }
        effective = config.resolved()
        assert effective["sim_batch"] == 4
        assert effective["partition_engine"] == "dense"
        assert effective["sim_batch_waste"] == 4.0  # default fills gaps

    def test_env_var_lookup(self):
        assert RunConfig.env_var("sim_batch") == "REPRO_SIM_BATCH"

    def test_from_env_pins_current_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "6")
        pinned = RunConfig.from_env()
        monkeypatch.setenv("REPRO_SIM_BATCH", "9")
        assert pinned.resolve("sim_batch") == 6  # frozen, not re-read
        assert RunConfig().resolve("sim_batch") == 9

    def test_frozen_and_hashable(self):
        config = RunConfig(sim_batch=2)
        assert hash(config) == hash(RunConfig(sim_batch=2))
        with pytest.raises(AttributeError):
            config.sim_batch = 3


class TestExport:
    def test_export_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        monkeypatch.setenv("REPRO_SIM_XP", "numpy")
        config = RunConfig(sim_batch=5, sim_xp="torch", cache_coord_keys=False)
        with config.export():
            assert os.environ["REPRO_SIM_BATCH"] == "5"
            assert os.environ["REPRO_SIM_XP"] == "torch"
            assert os.environ["REPRO_CACHE_COORD_KEYS"] == "0"
        assert "REPRO_SIM_BATCH" not in os.environ  # was unset before
        assert os.environ["REPRO_SIM_XP"] == "numpy"  # restored

    def test_export_skips_unset_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        with RunConfig().export():
            assert "REPRO_SIM_BATCH" not in os.environ

    def test_export_restores_on_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        with pytest.raises(RuntimeError):
            with RunConfig(sim_batch=3).export():
                raise RuntimeError("boom")
        assert "REPRO_SIM_BATCH" not in os.environ


class TestEntryPoints:
    def test_run_jobs_config_no_warning(self, recwarn):
        result = run_jobs(
            _specs(), cache=ResultCache(), config=RunConfig(sim_batch=1)
        )
        assert len(result.records) == 2
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]

    def test_run_jobs_batch_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match=r"run_jobs\(batch=.*"):
            result = run_jobs(_specs(), cache=ResultCache(), batch=1)
        assert len(result.records) == 2

    def test_run_sweep_deprecated_kwargs_warn(self):
        sweep = SweepSpec.make(
            "test_planarity", families=["grid"], ns=[36],
            epsilon=[0.5], seeds=[0],
        )
        with pytest.warns(DeprecationWarning, match=r"run_sweep\(batch=.*"):
            run_sweep(sweep, batch=1)
        with pytest.warns(
            DeprecationWarning, match=r"run_sweep\(batch_waste=.*"
        ):
            run_sweep(sweep, batch_waste=4.0)

    def test_run_sweep_config_matches_deprecated_kwarg(self):
        sweep = SweepSpec.make(
            "test_planarity", families=["grid"], ns=[36, 64],
            epsilon=[0.5], seeds=[0, 1],
        )
        via_config = run_sweep(sweep, config=RunConfig(sim_batch=2))
        with pytest.warns(DeprecationWarning):
            via_kwarg = run_sweep(sweep, batch=2)
        assert via_config.records == via_kwarg.records

    def test_run_sweep_reads_env_through_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "2")
        sweep = SweepSpec.make(
            "test_planarity", families=["grid"], ns=[36],
            epsilon=[0.5], seeds=[0],
        )
        result = run_sweep(sweep)  # default config resolves the env knob
        assert len(result.records) == 1
