"""Tests for analysis helpers and the CLI."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    Table,
    fit_rounds_vs_log2_n,
    fit_rounds_vs_log_n,
    format_cell,
    geometric_mean,
    linear_fit,
    predicted_detection_probability,
    wilson_interval,
)
from repro.cli import main


class TestStats:
    def test_wilson_contains_proportion(self):
        lo, hi = wilson_interval(8, 10)
        assert lo <= 0.8 <= hi
        assert 0 <= lo <= hi <= 1

    def test_wilson_extremes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        lo, hi = wilson_interval(20, 20)
        assert hi == 1.0

    def test_wilson_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)

    def test_linear_fit_exact(self):
        fit = linear_fit([1, 2, 3], [3, 5, 7])
        assert fit.slope == pytest.approx(2)
        assert fit.intercept == pytest.approx(1)
        assert fit.r_squared == pytest.approx(1)
        assert fit.predict(10) == pytest.approx(21)

    def test_linear_fit_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 1], [2, 3])

    def test_log_fit(self):
        ns = [2**k for k in range(5, 10)]
        rounds = [10 * math.log2(n) + 3 for n in ns]
        fit = fit_rounds_vs_log_n(ns, rounds)
        assert fit.slope == pytest.approx(10)
        assert fit.r_squared > 0.999

    def test_log2_fit(self):
        ns = [2**k for k in range(5, 10)]
        rounds = [4 * math.log2(n) ** 2 for n in ns]
        fit = fit_rounds_vs_log2_n(ns, rounds)
        assert fit.slope == pytest.approx(4)

    def test_detection_profile(self):
        assert predicted_detection_probability(0.0, 100) == 0.0
        assert predicted_detection_probability(1.0, 1) == 1.0
        assert 0.63 < predicted_detection_probability(0.01, 100) < 0.64

    def test_detection_profile_validation(self):
        with pytest.raises(ValueError):
            predicted_detection_probability(1.2, 10)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -2])


class TestTable:
    def test_render_contains_cells(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "Demo" in text and "2.5" in text

    def test_row_arity_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown(self):
        table = Table("Demo", ["a"])
        table.add_row("x")
        md = table.to_markdown()
        assert md.startswith("### Demo")
        assert "| x |" in md

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.12349) == "0.123"
        assert format_cell(1234567) == "1,234,567"
        assert format_cell(1234.5) == "1,234"
        assert format_cell("s") == "s"
        assert format_cell(0.0) == "0"


class TestCLI:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "delaunay" in out and "gnp" in out

    def test_test_planar_accepts(self, capsys):
        code = main(["test", "--family", "grid", "--n", "100", "--epsilon", "0.3"])
        assert code == 0
        assert "accept" in capsys.readouterr().out

    def test_test_far_rejects(self, capsys):
        code = main(
            ["test", "--far", "gnp", "--n", "120", "--epsilon", "0.2", "--seed", "1"]
        )
        assert code == 1
        assert "REJECT" in capsys.readouterr().out

    def test_partition_command(self, capsys):
        assert main(["partition", "--family", "grid", "--n", "100"]) == 0
        assert "parts" in capsys.readouterr().out

    def test_partition_randomized(self, capsys):
        code = main(
            ["partition", "--family", "grid", "--n", "100", "--method", "randomized"]
        )
        assert code == 0

    def test_spanner_command(self, capsys):
        assert main(["spanner", "--family", "grid", "--n", "100"]) == 0
        assert "stretch" in capsys.readouterr().out

    def test_applications_command(self, capsys):
        assert main(["applications", "--family", "tri-grid", "--n", "80"]) == 0
        out = capsys.readouterr().out
        assert "cycle-freeness" in out and "bipartiteness" in out

    def test_lower_bound_command(self, capsys):
        assert main(["lower-bound", "--n", "200"]) == 0
        assert "girth" in capsys.readouterr().out

    def test_analyze_flag(self, capsys):
        code = main(
            ["test", "--far", "planted-k5", "--n", "120", "--epsilon", "0.1",
             "--analyze", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "Planarity test" in out


class TestSweepCLI:
    def test_sweep_simulate_with_profile(self, capsys, monkeypatch):
        from repro.congest.instrumentation import PROFILE_ENV_VAR

        # setenv (not delenv) so monkeypatch restores the pre-test state
        # even though main() overwrites the variable in-process.
        monkeypatch.setenv(PROFILE_ENV_VAR, "faithful")
        code = main(
            ["sweep", "--kind", "simulate", "--programs", "bfs,storm",
             "--families", "grid", "--ns", "36", "--profile", "fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "storm" in out and "fast" in out
        # The flag exports the env knob so pool workers inherit it.
        import os

        assert os.environ[PROFILE_ENV_VAR] == "fast"

    def test_sweep_test_kind_still_works(self, capsys):
        code = main(
            ["sweep", "--kind", "test", "--families", "grid", "--ns", "36",
             "--epsilons", "0.5", "--seeds", "0"]
        )
        assert code == 0
        assert "jobs=1" in capsys.readouterr().out

    def test_sweep_rejects_unknown_profile(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["sweep", "--kind", "simulate", "--families", "grid",
                 "--ns", "36", "--profile", "warp"]
            )

    def test_sweep_shard_and_resume_workflow(self, capsys, tmp_path):
        """Two shard runs fill one store; the final --resume run is a
        100% hit (executed=0) covering the whole grid."""
        store = str(tmp_path / "cache")
        base = ["sweep", "--kind", "test", "--families", "grid",
                "--ns", "36,64", "--epsilons", "0.5,0.25", "--seeds", "0",
                "--cache-dir", store]
        assert main(base + ["--shard", "0/2"]) == 0
        shard0 = capsys.readouterr().out
        assert "shard 0/2" in shard0
        assert main(base + ["--shard", "1/2"]) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "jobs=4 executed=0" in out
        assert "cache: hits=4" in out

    def test_sweep_shard_argument_validation(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--shard", "2/2"])
        with pytest.raises(SystemExit):
            main(["sweep", "--shard", "nope"])

    def test_sweep_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="--resume needs --cache-dir"):
            main(["sweep", "--kind", "test", "--families", "grid",
                  "--ns", "36", "--epsilons", "0.5", "--resume"])

    def test_sweep_async_backend(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        code = main(
            ["sweep", "--kind", "test", "--families", "grid", "--ns", "36",
             "--epsilons", "0.5", "--backend", "async", "--workers", "1",
             "--cache-dir", store]
        )
        assert code == 0
        assert "backend=async" in capsys.readouterr().out
