"""Cross-layer integration tests: the invariants the paper's proofs chain
together, checked end-to-end on single instances."""

from __future__ import annotations

import networkx as nx

from repro.congest.programs import bfs_tree
from repro.graphs import make_far, make_planar
from repro.partition import AuxiliaryGraph, partition_stage1
from repro.planarity import check_planarity, verify_planar_embedding
from repro.testers import PlanarityTestConfig
from repro.testers import test_planarity as run_planarity
from repro.testers.labels import deterministic_bfs_tree


class TestClaim3Chain:
    """Claim 3: Stage I success on an eps-far graph forces a far part."""

    def test_far_graph_partition_leaves_far_part(self):
        graph, certified = make_far("planted-k5", 250, seed=1)
        eps = min(0.25, certified)
        result = partition_stage1(graph, epsilon=eps)
        if not result.success:
            return  # rejection is also a valid outcome
        assert result.partition.cut_size() <= eps * graph.number_of_edges() / 2
        # sum over parts of distance-to-planarity >= eps*m/2: at least one
        # part must be non-planar
        nonplanar_parts = [
            pid
            for pid, part in result.partition.parts.items()
            if not check_planarity(graph.subgraph(part.nodes)).is_planar
        ]
        assert nonplanar_parts


class TestLemma6Chain:
    """Lemma 6 invariants feed Stage II: roots, trees, diameters."""

    def test_part_trees_usable_for_bfs(self):
        graph = make_planar("delaunay", 300, seed=2)
        result = partition_stage1(graph, epsilon=0.2)
        for pid, part in result.partition.parts.items():
            sub = graph.subgraph(part.nodes)
            parents, depths = deterministic_bfs_tree(sub, part.root)
            assert max(depths.values(), default=0) <= 2 * part.height + 1

    def test_bfs_tree_matches_congest_protocol_per_part(self):
        graph = make_planar("grid", 150, seed=3)
        result = partition_stage1(graph, epsilon=0.3)
        pid = max(result.partition.parts, key=lambda p: len(result.partition.parts[p]))
        part = result.partition.parts[pid]
        sub = nx.Graph(graph.subgraph(part.nodes))
        sim_parents, sim_depths, _ = bfs_tree(sub, part.root)
        emu_parents, emu_depths = deterministic_bfs_tree(sub, part.root)
        assert sim_depths == emu_depths


class TestEmbeddingChain:
    """Planar parts always receive a genuine, verified embedding."""

    def test_part_embeddings_verify(self):
        graph = make_planar("apollonian", 250, seed=4)
        result = partition_stage1(graph, epsilon=0.2)
        for pid, part in result.partition.parts.items():
            sub = nx.Graph(graph.subgraph(part.nodes))
            lr = check_planarity(sub)
            assert lr.is_planar
            verify_planar_embedding(lr.embedding, sub)


class TestAuxiliaryConsistency:
    def test_aux_weight_equals_cut(self):
        graph = make_planar("tri-grid", 200, seed=5)
        result = partition_stage1(graph, epsilon=0.3)
        aux = AuxiliaryGraph(result.partition)
        assert aux.total_weight() == result.partition.cut_size()

    def test_connectors_are_graph_edges(self):
        graph = make_planar("delaunay", 200, seed=6)
        result = partition_stage1(graph, epsilon=0.3)
        aux = AuxiliaryGraph(result.partition)
        for edge in aux.edges():
            u, v = edge.connector
            assert graph.has_edge(u, v)
            assert result.partition.part_of[u] == edge.parts[0]
            assert result.partition.part_of[v] == edge.parts[1]


class TestSoundnessStatistics:
    """Detection probability tracks the certified farness (Corollary 9)."""

    def test_high_farness_always_detected(self):
        graph, certified = make_far("gnp", 200, seed=7)
        assert certified > 0.3
        for seed in range(5):
            assert not run_planarity(graph, epsilon=0.25, seed=seed).accepted

    def test_detection_against_ground_truth(self):
        # certified farness lower bound should never exceed reality: if the
        # tester rejects a graph, the graph is genuinely non-planar.
        for fam_seed in range(4):
            graph, _ = make_far("planted-k33", 150, seed=fam_seed)
            result = run_planarity(graph, epsilon=0.1, seed=0)
            if not result.accepted:
                assert not check_planarity(graph).is_planar

    def test_one_sided_error_bulk(self):
        """64 planar instances, zero rejections."""
        rejections = 0
        for family in ("grid", "apollonian", "delaunay", "outerplanar"):
            for seed in range(16):
                graph = make_planar(family, 80, seed=seed)
                result = run_planarity(graph, epsilon=0.2, seed=seed)
                rejections += not result.accepted
        assert rejections == 0


class TestLedgerAudit:
    def test_every_round_charge_categorized(self):
        graph = make_planar("delaunay", 150, seed=8)
        result = partition_stage1(graph, epsilon=0.2)
        total = sum(result.ledger.by_category().values())
        assert total == result.ledger.total

    def test_stage_categories_present(self):
        graph = make_planar("delaunay", 150, seed=8)
        result = partition_stage1(graph, epsilon=0.2)
        categories = result.ledger.by_category()
        assert any(c.startswith("stage1.forest") for c in categories)
        assert any(c.startswith("stage1.coloring") for c in categories)
        assert any(c.startswith("stage1.merge") for c in categories)
