"""Tests for the emulated CV coloring and the CHW marking step."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.programs import cole_vishkin_coloring
from repro.errors import PartitionError
from repro.partition import cole_vishkin_emulated, mark_and_choose


def random_pseudoforest(n, seed):
    """Random out-degree-<=1 digraph without 2-cycles, plus weights."""
    rng = random.Random(seed)
    out_edge = {}
    edges = set()
    for v in range(n):
        if rng.random() < 0.2:
            out_edge[v] = None
            continue
        w = rng.randrange(n - 1)
        w = w if w < v else w + 1
        if (w, v) in edges:
            out_edge[v] = None
            continue
        out_edge[v] = w
        edges.add((v, w))
    weights = {e: rng.randint(1, 20) for e in edges}
    return out_edge, weights


class TestColeVishkinEmulated:
    def test_path(self):
        parents = {i: i - 1 if i > 0 else None for i in range(50)}
        colors, rounds = cole_vishkin_emulated(parents)
        assert set(colors.values()) <= {0, 1, 2}
        for child, parent in parents.items():
            if parent is not None:
                assert colors[child] != colors[parent]
        assert rounds > 0

    def test_directed_cycle(self):
        parents = {i: (i + 1) % 21 for i in range(21)}
        colors, _ = cole_vishkin_emulated(parents)
        for child, parent in parents.items():
            assert colors[child] != colors[parent]

    def test_missing_parent_rejected(self):
        with pytest.raises(PartitionError):
            cole_vishkin_emulated({0: 7})

    def test_duplicate_initial_colors_rejected(self):
        with pytest.raises(PartitionError):
            cole_vishkin_emulated(
                {0: None, 1: None}, initial_colors={0: 5, 1: 5}
            )

    def test_non_int_ids_fall_back_to_ranks(self):
        parents = {"a": None, "b": "a", "c": "b"}
        colors, _ = cole_vishkin_emulated(parents)
        assert set(colors.values()) <= {0, 1, 2}
        assert colors["b"] != colors["a"]

    def test_matches_simulated_protocol(self):
        """Emulated and genuinely distributed CV must agree exactly."""
        graph = nx.path_graph(40)
        parents = {i: i - 1 if i > 0 else None for i in graph.nodes()}
        sim_colors, _ = cole_vishkin_coloring(graph, parents)
        emu_colors, _ = cole_vishkin_emulated(parents)
        assert sim_colors == emu_colors

    def test_matches_simulated_on_cycle(self):
        n = 17
        graph = nx.cycle_graph(n)
        parents = {i: (i + 1) % n for i in range(n)}
        sim_colors, _ = cole_vishkin_coloring(graph, parents)
        emu_colors, _ = cole_vishkin_emulated(parents)
        assert sim_colors == emu_colors

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 60), seed=st.integers(0, 500))
    def test_random_pseudoforests_proper(self, n, seed):
        out_edge, _w = random_pseudoforest(n, seed)
        colors, _ = cole_vishkin_emulated(out_edge)
        for v, p in out_edge.items():
            if p is not None:
                assert colors[v] != colors[p]


class TestMarking:
    def run_marking(self, out_edge, weights):
        colors, _ = cole_vishkin_emulated(out_edge)
        return mark_and_choose(out_edge, weights, colors)

    def test_single_edge_always_contracted(self):
        out_edge = {0: 1, 1: None}
        weights = {(0, 1): 5}
        result = self.run_marking(out_edge, weights)
        assert result.marked_edges == [(0, 1)]
        assert result.contract_edges == [(0, 1)]
        assert result.contracted_weight == 5

    def test_contract_edges_form_stars(self):
        for seed in range(30):
            out_edge, weights = random_pseudoforest(40, seed)
            result = self.run_marking(out_edge, weights)
            children = {c for c, _p in result.contract_edges}
            centers = {p for _c, p in result.contract_edges}
            assert not (children & centers), seed

    def test_marked_weight_at_least_third(self):
        """w(T_i) >= w(F_i)/3 (we prove 1/3; the paper states 1/2)."""
        for seed in range(40):
            out_edge, weights = random_pseudoforest(50, seed)
            total = sum(weights.values())
            if total == 0:
                continue
            result = self.run_marking(out_edge, weights)
            assert result.marked_weight * 3 >= total, seed

    def test_contracted_at_least_half_of_marked(self):
        for seed in range(40):
            out_edge, weights = random_pseudoforest(50, seed)
            result = self.run_marking(out_edge, weights)
            assert result.contracted_weight * 2 >= result.marked_weight, seed

    def test_tree_heights_at_most_ten(self):
        """Claim 1: the marked subtrees are shallow (height <= 10)."""
        for seed in range(60):
            out_edge, weights = random_pseudoforest(80, seed)
            result = self.run_marking(out_edge, weights)
            for root, height in result.tree_heights.items():
                assert height <= 10, (seed, root, height)

    def test_marked_subgraph_is_forest(self):
        """Claim 15: no marked cycles even on pseudoforest inputs."""
        # a pure directed cycle with equal weights
        n = 12
        out_edge = {i: (i + 1) % n for i in range(n)}
        weights = {(i, (i + 1) % n): 3 for i in range(n)}
        result = self.run_marking(out_edge, weights)
        # mark_and_choose raises PartitionError on cycles; reaching here
        # with some contraction is the assertion
        assert result.contract_edges

    def test_unknown_out_target_rejected(self):
        with pytest.raises(PartitionError):
            mark_and_choose({0: 99}, {(0, 99): 1}, {0: 0})

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 70), seed=st.integers(0, 2000))
    def test_invariants_random(self, n, seed):
        out_edge, weights = random_pseudoforest(n, seed)
        colors, _ = cole_vishkin_emulated(out_edge)
        result = mark_and_choose(out_edge, weights, colors)
        marked = set(result.marked_edges)
        assert set(result.contract_edges) <= marked
        assert all(e in weights for e in marked)
        total = sum(weights.values())
        if total:
            assert result.marked_weight * 3 >= total
            assert result.contracted_weight * 2 >= result.marked_weight
