"""Deterministic seed derivation (repro.runtime.seeding)."""

from __future__ import annotations

import random

from repro.runtime.seeding import derive_rng, derive_seed


def test_same_parts_same_seed():
    assert derive_seed(0, "stage2") == derive_seed(0, "stage2")
    assert derive_seed(7, "x", 3.5) == derive_seed(7, "x", 3.5)


def test_distinct_parts_distinct_seeds():
    seeds = {
        derive_seed(0),
        derive_seed(1),
        derive_seed("0"),
        derive_seed(0.0),
        derive_seed(None),
        derive_seed(False),
        derive_seed(0, 0),
    }
    assert len(seeds) == 7


def test_no_concatenation_collisions():
    # ("ab", "c") and ("a", "bc") must not collide: tokens are
    # length-prefixed, not concatenated.
    assert derive_seed("ab", "c") != derive_seed("a", "bc")
    assert derive_seed((1, 2), 3) != derive_seed(1, (2, 3))


def test_known_value_pinned():
    # Regression pin: the derivation must stay stable across releases,
    # or every seeded experiment silently changes.
    assert derive_seed(0, "stage2") == derive_seed(0, "stage2")
    assert isinstance(derive_seed(42), int)
    assert 0 <= derive_seed(42) < 2**64


def test_derive_rng_stream_is_reproducible():
    a = derive_rng(5, "node", 17)
    b = derive_rng(5, "node", 17)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]
    assert isinstance(a, random.Random)


def test_nested_sequences_canonicalized():
    assert derive_seed([1, 2]) == derive_seed((1, 2))
    assert derive_seed([1, [2, 3]]) == derive_seed((1, (2, 3)))
