"""Tests for the CONGEST simulator core (network, node, message)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import (
    BROADCAST,
    CongestNetwork,
    NodeProgram,
    bit_size,
    default_bandwidth_bits,
)
from repro.errors import (
    BandwidthExceededError,
    GraphInputError,
    ProtocolError,
    SimulationLimitError,
)


class EchoOnce(NodeProgram):
    """Round 0: broadcast own id; round 1: record inbox and halt."""

    def step(self, round_index, inbox):
        if round_index == 0:
            return self.broadcast(("id", self.ctx.node))
        self.halt(sorted(sender for sender in inbox))
        return self.silence()


class Chatterbox(NodeProgram):
    """Never halts; used for round-limit behavior."""

    def step(self, round_index, inbox):
        return self.broadcast(("tick", round_index))


class BadSender(NodeProgram):
    """Attempts to message a non-neighbor."""

    def step(self, round_index, inbox):
        target = (self.ctx.node + 2) % self.ctx.n
        return {target: ("oops",)}


class HugeSender(NodeProgram):
    """Sends a message far above the bandwidth budget."""

    def step(self, round_index, inbox):
        if round_index == 0:
            return self.broadcast(("x" * 10_000,))
        self.halt("done")
        return self.silence()


class TestBitSize:
    def test_none_and_bool(self):
        assert bit_size(None) == 1
        assert bit_size(True) == 1

    def test_int_scales_with_magnitude(self):
        assert bit_size(0) == 1
        assert bit_size(1023) == 11
        assert bit_size(2**40) > bit_size(2**20)

    def test_tuple_adds_framing(self):
        assert bit_size((1, 2)) > bit_size(1) + bit_size(2)

    def test_string(self):
        assert bit_size("ab") == 8 * 2 + 2

    def test_dict(self):
        assert bit_size({1: 2}) > 0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            bit_size(object())

    def test_default_bandwidth_scales_logarithmically(self):
        assert default_bandwidth_bits(2**20) > default_bandwidth_bits(2**10)
        with pytest.raises(ValueError):
            default_bandwidth_bits(0)


class TestNetworkValidation:
    def test_rejects_directed(self):
        with pytest.raises(GraphInputError):
            CongestNetwork(nx.DiGraph([(0, 1)]))

    def test_rejects_self_loops(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        with pytest.raises(GraphInputError):
            CongestNetwork(graph)

    def test_rejects_empty(self):
        with pytest.raises(GraphInputError):
            CongestNetwork(nx.Graph())

    def test_rejects_multigraph(self):
        with pytest.raises(GraphInputError):
            CongestNetwork(nx.MultiGraph([(0, 1), (0, 1)]))


class TestExecution:
    def test_broadcast_reaches_all_neighbors(self):
        graph = nx.cycle_graph(5)
        result = CongestNetwork(graph).run(EchoOnce, max_rounds=5)
        assert result.halted
        for v in graph.nodes():
            assert result.outputs[v] == sorted(graph.neighbors(v))

    def test_rounds_counted(self):
        graph = nx.path_graph(4)
        result = CongestNetwork(graph).run(EchoOnce, max_rounds=10)
        assert result.rounds == 2

    def test_round_limit_without_halt(self):
        graph = nx.path_graph(3)
        result = CongestNetwork(graph).run(Chatterbox, max_rounds=4)
        assert not result.halted
        assert result.rounds == 4

    def test_raise_on_limit(self):
        graph = nx.path_graph(3)
        with pytest.raises(SimulationLimitError):
            CongestNetwork(graph).run(Chatterbox, max_rounds=2, raise_on_limit=True)

    def test_non_neighbor_message_rejected(self):
        graph = nx.path_graph(4)
        with pytest.raises(ProtocolError):
            CongestNetwork(graph).run(BadSender, max_rounds=2)

    def test_strict_bandwidth_raises(self):
        graph = nx.path_graph(3)
        with pytest.raises(BandwidthExceededError):
            CongestNetwork(graph).run(HugeSender, max_rounds=3, strict_bandwidth=True)

    def test_lenient_bandwidth_counts(self):
        graph = nx.path_graph(3)
        result = CongestNetwork(graph).run(HugeSender, max_rounds=3)
        assert result.over_budget_messages > 0
        assert result.halted

    def test_message_metrics(self):
        graph = nx.cycle_graph(4)
        result = CongestNetwork(graph).run(EchoOnce, max_rounds=5)
        # every node broadcasts to 2 neighbors in round 0 only
        assert result.total_messages == 8
        assert result.total_bits > 0
        assert result.max_message_bits <= result.bandwidth_bits

    def test_per_node_rng_deterministic(self):
        graph = nx.path_graph(4)
        net1 = CongestNetwork(graph, seed=5)
        net2 = CongestNetwork(graph, seed=5)
        r1 = [net1._node_rng(v).random() for v in graph.nodes()]
        r2 = [net2._node_rng(v).random() for v in graph.nodes()]
        assert r1 == r2

    def test_per_node_rng_differs_between_nodes(self):
        net = CongestNetwork(nx.path_graph(4), seed=5)
        values = {net._node_rng(v).random() for v in range(4)}
        assert len(values) == 4

    def test_broadcast_sentinel_expansion(self):
        class Mixed(NodeProgram):
            def step(self, round_index, inbox):
                if round_index == 0 and self.ctx.node == 0:
                    out = {BROADCAST: ("b",)}
                    out[self.ctx.neighbors[0]] = ("direct",)
                    return out
                if round_index == 1:
                    self.halt(dict(inbox))
                return self.silence()

        graph = nx.path_graph(3)
        result = CongestNetwork(graph).run(Mixed, max_rounds=4)
        # node 1 gets the direct override, not the broadcast payload
        assert result.outputs[1][0] == ("direct",)
