"""Job specs and runners (repro.runtime.jobs)."""

from __future__ import annotations

import pytest

from repro.runtime import JobSpec, job_kinds, run_job
from repro.runtime.cache import config_digest


def test_spec_hashing_is_stable():
    a = JobSpec.make("test_planarity", family="grid", n=64, epsilon=0.5)
    b = JobSpec.make("test_planarity", family="grid", n=64, epsilon=0.5)
    assert a == b
    assert hash(a) == hash(b)
    assert a.canonical() == b.canonical()


def test_config_kwarg_order_is_irrelevant():
    a = JobSpec.make("test_planarity", n=64, epsilon=0.5, alpha=3)
    b = JobSpec.make("test_planarity", n=64, alpha=3, epsilon=0.5)
    assert a == b
    assert config_digest(a) == config_digest(b)


def test_config_changes_change_identity():
    base = JobSpec.make("test_planarity", n=64, epsilon=0.5)
    assert base != JobSpec.make("test_planarity", n=64, epsilon=0.25)
    assert base != JobSpec.make("test_planarity", n=64, epsilon=0.5, seed=1)
    assert config_digest(base) != config_digest(
        JobSpec.make("test_planarity", n=64, epsilon=0.25)
    )


def test_builtin_kinds_registered():
    kinds = job_kinds()
    for kind in (
        "test_planarity",
        "partition_stage1",
        "partition_randomized",
        "spanner",
        "cycle_freeness",
        "bipartiteness",
    ):
        assert kind in kinds


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown job kind"):
        JobSpec.make("nope")
    with pytest.raises(ValueError, match="unknown job kind"):
        run_job(JobSpec(kind="nope"))


def test_run_job_planarity_record():
    spec = JobSpec.make("test_planarity", family="grid", n=36, epsilon=0.5)
    record = run_job(spec)
    assert record["kind"] == "test_planarity"
    assert record["accepted"] is True
    assert record["n"] == 36
    assert record["rounds"] == record["stage1_rounds"] + record["stage2_rounds"]
    # Records must be flat JSON-serializable primitives.
    import json

    assert json.loads(json.dumps(record)) == record


def test_run_job_is_deterministic():
    spec = JobSpec.make("partition_randomized", family="grid", n=36,
                        epsilon=0.5, delta=0.2, seed=3)
    assert run_job(spec) == run_job(spec)


def test_run_job_far_family():
    spec = JobSpec.make("test_planarity", far="planted-k5", n=80,
                        epsilon=0.1, collect_exact_violations=True)
    record = run_job(spec)
    assert record["graph"] == "far:planted-k5"
    assert record["family"] == "planted-k5"


def test_run_job_spanner_record():
    spec = JobSpec.make("spanner", family="grid", n=36, epsilon=0.5)
    record = run_job(spec)
    assert record["spanner_edges"] >= record["n"] - 1
    assert record["measured_stretch"] >= 1.0


def test_run_job_applications():
    cycle = run_job(JobSpec.make("cycle_freeness", family="tree", n=40,
                                 epsilon=0.5))
    assert cycle["accepted"] is True
    bip = run_job(JobSpec.make("bipartiteness", family="grid", n=36,
                               epsilon=0.5))
    assert bip["accepted"] is True
