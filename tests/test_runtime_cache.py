"""Content-addressed result cache (repro.runtime.cache)."""

from __future__ import annotations

import networkx as nx

from repro.runtime import JobSpec, ResultCache, graph_fingerprint
from repro.runtime.cache import KeyDeriver, cache_key, config_digest


def test_fingerprint_ignores_edge_orientation_and_order():
    a = nx.Graph([(0, 1), (1, 2), (2, 3)])
    b = nx.Graph([(3, 2), (2, 1), (1, 0)])
    assert graph_fingerprint(a) == graph_fingerprint(b)


def test_fingerprint_sees_structure():
    path = nx.path_graph(4)
    cycle = nx.cycle_graph(4)
    assert graph_fingerprint(path) != graph_fingerprint(cycle)
    isolated = nx.Graph([(0, 1), (1, 2), (2, 3)])
    isolated.add_node(99)
    assert graph_fingerprint(path) != graph_fingerprint(isolated)


def test_cache_hit_miss_semantics():
    cache = ResultCache()
    assert cache.lookup("k") is None
    assert cache.stats.misses == 1
    cache.store("k", {"rounds": 3})
    assert cache.lookup("k") == {"rounds": 3}
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5


def test_config_change_invalidates_key():
    deriver = KeyDeriver()
    a = deriver.key_for(JobSpec.make("test_planarity", family="grid", n=36,
                                     epsilon=0.5))
    b = deriver.key_for(JobSpec.make("test_planarity", family="grid", n=36,
                                     epsilon=0.25))
    c = deriver.key_for(JobSpec.make("partition_stage1", family="grid", n=36,
                                     epsilon=0.5))
    assert len({a, b, c}) == 3


def test_same_graph_different_phrasing_shares_fingerprint():
    spec = JobSpec.make("test_planarity", family="grid", n=36, epsilon=0.5)
    fingerprint = graph_fingerprint(spec.build_graph())
    # The key is the same however the graph was obtained, as long as the
    # structure and the non-graph config agree.
    assert cache_key(spec, fingerprint) == cache_key(spec, fingerprint)
    assert config_digest(spec) == config_digest(
        JobSpec.make("test_planarity", family="tri-grid", n=100, epsilon=0.5)
    )


def test_lru_eviction():
    cache = ResultCache(max_entries=2)
    cache.store("a", {"v": 1})
    cache.store("b", {"v": 2})
    cache.store("c", {"v": 3})
    assert cache.stats.evictions == 1
    assert cache.lookup("a") is None  # oldest evicted
    assert cache.lookup("b") == {"v": 2}
    assert cache.lookup("c") == {"v": 3}
    # The lookups above touched "b" then "c", so "b" is now the LRU
    # entry and the next insert evicts it.
    cache.store("d", {"v": 4})
    assert cache.lookup("b") is None
    assert cache.lookup("c") == {"v": 3}


def test_disk_store_round_trip(tmp_path):
    first = ResultCache(disk_dir=tmp_path / "store")
    first.store("key1", {"rounds": 7, "accepted": True})
    # A brand-new cache instance (fresh process in real life) re-reads
    # the JSON store.
    second = ResultCache(disk_dir=tmp_path / "store")
    assert second.lookup("key1") == {"rounds": 7, "accepted": True}
    assert second.stats.disk_hits == 1
    # Corrupt files degrade to a miss, not a crash.
    (tmp_path / "store" / "bad.json").write_text("{not json")
    assert second.lookup("bad") is None


def test_clear(tmp_path):
    cache = ResultCache(disk_dir=tmp_path / "store")
    cache.store("k", {"v": 1})
    cache.clear()
    assert len(cache) == 0
    assert cache.lookup("k") == {"v": 1}  # still on disk
    cache.clear(disk=True)
    assert cache.lookup("k") is None


class TestCoordinateKeys:
    """The REPRO_CACHE_COORD_KEYS=1 fast path (skip generation on hit)."""

    def _spec(self, **kw):
        from repro.runtime import JobSpec

        defaults = dict(kind="partition_stage1", family="grid", n=36, seed=0)
        defaults.update(kw)
        return JobSpec.make(**defaults)

    def test_coordinate_fingerprint_depends_only_on_coordinates(self):
        from repro.runtime import coordinate_fingerprint

        base = self._spec(epsilon=0.5)
        same_graph = self._spec(epsilon=0.1, seed=7, graph_seed=0)
        other_graph = self._spec(epsilon=0.5, seed=1)  # seed drives the graph
        assert coordinate_fingerprint(base) == coordinate_fingerprint(same_graph)
        assert coordinate_fingerprint(base) != coordinate_fingerprint(other_graph)
        assert coordinate_fingerprint(base).startswith("coord:")

    def test_deriver_skips_generation(self, monkeypatch):
        from repro.runtime.cache import KeyDeriver

        spec = self._spec(epsilon=0.5)
        deriver = KeyDeriver(coord_keys=True)
        key = deriver.key_for(spec)
        assert deriver.graph_for(spec) is None  # no graph was built
        assert key != KeyDeriver(coord_keys=False).key_for(spec)

    def test_env_knob_defaults_on(self, monkeypatch):
        from repro.runtime.cache import COORD_KEYS_ENV_VAR, KeyDeriver

        monkeypatch.setenv(COORD_KEYS_ENV_VAR, "1")
        assert KeyDeriver().coord_keys
        monkeypatch.delenv(COORD_KEYS_ENV_VAR)
        # Coordinate keys are the default; "0" is the opt-out.
        assert KeyDeriver().coord_keys
        monkeypatch.setenv(COORD_KEYS_ENV_VAR, "0")
        assert not KeyDeriver().coord_keys

    def test_determinism_cross_check(self, monkeypatch):
        """Coordinate keys are sound: regeneration is bit-stable and both
        key modes produce identical records for the same specs."""
        from repro.runtime import ResultCache, graph_fingerprint, run_jobs

        spec = self._spec(epsilon=0.5)
        # The generator is deterministic in its coordinates: two
        # independent builds share a content fingerprint.
        assert graph_fingerprint(spec.build_graph()) == graph_fingerprint(
            spec.build_graph()
        )

        specs = [self._spec(epsilon=eps) for eps in (0.5, 0.25)]
        from repro.runtime.cache import COORD_KEYS_ENV_VAR

        monkeypatch.setenv(COORD_KEYS_ENV_VAR, "0")
        content = run_jobs(specs, cache=ResultCache())
        monkeypatch.setenv(COORD_KEYS_ENV_VAR, "1")
        coord_cache = ResultCache()
        coord_first = run_jobs(specs, cache=coord_cache)
        coord_second = run_jobs(specs, cache=coord_cache)
        assert content.records == coord_first.records
        assert coord_second.records == coord_first.records
        assert coord_second.executed == 0  # fully served from cache
        assert coord_second.cache_stats.hits == len(specs)

    def test_every_bundled_generator_is_coordinate_deterministic(self):
        """The certification behind the coordinate-keys default: every
        planar and far family regenerates bit-identically from its
        coordinates (two independent builds share a content
        fingerprint, across two seeds)."""
        from repro.graphs.far_from_planar import FAR_FAMILIES
        from repro.graphs.generators import PLANAR_FAMILIES
        from repro.runtime import JobSpec, graph_fingerprint

        def fingerprints(**kw):
            spec = JobSpec.make("partition_stage1", n=48, **kw)
            return (
                graph_fingerprint(spec.build_graph()),
                graph_fingerprint(spec.build_graph()),
            )

        for family in sorted(PLANAR_FAMILIES):
            for seed in (0, 3):
                first, second = fingerprints(family=family, seed=seed)
                assert first == second, (family, seed)
        for family in sorted(FAR_FAMILIES):
            for seed in (0, 3):
                first, second = fingerprints(far=family, seed=seed)
                assert first == second, (family, seed)

    def test_repeat_sweep_is_all_hits_with_zero_generations(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: a repeated sweep against the sharded store is a
        100% cache hit that never touches the generators."""
        import repro.runtime.jobs as jobs_mod
        from repro.runtime import ResultCache, SweepSpec, run_sweep

        sweep = SweepSpec.make(
            "partition_stage1", families=["grid", "tree"], ns=[36],
            seeds=[0, 1], epsilon=[0.5, 0.25],
        )
        run_sweep(sweep, cache=ResultCache(disk_dir=tmp_path / "store"))

        calls = {"planar": 0, "far": 0}
        real_planar, real_far = jobs_mod.make_planar, jobs_mod.make_far

        def counting_planar(*args, **kwargs):
            calls["planar"] += 1
            return real_planar(*args, **kwargs)

        def counting_far(*args, **kwargs):
            calls["far"] += 1
            return real_far(*args, **kwargs)

        monkeypatch.setattr(jobs_mod, "make_planar", counting_planar)
        monkeypatch.setattr(jobs_mod, "make_far", counting_far)
        repeat = run_sweep(
            sweep, cache=ResultCache(disk_dir=tmp_path / "store")
        )
        assert repeat.batch.executed == 0
        assert repeat.batch.cache_stats.hits == sweep.size
        assert calls == {"planar": 0, "far": 0}  # zero graph generations
