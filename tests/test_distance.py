"""Tests for the farness certification machinery."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import (
    bipartiteness_farness_bounds,
    cycle_freeness_distance,
    cycle_freeness_farness,
    greedy_maximal_planar_subgraph,
    planarity_farness_bounds,
    planarity_farness_lower_bound,
    planarity_skewness_lower_bound,
    triangulated_grid,
)
from repro.planarity import is_planar


class TestPlanaritySkewness:
    def test_planar_graph_zero(self, small_grid):
        assert planarity_skewness_lower_bound(small_grid) == 0

    def test_k5_at_least_one(self, k5):
        assert planarity_skewness_lower_bound(k5) >= 1

    def test_k6_at_least_two(self):
        # K6: m=15, 3n-6=12 -> skewness >= 3 by Euler alone
        assert planarity_skewness_lower_bound(nx.complete_graph(6)) >= 3

    def test_girth_refinement_tightens(self):
        # K3,3: m=9, 3n-6=12 (no Euler bound), but girth 4 gives
        # budget 2(n-2)=8 -> skewness >= 1.
        k33 = nx.complete_bipartite_graph(3, 3)
        assert planarity_skewness_lower_bound(k33, use_girth=False) == 0
        assert planarity_skewness_lower_bound(k33, use_girth=True) >= 1

    def test_farness_fraction(self, k5):
        assert planarity_farness_lower_bound(k5) == pytest.approx(1 / 10)

    def test_empty_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        assert planarity_farness_lower_bound(graph) == 0.0

    def test_disconnected_sums_components(self, k5):
        graph = nx.union(k5, nx.relabel_nodes(k5, {i: i + 10 for i in range(5)}))
        assert planarity_skewness_lower_bound(graph) >= 2


class TestGreedyPlanarSubgraph:
    def test_planar_input_kept_whole(self, small_grid):
        sub = greedy_maximal_planar_subgraph(small_grid, seed=1)
        assert sub.number_of_edges() == small_grid.number_of_edges()

    def test_output_planar(self, k5):
        sub = greedy_maximal_planar_subgraph(k5, seed=1)
        assert is_planar(sub)
        assert sub.number_of_edges() == 9  # K5 minus exactly one edge

    def test_bounds_are_ordered(self, far_zoo):
        for name, graph, _f in far_zoo:
            lower, upper = planarity_farness_bounds(graph, seed=0)
            assert 0 <= lower <= upper <= 1, name

    def test_k5_bounds_tight(self, k5):
        lower, upper = planarity_farness_bounds(k5)
        assert lower == upper == pytest.approx(0.1)


class TestCycleFreeness:
    def test_tree_distance_zero(self):
        assert cycle_freeness_distance(nx.random_labeled_tree(20, seed=0)) == 0

    def test_cycle_distance_one(self):
        assert cycle_freeness_distance(nx.cycle_graph(9)) == 1

    def test_triangulated_grid_far(self):
        graph = triangulated_grid(8, 8)
        assert cycle_freeness_farness(graph) > 0.5

    def test_disconnected(self):
        graph = nx.union(
            nx.cycle_graph(3),
            nx.relabel_nodes(nx.cycle_graph(3), {i: i + 5 for i in range(3)}),
        )
        assert cycle_freeness_distance(graph) == 2

    def test_empty(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert cycle_freeness_farness(graph) == 0.0


class TestBipartiteness:
    def test_bipartite_bounds_zero(self, small_grid):
        lower, upper = bipartiteness_farness_bounds(small_grid, seed=0)
        assert lower == 0.0
        assert upper == 0.0

    def test_odd_cycle_bounds(self):
        lower, upper = bipartiteness_farness_bounds(nx.cycle_graph(9), seed=0)
        assert lower == pytest.approx(1 / 9)
        assert upper >= lower

    def test_triangulated_grid_far_from_bipartite(self):
        graph = triangulated_grid(8, 8)
        lower, upper = bipartiteness_farness_bounds(graph, seed=0)
        assert lower > 0.1
        assert upper >= lower

    def test_complete_graph(self):
        lower, upper = bipartiteness_farness_bounds(nx.complete_graph(6), seed=0)
        assert 0 < lower <= upper <= 1
