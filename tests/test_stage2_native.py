"""Differential tests: the CSR-native Stage II pipeline vs the seed path.

Covers the three native substitutions -- one-pass part-subgraph
extraction, Fenwick-backed sampled-interlacement resolution, and the
dense Stage I feeding the tester -- asserting identical per-part
verdicts, reasons, sampled counts, and round charges against the seed
configuration (subgraph views + pairwise scans + legacy partition) on
planar and far generators alike.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import make_far, make_planar
from repro.graphs.far_from_planar import FAR_FAMILIES
from repro.graphs.generators import PLANAR_FAMILIES
from repro.partition import partition_stage1
from repro.testers.planarity import PlanarityTestConfig
from repro.testers.planarity import test_planarity as run_planarity
from repro.testers.stage2 import extract_part_subgraphs
from repro.testers.violations import sample_and_detect

SEED_CONFIG = dict(engine="legacy", native=False)


def _canonical(result):
    return (
        result.accepted,
        result.rejected_stage,
        result.rejecting_parts,
        result.stage1_rounds,
        result.stage2_rounds,
        [
            (
                verdict.pid,
                verdict.accepted,
                verdict.reason,
                verdict.n,
                verdict.m,
                verdict.non_tree_edges,
                verdict.bfs_depth,
                verdict.embedding_planar,
                verdict.sampled,
                verdict.violating_exact,
                verdict.rounds,
            )
            for verdict in (result.part_verdicts or [])
        ],
    )


class TestTesterDifferential:
    @pytest.mark.parametrize("family", sorted(PLANAR_FAMILIES))
    def test_planar_families_identical(self, family):
        graph = make_planar(family, 150, seed=0)
        for seed in (0, 1):
            native = run_planarity(
                graph, seed=seed, config=PlanarityTestConfig(epsilon=0.1)
            )
            legacy = run_planarity(
                graph,
                seed=seed,
                config=PlanarityTestConfig(epsilon=0.1, **SEED_CONFIG),
            )
            assert _canonical(native) == _canonical(legacy), (family, seed)

    @pytest.mark.parametrize("far", sorted(FAR_FAMILIES))
    def test_far_families_identical(self, far):
        graph, certified = make_far(far, 150, seed=0)
        epsilon = min(0.3, max(0.05, certified * 0.9))
        for seed in (0, 1, 2):
            native = run_planarity(
                graph, seed=seed, config=PlanarityTestConfig(epsilon=epsilon)
            )
            legacy = run_planarity(
                graph,
                seed=seed,
                config=PlanarityTestConfig(epsilon=epsilon, **SEED_CONFIG),
            )
            assert _canonical(native) == _canonical(legacy), (far, seed)

    def test_exact_violation_analysis_identical(self):
        graph, _ = make_far("planted-k5", 120, seed=0)
        native = run_planarity(
            graph,
            seed=0,
            config=PlanarityTestConfig(
                epsilon=0.1, collect_exact_violations=True
            ),
        )
        legacy = run_planarity(
            graph,
            seed=0,
            config=PlanarityTestConfig(
                epsilon=0.1, collect_exact_violations=True, **SEED_CONFIG
            ),
        )
        assert native.total_violating_exact == legacy.total_violating_exact
        assert _canonical(native) == _canonical(legacy)


class TestExtraction:
    def test_subgraphs_match_views_exactly(self):
        graph = make_planar("delaunay", 200, seed=1)
        stage1 = partition_stage1(graph, epsilon=0.2)
        partition = stage1.partition
        subs = extract_part_subgraphs(graph, partition)
        assert set(subs) == set(partition.parts)
        for pid, part in partition.parts.items():
            view = graph.subgraph(part.nodes)
            sub = subs[pid]
            # Same node set and iteration order as the view.
            assert list(sub.nodes()) == list(view.nodes())
            assert sub.number_of_edges() == view.number_of_edges()
            for node in view.nodes():
                # Same per-row adjacency iteration order.
                assert list(sub.adj[node]) == list(view.adj[node])

    def test_extraction_shares_parent_data(self):
        import networkx as nx

        graph = nx.path_graph(4)
        graph.nodes[1]["tag"] = "kept"
        graph.edges[1, 2]["weight"] = 7
        stage1 = partition_stage1(graph, epsilon=1.0, max_phases=0)
        subs = extract_part_subgraphs(graph, stage1.partition)
        merged = {
            node: data
            for sub in subs.values()
            for node, data in sub.nodes(data=True)
        }
        assert merged[1] == {"tag": "kept"}


class TestSamplingFastPath:
    def test_mask_resolution_matches_scan(self):
        rng_intervals = random.Random(7)
        for _trial in range(50):
            k = rng_intervals.randrange(0, 40)
            universe = max(2 * k, 4)
            intervals = []
            for _ in range(k):
                a, b = rng_intervals.sample(range(universe), 2)
                intervals.append((min(a, b), max(a, b)))
            for seed in range(3):
                scan = sample_and_detect(
                    intervals, 5, random.Random(seed)
                )
                fast = sample_and_detect(
                    intervals, 5, random.Random(seed), universe=universe
                )
                assert scan == fast
