"""Cost book, cost model, and LPT shard balancing (repro.runtime.scheduler)."""

from __future__ import annotations

import pytest

from repro.runtime import (
    CostBook,
    CostModel,
    JobSpec,
    ResultCache,
    ShardedStore,
    ShardedSweep,
    SweepSpec,
    assign_shards,
    job_shard,
    run_sweep,
)
from repro.runtime.scheduler import cost_meta_key


def _specs(kind="test_planarity", ns=(36, 64), seeds=(0, 1)):
    return [
        JobSpec.make(kind, family="grid", n=n, seed=seed, epsilon=0.5)
        for n in ns
        for seed in seeds
    ]


class TestCostBook:
    def test_observe_and_flush_round_trip(self, tmp_path):
        store = ShardedStore(tmp_path / "s")
        book = CostBook(store)
        book.observe("test_planarity", 36, 0.5)
        book.observe("test_planarity", 36, 1.5)
        book.observe("test_planarity", 64, 4.0)
        assert book.observations == 3
        assert book.flush() == 2
        assert book.observations == 0
        cell = store.get_meta(cost_meta_key("test_planarity", 36))
        assert cell["count"] == 2
        assert cell["total_s"] == 2.0
        assert cell["mean_s"] == 1.0

    def test_flush_merges_across_runs(self, tmp_path):
        store = ShardedStore(tmp_path / "s")
        first = CostBook(store)
        first.observe("k", 100, 1.0)
        first.flush()
        second = CostBook(ShardedStore(tmp_path / "s"))
        second.observe("k", 100, 3.0)
        second.flush()
        cell = store.get_meta(cost_meta_key("k", 100))
        assert cell["count"] == 2
        assert cell["mean_s"] == 2.0

    def test_storeless_book_is_a_noop(self):
        book = CostBook(None)
        book.observe("k", 10, 1.0)
        assert book.flush() == 0


class TestCostModel:
    def test_exact_cells_and_power_law_interpolation(self):
        model = CostModel(samples={"k": {100: 0.1, 200: 0.2}})
        assert model.predict("k", 100) == 0.1
        # Two measured sizes fit cost ~ a*n^b with b ~ 1 here.
        assert model.predict("k", 400) == pytest.approx(0.4, rel=0.05)
        assert model.predict("unknown", 100) is None
        assert not model.empty

    def test_single_anchor_scales_linearly(self):
        model = CostModel(samples={"k": {128: 0.5}})
        assert model.predict("k", 256) == pytest.approx(1.0)

    def test_from_store_reads_flushed_history(self, tmp_path):
        store = ShardedStore(tmp_path / "s")
        book = CostBook(store)
        book.observe("test_planarity", 36, 0.25)
        book.flush()
        model = CostModel.from_store(store)
        assert model.predict("test_planarity", 36) == pytest.approx(0.25)
        assert CostModel.from_store(None).empty


class TestAssignShards:
    def test_deterministic_given_fixed_cost_table(self):
        specs = _specs(ns=(36, 64, 100), seeds=(0, 1))
        model = CostModel(samples={"test_planarity": {36: 0.1, 100: 1.0}})
        first = assign_shards(specs, 3, model=model)
        second = assign_shards(list(specs), 3, model=model)
        assert first == second
        assert all(0 <= shard < 3 for shard in first)
        # Same model rebuilt from the same table: same assignment.
        clone = CostModel(samples={"test_planarity": {36: 0.1, 100: 1.0}})
        assert assign_shards(specs, 3, model=clone) == first

    def test_empty_history_falls_back_to_hash(self):
        specs = _specs()
        assert assign_shards(specs, 4, model=CostModel()) == [
            job_shard(spec, 4) for spec in specs
        ]
        assert assign_shards(specs, 4, model=None) == [
            job_shard(spec, 4) for spec in specs
        ]

    def test_lpt_balances_known_costs(self):
        # One heavy size and many light ones: hash splitting can land
        # several heavies together; LPT never does.
        specs = _specs(ns=(1000, 64), seeds=(0, 1, 2, 3))
        model = CostModel(
            samples={"test_planarity": {1000: 10.0, 64: 0.1}}
        )
        assignment = assign_shards(specs, 4, model=model)
        heavy_shards = [
            shard
            for spec, shard in zip(specs, assignment)
            if spec.n == 1000
        ]
        assert sorted(heavy_shards) == [0, 1, 2, 3]  # one heavy each

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="positive"):
            assign_shards(_specs(), 0)


class TestCostBalancedSweeps:
    def _sweep(self):
        return SweepSpec.make(
            "test_planarity",
            families=["grid", "tree"],
            ns=[36],
            seeds=[0, 1],
            epsilon=[0.5, 0.25],
        )

    def test_cost_shards_partition_the_grid(self):
        model = CostModel(samples={"test_planarity": {36: 0.1}})
        sharded = ShardedSweep(self._sweep(), 3, balance="cost",
                               cost_model=model)
        pieces = [sharded.shard_specs(i) for i in range(3)]
        flattened = [spec for piece in pieces for spec in piece]
        assert sorted(flattened, key=lambda s: s.canonical()) == sorted(
            self._sweep().expand(), key=lambda s: s.canonical()
        )

    def test_cost_merge_restores_expansion_order(self):
        model = CostModel(samples={"test_planarity": {36: 0.1}})
        sharded = ShardedSweep(self._sweep(), 2, balance="cost",
                               cost_model=model)
        results = [sharded.run_shard(i) for i in range(2)]
        merged = sharded.merge(results)
        assert merged.records == run_sweep(self._sweep()).records

    def test_invalid_balance_rejected(self):
        with pytest.raises(ValueError, match="balance"):
            ShardedSweep(self._sweep(), 2, balance="magic")

    def test_run_sweep_records_costs_into_store(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        run_sweep(self._sweep(), cache=cache)
        store = cache.store_backend
        cell = store.get_meta(cost_meta_key("test_planarity", 36))
        assert cell is not None
        assert cell["count"] == self._sweep().size
        assert cell["mean_s"] > 0
        # A resume run is all hits: no new observations land.
        run_sweep(self._sweep(), cache=ResultCache(disk_dir=tmp_path / "store"),
                  resume=True)
        after = store.get_meta(cost_meta_key("test_planarity", 36))
        assert after["count"] == cell["count"]

    def test_cost_balanced_shards_complete_with_resume(self, tmp_path):
        """Fleet workflow: hash-split legs seed the cost table, then a
        cost-balanced split still covers the grid and resumes clean."""
        sweep = self._sweep()
        store_dir = tmp_path / "store"
        run_sweep(sweep, cache=ResultCache(disk_dir=store_dir))
        model = CostModel.from_store(
            ResultCache(disk_dir=store_dir).store_backend
        )
        assert not model.empty
        for index in range(2):
            run_sweep(
                sweep,
                cache=ResultCache(disk_dir=store_dir),
                shard=(index, 2),
                balance="cost",
                cost_model=model,
            )
        final = run_sweep(
            sweep, cache=ResultCache(disk_dir=store_dir), resume=True
        )
        assert final.batch.executed == 0
        assert final.records == run_sweep(sweep).records
