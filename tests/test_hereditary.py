"""Tests for the generic hereditary-property tester (paper remark after
Corollary 16) and its built-in checkers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import (
    grid_graph,
    make_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)
from repro.testers import (
    BUILTIN_CHECKERS,
    bipartiteness_checker,
    cycle_freeness_checker,
    degeneracy_checker,
    outerplanarity_checker,
    planarity_checker,
    test_hereditary_property as run_hereditary,
)


class TestCheckers:
    def test_cycle_freeness_checker(self):
        tree = random_tree(30, seed=0)
        ok, rounds = cycle_freeness_checker(tree, 0)
        assert ok and rounds > 0
        ok, _ = cycle_freeness_checker(nx.cycle_graph(6), 0)
        assert not ok

    def test_bipartiteness_checker(self):
        ok, _ = bipartiteness_checker(nx.cycle_graph(6), 0)
        assert ok
        ok, _ = bipartiteness_checker(nx.cycle_graph(5), 0)
        assert not ok

    def test_planarity_checker(self, k5):
        ok, _ = planarity_checker(nx.wheel_graph(8), 0)
        assert ok
        ok, _ = planarity_checker(k5, 0)
        assert not ok

    def test_outerplanarity_checker(self):
        ok, _ = outerplanarity_checker(random_outerplanar(30, seed=1), 0)
        assert ok
        # K4 is planar but not outerplanar
        ok, _ = outerplanarity_checker(nx.complete_graph(4), 0)
        assert not ok

    def test_degeneracy_checker_factory(self):
        checker = degeneracy_checker(1)
        ok, _ = checker(random_tree(20, seed=0), 0)
        assert ok
        ok, _ = checker(nx.cycle_graph(5), 0)
        assert not ok


class TestHereditaryTester:
    def test_outerplanar_accepted(self):
        graph = random_outerplanar(200, seed=1)
        result = run_hereditary(graph, "outerplanar", epsilon=0.3)
        assert result.accepted
        assert result.property_name == "outerplanar"

    def test_tri_grid_not_outerplanar(self):
        graph = triangulated_grid(12, 12)
        result = run_hereditary(graph, "outerplanar", epsilon=0.3)
        assert not result.accepted
        assert result.rejecting_parts

    def test_tri_grid_is_planar(self):
        graph = triangulated_grid(10, 10)
        result = run_hereditary(graph, "planar", epsilon=0.3)
        assert result.accepted

    def test_custom_checker(self):
        def max_degree_4(sub, root):
            return max(dict(sub.degree()).values() or [0]) <= 4, 3

        grid = grid_graph(10, 10)
        result = run_hereditary(grid, max_degree_4, epsilon=0.3)
        assert result.accepted
        assert result.property_name == "max_degree_4"

    def test_builtin_names_consistent(self):
        assert set(BUILTIN_CHECKERS) == {
            "cycle-free", "bipartite", "planar", "outerplanar"
        }

    def test_matches_corollary16_testers(self):
        graph = triangulated_grid(10, 10)
        cyc = run_hereditary(graph, "cycle-free", epsilon=0.4)
        bip = run_hereditary(graph, "bipartite", epsilon=0.2)
        assert not cyc.accepted and not bip.accepted

    def test_randomized_method(self):
        graph = random_outerplanar(150, seed=2)
        result = run_hereditary(
            graph, "outerplanar", epsilon=0.3, method="randomized", seed=1
        )
        assert result.accepted

    def test_unknown_builtin(self, small_grid):
        with pytest.raises(ValueError):
            run_hereditary(small_grid, "chromatic")

    def test_unknown_method(self, small_grid):
        with pytest.raises(ValueError):
            run_hereditary(small_grid, "planar", method="psychic")

    def test_invalid_epsilon(self, small_grid):
        with pytest.raises(ValueError):
            run_hereditary(small_grid, "planar", epsilon=0)

    def test_rounds_accounting(self):
        graph = make_planar("delaunay", 150, seed=3)
        result = run_hereditary(graph, "planar", epsilon=0.3)
        assert result.rounds == result.partition_rounds + result.verification_rounds
        assert result.verification_rounds > 0
