"""SweepService + Client: fairness, cancellation, speculation, parity."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.runtime import Client, ServiceError, SweepService
from repro.runtime.codec import encode_wire_frame, read_wire_frame
from repro.runtime.jobs import job_kinds
from repro.runtime.remote import PROTOCOL_VERSION
from repro.runtime.scheduler import SpeculationPolicy
from repro.runtime.store import ShardedStore
from repro.runtime.sweeps import SweepSpec
from repro.runtime.worker import _result_frame, retry_delays, serve_remote


def small_sweep(ns=(36,), seeds=(0,), epsilon=(0.5,)):
    return SweepSpec.make(
        "test_planarity", families=["grid"], ns=list(ns),
        epsilon=list(epsilon), seeds=list(seeds),
    )


def wait_until(cond, timeout=15.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


def start_worker(service, reconnect=False):
    """A real in-process worker thread serving *service*'s fleet."""
    thread = threading.Thread(
        target=serve_remote,
        args=(service.host, service.bound_port),
        kwargs={"reconnect": reconnect},
        daemon=True,
    )
    thread.start()
    return thread


class ScriptedWorker:
    """A hand-rolled TCP worker with a per-job delay, for straggler tests."""

    def __init__(self, service, delay=0.0):
        self.endpoint = (service.host, service.bound_port)
        self.delay = delay
        self.jobs = 0
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        sock = socket.create_connection(self.endpoint, timeout=30.0)
        sock.settimeout(30.0)
        reader = sock.makefile("rb")
        sock.sendall(encode_wire_frame({
            "op": "hello",
            "protocol": PROTOCOL_VERSION,
            "kinds": list(job_kinds()),
            "store": None,
            "pid": 0,
        }))
        welcome = read_wire_frame(reader)
        assert welcome is not None and welcome.get("op") == "welcome"
        sent_shapes = set()
        try:
            while True:
                frame = read_wire_frame(reader)
                if frame is None or frame.get("op") == "exit":
                    return
                op = frame.get("op")
                if op == "ping":
                    sock.sendall(encode_wire_frame({"op": "pong"}))
                elif op == "job":
                    if self.delay:
                        time.sleep(self.delay)
                    self.jobs += 1
                    sock.sendall(_result_frame(frame, None, sent_shapes))
        except OSError:
            pass
        finally:
            sock.close()


def raw_submit(service, sweep, name):
    """Open a bare client socket with one submit frame on the wire."""
    sock = socket.create_connection(
        (service.host, service.bound_port), timeout=15.0
    )
    sock.settimeout(15.0)
    sock.sendall(encode_wire_frame({
        "op": "submit",
        "protocol": PROTOCOL_VERSION,
        "client": name,
        "sweep_json": json.dumps(sweep.to_payload(), sort_keys=True),
    }))
    return sock


def count_put_raw(monkeypatch):
    """Count every ShardedStore.put_raw in this process (service+workers)."""
    calls = []
    original = ShardedStore.put_raw

    def counting(self, key, payload, **kwargs):
        calls.append(key)
        return original(self, key, payload, **kwargs)

    monkeypatch.setattr(ShardedStore, "put_raw", counting)
    return calls


class TestClientParity:
    def test_local_remote_records_identical(self, tmp_path, monkeypatch):
        puts = count_put_raw(monkeypatch)
        sweep = small_sweep(ns=(36, 64), epsilon=(0.5, 0.25))
        reference = Client(backend="serial").run(sweep)
        assert len(reference) == sweep.size
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            start_worker(svc, reconnect=True)
            wait_until(lambda: svc.active_workers == 1, what="worker join")
            progress = []
            remote = list(
                Client(endpoint=svc.endpoint, name="parity").submit(
                    sweep, on_progress=progress.append
                )
            )
            assert remote == reference
            assert progress and progress[0]["total"] == sweep.size
            # The worker adopted the service's store but job frames say
            # nostore: only the service appends, exactly once per job.
            assert len(puts) == sweep.size
            # Resubmission is answered from the store: same records, no
            # dispatch, no further appends.
            again = Client(endpoint=svc.endpoint, name="parity2").run(sweep)
            assert again == reference
            assert len(puts) == sweep.size
            assert len(svc.dispatch_log) == sweep.size

    def test_local_backend_uses_cache_dir(self, tmp_path):
        sweep = small_sweep(ns=(36, 64))
        first = Client(backend="serial", cache_dir=str(tmp_path / "c")).run(
            sweep
        )
        second = Client(backend="serial", cache_dir=str(tmp_path / "c")).run(
            sweep
        )
        assert first == second == Client().run(sweep)


class TestFairness:
    def test_two_clients_alternate_on_one_worker(self, tmp_path):
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            sweep_a = small_sweep(ns=(36, 64, 100), seeds=(0,))
            sweep_b = small_sweep(ns=(36, 64, 100), seeds=(1,))
            it_a = Client(endpoint=svc.endpoint, name="a").submit(sweep_a)
            wait_until(lambda: svc.active_clients == 1, what="client a")
            it_b = Client(endpoint=svc.endpoint, name="b").submit(sweep_b)
            wait_until(lambda: svc.active_clients == 2, what="client b")
            start_worker(svc)
            records_a = list(it_a)
            records_b = list(it_b)
            assert len(records_a) == len(records_b) == 3
            # One worker, two equal queues: strict round-robin
            # alternation, however unequal the arrival times were.
            names = [name for name, _index in svc.dispatch_log]
            assert names == ["a", "b", "a", "b", "a", "b"]

    def test_identical_submissions_coalesce(self):
        # No store: deduplication must come from in-flight coalescing.
        with SweepService(heartbeat=2.0) as svc:
            sweep = small_sweep(ns=(36, 64))
            it_a = Client(endpoint=svc.endpoint, name="a").submit(sweep)
            wait_until(lambda: svc.active_clients == 1, what="client a")
            it_b = Client(endpoint=svc.endpoint, name="b").submit(sweep)
            wait_until(lambda: svc.active_clients == 2, what="client b")
            start_worker(svc)
            records_a = list(it_a)
            records_b = list(it_b)
            assert records_a == records_b
            assert len(records_a) == sweep.size
            # Each distinct job dispatched exactly once for both clients.
            assert len(svc.dispatch_log) == sweep.size


class TestCancellation:
    def test_disconnect_cancels_only_its_queued_jobs(
        self, tmp_path, monkeypatch
    ):
        puts = count_put_raw(monkeypatch)
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            doomed = raw_submit(
                svc, small_sweep(ns=(36, 64, 100), seeds=(0,)), "doomed"
            )
            wait_until(lambda: svc.active_clients == 1, what="doomed client")
            survivor_sweep = small_sweep(ns=(36, 64), seeds=(9,))
            it = Client(endpoint=svc.endpoint, name="survivor").submit(
                survivor_sweep
            )
            wait_until(lambda: svc.active_clients == 2, what="survivor")
            # The doomed client vanishes before any worker exists: all
            # of its jobs are still queued and must be dropped.
            doomed.close()
            wait_until(lambda: svc.active_clients == 1, what="drop session")
            start_worker(svc)
            records = list(it)
            assert len(records) == survivor_sweep.size
            # Only the survivor's jobs ran or reached the store.
            assert {name for name, _i in svc.dispatch_log} == {"survivor"}
            assert len(puts) == survivor_sweep.size

    def test_cancel_frame_returns_cancelled_verdict(self, tmp_path):
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            sock = raw_submit(svc, small_sweep(ns=(36, 64)), "quitter")
            reader = sock.makefile("rb")
            first = read_wire_frame(reader)
            assert first["op"] == "progress"
            assert first["total"] == 2
            sock.sendall(encode_wire_frame({"op": "cancel"}))
            frame = read_wire_frame(reader)
            while frame is not None and frame.get("op") != "verdict":
                frame = read_wire_frame(reader)
            assert frame is not None
            assert frame["ok"] is False
            assert frame["cancelled"] is True
            sock.close()
            wait_until(lambda: svc.active_clients == 0, what="session end")
            # The service survives the cancel and serves the next client.
            start_worker(svc)
            records = Client(endpoint=svc.endpoint).run(small_sweep())
            assert len(records) == 1

    def test_abandoned_iterator_cancels_session(self, tmp_path):
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            ScriptedWorker(svc, delay=0.2)
            wait_until(lambda: svc.active_workers == 1, what="worker join")
            iterator = Client(endpoint=svc.endpoint, name="leaver").submit(
                small_sweep(ns=(36, 64, 100, 144))
            )
            next(iterator)
            iterator.close()  # the generator's finally sends cancel
            wait_until(lambda: svc.active_clients == 0, what="session end")


class TestSpeculation:
    def test_straggler_redispatch_single_store_row(
        self, tmp_path, monkeypatch
    ):
        puts = count_put_raw(monkeypatch)
        policy = SpeculationPolicy(
            factor=3.0, min_seconds=0.05, no_history_seconds=0.15,
            max_copies=2,
        )
        service = SweepService(
            store_dir=tmp_path / "store",
            heartbeat=2.0,
            speculation=policy,
            speculation_interval=0.02,
        )
        with service as svc:
            slow = ScriptedWorker(svc, delay=1.2)
            wait_until(lambda: svc.active_workers == 1, what="slow worker")
            iterator = Client(endpoint=svc.endpoint, name="c").submit(
                small_sweep()
            )
            # The primary copy lands on the slow worker and stalls.
            wait_until(lambda: len(svc.dispatch_log) == 1, what="dispatch")
            fast = ScriptedWorker(svc, delay=0.0)
            records = list(iterator)
            assert len(records) == 1
            assert records[0] == Client().run(small_sweep())[0]
            # The twin went to the other worker and won the race.
            assert svc.speculation_log == [("c", 0)]
            assert fast.jobs == 1
            # Let the slow copy finish and get dropped before counting.
            wait_until(lambda: slow.jobs == 1, what="slow copy completes")
            time.sleep(0.1)
            assert len(puts) == 1
            store = ShardedStore(tmp_path / "store")
            assert len(list(store.dump())) == 1


class TestAdmissionAndErrors:
    def test_max_clients_rejects_with_service_error(self, tmp_path):
        with SweepService(
            store_dir=tmp_path / "store", heartbeat=2.0, max_clients=1
        ) as svc:
            holder = raw_submit(svc, small_sweep(ns=(36, 64)), "holder")
            wait_until(lambda: svc.active_clients == 1, what="holder")
            with pytest.raises(ServiceError, match="admission"):
                Client(endpoint=svc.endpoint).run(small_sweep(seeds=(7,)))
            holder.close()

    def test_max_pending_rejects_oversized_submission(self, tmp_path):
        with SweepService(
            store_dir=tmp_path / "store", heartbeat=2.0, max_pending=2
        ) as svc:
            with pytest.raises(ServiceError, match="max_pending"):
                Client(endpoint=svc.endpoint).run(small_sweep(ns=(36, 64, 100)))

    def test_failing_job_fails_the_sweep_not_the_service(self, tmp_path):
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            start_worker(svc)
            wait_until(lambda: svc.active_workers == 1, what="worker join")
            bad = SweepSpec.make(
                "test_planarity", families=["no-such-family"], ns=[36],
                epsilon=[0.5], seeds=[0],
            )
            with pytest.raises(ServiceError, match="failed"):
                Client(endpoint=svc.endpoint).run(bad)
            # Deterministic job failures do not take the service down.
            records = Client(endpoint=svc.endpoint).run(small_sweep())
            assert len(records) == 1

    def test_protocol_mismatch_rejected(self, tmp_path):
        with SweepService(store_dir=tmp_path / "store", heartbeat=2.0) as svc:
            sock = socket.create_connection(
                (svc.host, svc.bound_port), timeout=15.0
            )
            sock.settimeout(15.0)
            sock.sendall(encode_wire_frame({
                "op": "submit", "protocol": 999, "sweep_json": "{}",
            }))
            reply = read_wire_frame(sock.makefile("rb"))
            assert reply["op"] == "reject"
            assert "protocol" in reply["reason"]
            sock.close()


class TestWorkerReconnect:
    def test_retry_delays_backoff_and_jitter_bounds(self):
        bases = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 5.0, 5.0, 5.0]
        for base, value in zip(bases, retry_delays()):
            assert base * 0.5 <= value <= base

    def test_reconnect_redials_after_drop_and_obeys_exit(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.update(
                code=serve_remote("127.0.0.1", port, reconnect=True)
            ),
            daemon=True,
        )
        thread.start()
        # First connection: welcome, then vanish without an exit frame.
        conn, _addr = listener.accept()
        hello = read_wire_frame(conn.makefile("rb"))
        assert hello["op"] == "hello"
        conn.sendall(encode_wire_frame({"op": "welcome"}))
        conn.close()
        # The worker must redial (capped backoff) instead of exiting.
        listener.settimeout(15.0)
        conn, _addr = listener.accept()
        hello = read_wire_frame(conn.makefile("rb"))
        assert hello["op"] == "hello"
        conn.sendall(encode_wire_frame({"op": "welcome"}))
        conn.sendall(encode_wire_frame({"op": "exit"}))
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert rc["code"] == 0
        conn.close()
        listener.close()

    def test_service_stop_releases_reconnect_worker(self, tmp_path):
        svc = SweepService(store_dir=tmp_path / "store", heartbeat=2.0)
        svc.start()
        worker = start_worker(svc, reconnect=True)
        wait_until(lambda: svc.active_workers == 1, what="worker join")
        svc.stop()
        # Shutdown sends an exit frame, so a reconnect-mode worker ends
        # instead of redialing a server that is going away on purpose.
        worker.join(timeout=15.0)
        assert not worker.is_alive()
