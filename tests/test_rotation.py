"""Tests for the RotationSystem data structure."""

from __future__ import annotations

import pytest

from repro.errors import EmbeddingError
from repro.planarity import RotationSystem


class TestConstruction:
    def test_empty_rotation(self):
        rs = RotationSystem()
        rs.add_node(1)
        assert rs.rotation(1) == []
        assert rs.degree(1) == 0

    def test_unknown_node_rejected(self):
        rs = RotationSystem()
        with pytest.raises(EmbeddingError):
            rs.rotation(0)

    def test_set_rotation_roundtrip(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1, 2, 3])
        assert rs.rotation(0) == [1, 2, 3]

    def test_set_rotation_duplicate_rejected(self):
        rs = RotationSystem()
        with pytest.raises(EmbeddingError):
            rs.set_rotation(0, [1, 1])

    def test_add_first_prepends(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1, 2])
        rs.add_half_edge_first(0, 9)
        assert rs.rotation(0) == [9, 1, 2]

    def test_add_cw_inserts_after_reference(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1, 2, 3])
        rs.add_half_edge_cw(0, 9, 1)
        assert rs.rotation(0) == [1, 9, 2, 3]

    def test_add_ccw_inserts_before_reference(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1, 2, 3])
        rs.add_half_edge_ccw(0, 9, 2)
        assert rs.rotation(0) == [1, 9, 2, 3]

    def test_duplicate_half_edge_rejected(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1, 2])
        with pytest.raises(EmbeddingError):
            rs.add_half_edge_cw(0, 1, 2)

    def test_missing_reference_rejected(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1])
        with pytest.raises(EmbeddingError):
            rs.add_half_edge_cw(0, 2, 77)

    def test_first_insert_into_empty(self):
        rs = RotationSystem()
        rs.add_node(0)
        rs.add_half_edge_first(0, 5)
        assert rs.rotation(0) == [5]


class TestQueries:
    def setup_method(self):
        self.rs = RotationSystem()
        self.rs.set_rotation(0, [1, 2, 3])

    def test_next_cw_cycles(self):
        assert self.rs.next_cw(0, 1) == 2
        assert self.rs.next_cw(0, 3) == 1

    def test_next_ccw_cycles(self):
        assert self.rs.next_ccw(0, 1) == 3

    def test_missing_half_edge(self):
        with pytest.raises(EmbeddingError):
            self.rs.next_cw(0, 99)

    def test_has_half_edge(self):
        assert self.rs.has_half_edge(0, 2)
        assert not self.rs.has_half_edge(0, 9)
        assert not self.rs.has_half_edge(9, 0)

    def test_half_edges_enumeration(self):
        assert set(self.rs.half_edges()) == {(0, 1), (0, 2), (0, 3)}

    def test_to_from_dict_roundtrip(self):
        snapshot = self.rs.to_dict()
        clone = RotationSystem.from_dict(snapshot)
        assert clone == self.rs

    def test_equality_respects_order(self):
        other = RotationSystem()
        other.set_rotation(0, [2, 3, 1])  # same cycle, different start
        # to_dict starts from the stored first pointer, so these differ
        assert other.to_dict() != self.rs.to_dict()
