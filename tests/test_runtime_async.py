"""Async backend, worker protocol, and streaming delivery."""

from __future__ import annotations

import pytest

from repro.runtime import (
    AsyncBackend,
    AsyncWorkerError,
    JobSpec,
    ResultCache,
    SerialBackend,
    iter_jobs,
    make_backend,
    run_jobs,
)
from repro.runtime.cache import KeyDeriver

SPECS = [
    JobSpec.make("test_planarity", family="grid", n=36, seed=seed,
                 epsilon=epsilon)
    for seed in (0, 1)
    for epsilon in (0.5, 0.25)
]


def test_payload_round_trip():
    for spec in SPECS:
        clone = JobSpec.from_payload(spec.to_payload())
        assert clone == spec
        assert clone.canonical() == spec.canonical()
    pinned = JobSpec.make(
        "partition_randomized", family="delaunay", n=64, seed=3,
        graph_seed=0, epsilon=0.2, delta=0.1,
    )
    assert JobSpec.from_payload(pinned.to_payload()) == pinned


def test_make_backend_registry_includes_async():
    backend = make_backend("async", max_workers=2)
    assert isinstance(backend, AsyncBackend)


def test_async_matches_serial():
    serial = run_jobs(SPECS, backend=SerialBackend())
    asynced = run_jobs(SPECS, backend=AsyncBackend(max_workers=2))
    assert serial.records == asynced.records


def test_async_with_cache_differential(tmp_path):
    cache = ResultCache(disk_dir=tmp_path / "c")
    first = run_jobs(SPECS, backend=AsyncBackend(max_workers=2), cache=cache)
    assert first.executed == len(SPECS)
    second = run_jobs(SPECS, backend=AsyncBackend(max_workers=2), cache=cache)
    assert second.executed == 0
    assert second.records == first.records


def test_worker_consults_shared_store(tmp_path):
    """Workers hit the on-disk index for keys other processes stored."""
    store_dir = tmp_path / "shared"
    key = KeyDeriver().key_for(SPECS[0])
    sentinel = {"kind": "test_planarity", "sentinel": True, "rounds": -1}
    ResultCache(disk_dir=store_dir).store(key, sentinel)
    # Parent cache is memory-only: the parent cannot answer the lookup,
    # so the record must have come from the worker's store probe.
    batch = run_jobs(
        [SPECS[0]],
        backend=AsyncBackend(max_workers=1, store_dir=str(store_dir)),
        cache=ResultCache(),
    )
    assert batch.records[0] == sentinel


def test_shared_store_records_land_once(tmp_path):
    """Async workers persist fresh records themselves; the orchestrator
    must not append them to the same store a second time."""
    store_dir = tmp_path / "shared"
    cache = ResultCache(disk_dir=store_dir)
    run_jobs(
        SPECS,
        backend=AsyncBackend(max_workers=2, store_dir=str(store_dir)),
        cache=cache,
    )
    from repro.runtime.store import count_record_entries

    # One physical entry per record, not two.
    assert count_record_entries(store_dir) == len(SPECS)
    # And the records are still served back on a fresh run.
    rerun = run_jobs(SPECS, cache=ResultCache(disk_dir=store_dir))
    assert rerun.executed == 0


def test_worker_error_propagates():
    bad = JobSpec.make("test_planarity", family="grid", n=36, epsilon=0.5)
    # Corrupt the payload en route by registering a failing kind name is
    # invasive; instead point the spec at an epsilon the tester rejects
    # as invalid, which raises inside the worker.
    invalid = JobSpec(
        kind="test_planarity", family="grid", n=36, seed=0,
        config=(("epsilon", -1.0),),
    )
    with pytest.raises(AsyncWorkerError, match="failed in worker"):
        run_jobs([bad, invalid], backend=AsyncBackend(max_workers=1))


def test_iter_jobs_streams_hits_then_misses():
    cache = ResultCache()
    warm = run_jobs(SPECS[:2], cache=cache)
    events = list(iter_jobs(SPECS, cache=cache))
    assert len(events) == len(SPECS)
    from_cache = [cached for _i, _r, cached in events]
    assert from_cache == [True, True, False, False]
    indices = [index for index, _r, _c in events]
    assert sorted(indices) == list(range(len(SPECS)))
    by_index = {index: record for index, record, _c in events}
    assert by_index[0] == warm.records[0]


def test_iter_jobs_is_lazy():
    """Records arrive one at a time, not after a whole-batch barrier."""
    stream = iter_jobs(SPECS, backend=SerialBackend())
    first = next(stream)
    assert first[0] == 0 and first[1]["seed"] == SPECS[0].seed
    rest = list(stream)
    assert len(rest) == len(SPECS) - 1


def test_process_stream_matches_serial_records():
    from repro.runtime import ProcessPoolBackend

    backend = ProcessPoolBackend(max_workers=2, chunksize=1)
    streamed = {}
    for index, record, seconds in backend.run_stream(SPECS):
        streamed[index] = record
        assert seconds >= 0  # workers report per-job wall-time
    serial = SerialBackend().run(SPECS)
    assert [streamed[i] for i in range(len(SPECS))] == serial
