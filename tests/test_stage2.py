"""Direct tests for Stage II per-part verification (test_part)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.congest import RoundLedger
from repro.graphs import make_planar
from repro.partition import Partition, build_part
from repro.testers.stage2 import Stage2Config
from repro.testers.stage2 import test_part as run_part


def whole_graph_part(graph, root=0):
    """Wrap the entire connected graph as a single part."""
    parents = {}
    depths = nx.single_source_shortest_path_length(graph, root)
    for v, d in depths.items():
        if v == root:
            continue
        parents[v] = min(w for w in graph.neighbors(v) if depths[w] == d - 1)
    return build_part(root, graph.nodes(), list(parents.items()))


class TestPartVerdicts:
    def test_planar_part_accepted(self):
        graph = make_planar("delaunay", 120, seed=0)
        part = whole_graph_part(graph)
        verdict = run_part(
            graph, part, n_total=120, rng=random.Random(0),
            config=Stage2Config(epsilon=0.1),
        )
        assert verdict.accepted
        assert verdict.embedding_planar
        assert verdict.reason is None

    def test_k5_part_density_rejected(self, k5):
        part = whole_graph_part(k5)
        verdict = run_part(
            k5, part, n_total=5, rng=random.Random(0),
            config=Stage2Config(epsilon=0.3),
        )
        assert not verdict.accepted
        assert verdict.reason == "density"  # 10 > 3*5-6

    def test_sparse_nonplanar_part_violation_rejected(self, k33):
        # K33: m=9 <= 3*6-6=12 passes density; caught by sampling
        part = whole_graph_part(k33)
        verdict = run_part(
            k33, part, n_total=6, rng=random.Random(0),
            config=Stage2Config(epsilon=0.3),
        )
        assert not verdict.accepted
        assert verdict.reason == "violation"
        assert not verdict.embedding_planar

    def test_embedding_failure_mode(self, k33):
        part = whole_graph_part(k33)
        verdict = run_part(
            k33, part, n_total=6, rng=random.Random(0),
            config=Stage2Config(epsilon=0.3, reject_on_embedding_failure=True),
        )
        assert verdict.reason == "embedding"

    def test_exact_violation_collection(self, k33):
        part = whole_graph_part(k33)
        verdict = run_part(
            k33, part, n_total=6, rng=random.Random(0),
            config=Stage2Config(epsilon=0.3, collect_exact_violations=True),
        )
        assert verdict.violating_exact is not None
        assert verdict.violating_exact > 0

    def test_preorder_criterion_on_nonplanar(self, k33):
        part = whole_graph_part(k33)
        verdict = run_part(
            k33, part, n_total=6, rng=random.Random(0),
            config=Stage2Config(epsilon=0.3, criterion="preorder"),
        )
        # soundness of the preorder criterion: detection still possible
        assert verdict.reason in ("violation", None)

    def test_unknown_criterion(self, small_grid):
        part = whole_graph_part(small_grid)
        with pytest.raises(ValueError):
            run_part(
                small_grid, part, n_total=36, rng=random.Random(0),
                config=Stage2Config(epsilon=0.3, criterion="astral"),
            )

    def test_single_node_part(self):
        graph = nx.Graph()
        graph.add_node(0)
        part = build_part(0, [0], [])
        verdict = run_part(
            graph, part, n_total=1, rng=random.Random(0),
            config=Stage2Config(epsilon=0.3),
        )
        assert verdict.accepted
        assert verdict.non_tree_edges == 0

    def test_tree_part_trivially_accepted(self):
        tree = nx.random_labeled_tree(50, seed=1)
        part = whole_graph_part(tree)
        verdict = run_part(
            tree, part, n_total=50, rng=random.Random(0),
            config=Stage2Config(epsilon=0.1),
        )
        assert verdict.accepted
        assert verdict.sampled == 0  # no non-tree edges to sample

    def test_ledger_merging(self):
        graph = make_planar("grid", 64, seed=0)
        part = whole_graph_part(graph)
        ledger = RoundLedger()
        verdict = run_part(
            graph, part, n_total=64, rng=random.Random(0),
            config=Stage2Config(epsilon=0.2), ledger=ledger,
        )
        assert ledger.total == verdict.rounds
        categories = ledger.by_category()
        for expected in ("stage2.bfs", "stage2.counts", "stage2.embedding",
                         "stage2.labels", "stage2.sampling"):
            assert expected in categories, expected

    def test_rounds_scale_with_depth(self):
        # Compare the BFS phase alone: the shallow graph has far more
        # non-tree edges, so total rounds are dominated by sampling there.
        shallow = make_planar("apollonian", 100, seed=0)  # small diameter
        deep = nx.path_graph(100)
        deep.add_edge(0, 99)  # one non-tree edge so sampling runs
        ledger_shallow, ledger_deep = RoundLedger(), RoundLedger()
        v_shallow = run_part(
            shallow, whole_graph_part(shallow), n_total=100,
            rng=random.Random(0), config=Stage2Config(epsilon=0.2),
            ledger=ledger_shallow,
        )
        v_deep = run_part(
            deep, whole_graph_part(deep), n_total=100,
            rng=random.Random(0), config=Stage2Config(epsilon=0.2),
            ledger=ledger_deep,
        )
        assert v_deep.bfs_depth > v_shallow.bfs_depth
        assert (
            ledger_deep.by_category()["stage2.bfs"]
            > ledger_shallow.by_category()["stage2.bfs"]
        )


class TestRemark1Coloring:
    """Randomized coloring with abstention (Remark 1 trade-off)."""

    def test_proper_among_participants(self):
        from repro.partition import randomized_coloring_emulated

        parents = {i: (i + 1) % 301 for i in range(301)}  # directed cycle
        colors, abstaining = randomized_coloring_emulated(
            parents, rounds=8, rng=random.Random(1)
        )
        for v, p in parents.items():
            if colors[v] is not None and colors[p] is not None:
                assert colors[v] != colors[p]
        assert abstaining <= 301

    def test_abstention_rate_drops_with_rounds(self):
        from repro.partition import randomized_coloring_emulated

        parents = {i: i - 1 if i > 0 else None for i in range(2000)}
        few = sum(
            randomized_coloring_emulated(parents, 1, random.Random(s))[1]
            for s in range(5)
        )
        many = sum(
            randomized_coloring_emulated(parents, 10, random.Random(s))[1]
            for s in range(5)
        )
        assert many <= few

    def test_invalid_rounds(self):
        from repro.errors import PartitionError
        from repro.partition import randomized_coloring_emulated

        with pytest.raises(PartitionError):
            randomized_coloring_emulated({0: None}, rounds=0, rng=random.Random(0))

    def test_partition_with_randomized_coloring(self):
        from repro.partition import partition_randomized

        graph = make_planar("grid", 200, seed=0)
        result = partition_randomized(
            graph, epsilon=0.25, delta=0.2, seed=4, coloring="randomized"
        )
        result.partition.validate()
        assert result.met_target

    def test_unknown_coloring(self, small_grid):
        from repro.partition import partition_randomized

        with pytest.raises(ValueError):
            partition_randomized(
                small_grid, epsilon=0.3, seed=0, coloring="chromatic"
            )

    def test_marking_skips_abstainers(self):
        from repro.partition import mark_and_choose

        out_edge = {0: 1, 1: 2, 2: None}
        weights = {(0, 1): 5, (1, 2): 7}
        colors = {0: 0, 1: None, 2: 1}  # node 1 abstained
        result = mark_and_choose(out_edge, weights, colors)
        # no edge incident to the abstainer may be marked
        assert all(1 not in edge for edge in result.marked_edges)
