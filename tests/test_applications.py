"""Tests for Corollary 16 testers and the Corollary 17 spanner."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.applications import build_spanner, measure_stretch
from repro.graphs import (
    cycle_freeness_farness,
    grid_graph,
    make_planar,
    random_tree,
    triangulated_grid,
)
from repro.testers import test_bipartiteness as run_bipartiteness
from repro.testers import test_cycle_freeness as run_cycle_freeness


class TestCycleFreeness:
    def test_trees_accepted(self):
        for seed in range(3):
            tree = random_tree(150, seed=seed)
            result = run_cycle_freeness(tree, epsilon=0.2)
            assert result.accepted

    def test_triangulated_grid_rejected(self):
        graph = triangulated_grid(12, 12)
        assert cycle_freeness_farness(graph) > 0.5
        result = run_cycle_freeness(graph, epsilon=0.4)
        assert not result.accepted
        assert result.rejecting_parts

    def test_grid_rejected(self):
        # a grid is ~1/2-far from cycle-free
        graph = grid_graph(12, 12)
        result = run_cycle_freeness(graph, epsilon=0.3)
        assert not result.accepted

    def test_single_cycle_close_instance(self):
        # one cycle among many tree edges: 1/m-far only; testers may accept
        graph = nx.cycle_graph(3)
        tree = nx.random_labeled_tree(200, seed=1)
        graph = nx.union(graph, nx.relabel_nodes(tree, {i: i + 10 for i in tree}))
        result = run_cycle_freeness(graph, epsilon=0.5)
        assert result.rounds > 0  # verdict unconstrained; must run cleanly

    def test_randomized_method(self):
        graph = triangulated_grid(10, 10)
        result = run_cycle_freeness(graph, epsilon=0.4, method="randomized", seed=1)
        assert not result.accepted

    def test_unknown_method(self, small_grid):
        with pytest.raises(ValueError):
            run_cycle_freeness(small_grid, method="quantum")

    def test_invalid_epsilon(self, small_grid):
        with pytest.raises(ValueError):
            run_cycle_freeness(small_grid, epsilon=2.0)

    def test_rounds_structure(self):
        graph = triangulated_grid(8, 8)
        result = run_cycle_freeness(graph, epsilon=0.4)
        assert result.rounds == result.partition_rounds + result.verification_rounds


class TestBipartiteness:
    def test_bipartite_accepted(self):
        for dims in ((10, 11), (8, 15)):
            graph = grid_graph(*dims)
            result = run_bipartiteness(graph, epsilon=0.2)
            assert result.accepted, dims

    def test_trees_accepted(self):
        tree = random_tree(150, seed=2)
        assert run_bipartiteness(tree, epsilon=0.2).accepted

    def test_triangulated_grid_rejected(self):
        graph = triangulated_grid(12, 12)
        result = run_bipartiteness(graph, epsilon=0.2)
        assert not result.accepted

    def test_randomized_method(self):
        graph = triangulated_grid(10, 10)
        result = run_bipartiteness(graph, epsilon=0.2, method="randomized", seed=3)
        assert not result.accepted

    def test_one_sided_on_planar_bipartite(self):
        # deterministic method never errs on promise inputs
        for seed in range(3):
            graph = grid_graph(9, 9)
            assert run_bipartiteness(graph, epsilon=0.1, seed=seed).accepted


class TestSpanner:
    def test_size_bound(self):
        for family in ("grid", "delaunay", "apollonian"):
            graph = make_planar(family, 300, seed=1)
            n = graph.number_of_nodes()
            result = build_spanner(graph, epsilon=0.15)
            assert result.size <= (1 + 3 * 0.15) * n, family
            assert result.size >= n - 1

    def test_spans_and_connected(self):
        graph = make_planar("delaunay", 200, seed=2)
        result = build_spanner(graph, epsilon=0.2)
        assert set(result.spanner.nodes()) == set(graph.nodes())
        assert nx.is_connected(result.spanner)

    def test_spanner_is_subgraph(self):
        graph = make_planar("tri-grid", 150, seed=0)
        result = build_spanner(graph, epsilon=0.2)
        for u, v in result.spanner.edges():
            assert graph.has_edge(u, v)

    def test_stretch_within_guarantee(self):
        graph = make_planar("grid", 150, seed=0)
        result = build_spanner(graph, epsilon=0.2)
        stretch = measure_stretch(graph, result.spanner, sample_nodes=150, seed=0)
        assert stretch <= result.guaranteed_stretch

    def test_edge_accounting(self):
        graph = make_planar("delaunay", 150, seed=3)
        result = build_spanner(graph, epsilon=0.2)
        assert result.size <= result.tree_edges + result.connector_edges
        assert result.rounds > 0

    def test_randomized_method(self):
        graph = make_planar("delaunay", 200, seed=4)
        result = build_spanner(graph, epsilon=0.2, method="randomized", seed=5)
        assert nx.is_connected(result.spanner)
        n = graph.number_of_nodes()
        assert result.size <= (1 + 5 * 0.2) * n

    def test_tree_input_returns_tree(self):
        tree = random_tree(100, seed=5)
        result = build_spanner(tree, epsilon=0.2)
        assert result.size == 99
        assert measure_stretch(tree, result.spanner, sample_nodes=100) == 1.0

    def test_unknown_method(self, small_grid):
        with pytest.raises(ValueError):
            build_spanner(small_grid, method="magic")

    def test_measure_stretch_detects_nonspanning(self):
        from repro.errors import GraphInputError

        graph = nx.path_graph(4)
        broken = nx.Graph()
        broken.add_nodes_from(graph.nodes())
        with pytest.raises(GraphInputError):
            measure_stretch(graph, broken, sample_nodes=4)
