"""Tests for graph utilities: girth, diameter, arboricity, cycles."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.errors import GraphInputError
from repro.graphs import (
    arboricity_bounds,
    bfs_levels,
    degeneracy,
    diameter,
    eccentricity,
    ensure_int_labels,
    find_short_cycle,
    girth,
    greedy_forest_partition,
    require_simple,
    tree_height,
)


class TestBFSLevels:
    def test_levels(self, small_grid):
        levels = bfs_levels(small_grid.adj, 0)
        assert levels == nx.single_source_shortest_path_length(small_grid, 0)


class TestDiameter:
    def test_path(self):
        assert diameter(nx.path_graph(10)) == 9

    def test_cycle(self):
        assert diameter(nx.cycle_graph(10)) == 5

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert diameter(graph) == 0

    def test_grid_matches_networkx(self, small_grid):
        assert diameter(small_grid) == nx.diameter(small_grid)

    def test_double_sweep_on_large(self):
        tree = nx.random_labeled_tree(2000, seed=0)
        # double sweep is exact on trees
        assert diameter(tree, exact_threshold=10) == nx.diameter(tree)

    def test_empty_rejected(self):
        with pytest.raises(GraphInputError):
            diameter(nx.Graph())

    def test_eccentricity(self, small_grid):
        assert eccentricity(small_grid, 0) == nx.eccentricity(small_grid, 0)

    def test_eccentricity_disconnected_rejected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(GraphInputError):
            eccentricity(graph, 0)


class TestGirth:
    def test_forest_infinite(self):
        assert girth(nx.random_labeled_tree(30, seed=1)) == math.inf

    def test_triangle(self):
        assert girth(nx.complete_graph(4)) == 3

    def test_cycle_graph(self):
        for n in (4, 5, 9):
            assert girth(nx.cycle_graph(n)) == n

    def test_petersen(self):
        assert girth(nx.petersen_graph()) == 5

    def test_grid(self, small_grid):
        assert girth(small_grid) == 4

    def test_early_exit_bound(self):
        # with upper_bound, may stop at any cycle <= bound
        g = girth(nx.complete_graph(6), upper_bound=3)
        assert g == 3


class TestFindShortCycle:
    def test_no_cycle_in_tree(self):
        assert find_short_cycle(nx.random_labeled_tree(20, seed=0), 10) is None

    def test_finds_triangle(self):
        cycle = find_short_cycle(nx.complete_graph(5), 3)
        assert cycle is not None
        assert len(cycle) == 3

    def test_respects_max_length(self):
        assert find_short_cycle(nx.cycle_graph(10), 9) is None
        cycle = find_short_cycle(nx.cycle_graph(10), 10)
        assert cycle is not None and len(cycle) == 10

    def test_returned_cycle_is_real(self, small_tri_grid):
        cycle = find_short_cycle(small_tri_grid, 3)
        assert len(cycle) == 3
        for i in range(3):
            assert small_tri_grid.has_edge(cycle[i], cycle[(i + 1) % 3])

    def test_max_length_below_three(self):
        assert find_short_cycle(nx.complete_graph(4), 2) is None


class TestDegeneracyAndArboricity:
    def test_degeneracy_tree(self):
        assert degeneracy(nx.random_labeled_tree(30, seed=0)) == 1

    def test_degeneracy_complete(self):
        assert degeneracy(nx.complete_graph(7)) == 6

    def test_degeneracy_empty(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        assert degeneracy(graph) == 0

    def test_planar_degeneracy_at_most_5(self, planar_zoo):
        for name, graph in planar_zoo:
            assert degeneracy(graph) <= 5, name

    def test_forest_partition_valid(self, small_apollonian):
        forests = greedy_forest_partition(small_apollonian)
        seen = set()
        for forest in forests:
            sub = nx.Graph(forest)
            assert nx.is_forest(sub)
            for u, v in forest:
                edge = frozenset((u, v))
                assert edge not in seen
                seen.add(edge)
        assert len(seen) == small_apollonian.number_of_edges()

    def test_arboricity_bounds_ordered(self, planar_zoo):
        for name, graph in planar_zoo:
            lower, upper = arboricity_bounds(graph)
            assert 0 < lower <= upper, name

    def test_planar_arboricity_lower_at_most_3(self, planar_zoo):
        for name, graph in planar_zoo:
            lower, _upper = arboricity_bounds(graph)
            assert lower <= 3, name

    def test_k5_arboricity_exact(self, k5):
        lower, upper = arboricity_bounds(k5)
        assert lower == 3  # ceil(10/4)

    def test_empty_graph_bounds(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        assert arboricity_bounds(graph) == (0, 0)


class TestMisc:
    def test_tree_height(self):
        parents = {1: 0, 2: 0, 3: 1, 4: 3}
        assert tree_height(parents, 0) == 3

    def test_tree_height_cycle_detected(self):
        with pytest.raises(GraphInputError):
            tree_height({1: 0, 0: 1}, 0)

    def test_require_simple(self):
        require_simple(nx.path_graph(3))
        with pytest.raises(GraphInputError):
            require_simple(nx.DiGraph([(0, 1)]))
        loop = nx.Graph()
        loop.add_edge(0, 0)
        with pytest.raises(GraphInputError):
            require_simple(loop)

    def test_ensure_int_labels(self):
        graph = nx.Graph([("a", "b"), ("b", "c")])
        relabeled, mapping = ensure_int_labels(graph)
        assert sorted(relabeled.nodes()) == [0, 1, 2]
        assert mapping["a"] == 0
