"""Tests for Stage I (deterministic partition) and the Theorem 4 variant."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import make_far, make_planar
from repro.partition import (
    partition_randomized,
    partition_stage1,
    theoretical_phase_cap,
)


class TestStage1OnPlanar:
    def test_target_reached(self, planar_zoo):
        for name, graph in planar_zoo:
            result = partition_stage1(graph, epsilon=0.25)
            assert result.success, name
            assert result.partition.cut_size() <= result.target_cut, name

    def test_partition_valid(self, planar_zoo):
        for name, graph in planar_zoo:
            result = partition_stage1(graph, epsilon=0.25)
            result.partition.validate()

    def test_never_rejects_planar(self, planar_zoo):
        for name, graph in planar_zoo:
            for eps in (0.5, 0.2):
                result = partition_stage1(graph, epsilon=eps)
                assert result.success, (name, eps)

    def test_claim4_height_bound(self, planar_zoo):
        """Claim 4: part diameter (hence tree height) <= 4^i after phase i."""
        for name, graph in planar_zoo:
            result = partition_stage1(graph, epsilon=0.2)
            for stats in result.phases:
                assert stats.max_height_after <= 4**stats.phase, (name, stats)

    def test_claim1_decay_bound(self, planar_zoo):
        """Per-phase decay at most 1 - 1/(36 alpha) (conservative bound)."""
        for name, graph in planar_zoo:
            result = partition_stage1(graph, epsilon=0.2)
            for stats in result.phases:
                assert stats.decay <= 1 - 1 / (36 * 3) + 1e-9, (name, stats.phase)

    def test_deterministic(self):
        graph = make_planar("delaunay", 200, seed=4)
        r1 = partition_stage1(graph, epsilon=0.2)
        r2 = partition_stage1(graph, epsilon=0.2)
        assert {p: sorted(part.nodes) for p, part in r1.partition.parts.items()} == {
            p: sorted(part.nodes) for p, part in r2.partition.parts.items()
        }
        assert r1.rounds == r2.rounds

    def test_rounds_positive_and_ledgered(self, small_grid):
        result = partition_stage1(small_grid, epsilon=0.3)
        assert result.rounds == result.ledger.total > 0
        assert "stage1" in result.ledger.by_prefix()

    def test_smaller_epsilon_needs_more_phases(self):
        graph = make_planar("delaunay", 300, seed=5)
        loose = partition_stage1(graph, epsilon=0.5)
        tight = partition_stage1(graph, epsilon=0.05)
        assert len(tight.phases) >= len(loose.phases)
        assert tight.partition.size <= loose.partition.size

    def test_target_cut_override(self, small_grid):
        n = small_grid.number_of_nodes()
        result = partition_stage1(small_grid, epsilon=0.3, target_cut=0.3 * n)
        assert result.partition.cut_size() <= 0.3 * n

    def test_invalid_epsilon(self, small_grid):
        with pytest.raises(ValueError):
            partition_stage1(small_grid, epsilon=0)
        with pytest.raises(ValueError):
            partition_stage1(small_grid, epsilon=1.5)

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = partition_stage1(graph, epsilon=0.5)
        assert result.success
        assert result.partition.size == 1

    def test_disconnected_graph(self):
        graph = nx.union(
            nx.cycle_graph(8),
            nx.relabel_nodes(nx.cycle_graph(8), {i: i + 10 for i in range(8)}),
        )
        result = partition_stage1(graph, epsilon=0.5)
        assert result.success
        result.partition.validate()
        # parts never span components
        for part in result.partition.parts.values():
            assert len({v // 10 for v in part.nodes}) == 1


class TestStage1OnFar:
    def test_far_either_rejects_or_meets_target(self, far_zoo):
        for name, graph, _f in far_zoo:
            result = partition_stage1(graph, epsilon=0.2)
            if result.success:
                assert result.partition.cut_size() <= result.target_cut, name
            else:
                assert result.rejecting_parts, name

    def test_dense_gnp_rejected(self):
        graph, _ = make_far("gnp", 200, seed=0)
        result = partition_stage1(graph, epsilon=0.2)
        assert not result.success

    def test_k5_not_rejected(self, k5):
        # arboricity(K5) = 3: Stage I cannot obtain evidence
        result = partition_stage1(k5, epsilon=0.5)
        assert result.success


class TestPhaseCap:
    def test_cap_zero_when_target_met(self):
        assert theoretical_phase_cap(10, 10, 3) == 0
        assert theoretical_phase_cap(0, 1, 3) == 0

    def test_cap_grows_with_smaller_target(self):
        assert theoretical_phase_cap(1000, 10, 3) > theoretical_phase_cap(1000, 100, 3)

    def test_cap_sufficient(self):
        m, target, alpha = 1000, 50, 3
        cap = theoretical_phase_cap(m, target, alpha)
        assert m * (1 - 1 / (36 * alpha)) ** cap <= target + 1e-6


class TestRandomizedPartition:
    def test_meets_target_typically(self):
        graph = make_planar("delaunay", 300, seed=8)
        hits = 0
        for seed in range(5):
            result = partition_randomized(graph, epsilon=0.2, delta=0.1, seed=seed)
            result.partition.validate()
            if result.met_target:
                hits += 1
        assert hits >= 4  # delta = 0.1: expect ~all to succeed

    def test_rounds_do_not_scale_with_log_n(self):
        # the randomized variant charges no O(log n) forest-decomposition
        # budget: its ledger has no such category
        graph = make_planar("grid", 200, seed=0)
        result = partition_randomized(graph, epsilon=0.3, seed=1)
        assert "stage1.forest_decomposition" not in result.ledger.by_category()
        assert "randomized.selection" in result.ledger.by_category()

    def test_trials_scale_with_delta(self):
        graph = make_planar("grid", 100, seed=0)
        loose = partition_randomized(graph, epsilon=0.3, delta=0.5, seed=1)
        tight = partition_randomized(graph, epsilon=0.3, delta=0.001, seed=1)
        assert tight.trials > loose.trials

    def test_invalid_parameters(self, small_grid):
        with pytest.raises(ValueError):
            partition_randomized(small_grid, epsilon=0)
        with pytest.raises(ValueError):
            partition_randomized(small_grid, epsilon=0.2, delta=0)
        with pytest.raises(ValueError):
            partition_randomized(small_grid, epsilon=0.2, delta=1)

    def test_seed_determinism(self):
        graph = make_planar("delaunay", 150, seed=2)
        a = partition_randomized(graph, epsilon=0.2, seed=42)
        b = partition_randomized(graph, epsilon=0.2, seed=42)
        assert {p: sorted(part.nodes) for p, part in a.partition.parts.items()} == {
            p: sorted(part.nodes) for p, part in b.partition.parts.items()
        }

    def test_claim14_decay(self):
        """Claim 14 decay bound 1 - 1/(64 alpha), with delta slack."""
        graph = make_planar("apollonian", 250, seed=3)
        result = partition_randomized(graph, epsilon=0.1, delta=0.05, seed=0)
        bad_phases = sum(
            1 for st in result.phases if st.decay > 1 - 1 / (64 * 3) + 1e-9
        )
        # allow at most one unlucky phase at this confidence
        assert bad_phases <= 1
