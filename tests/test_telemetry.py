"""Telemetry core: tracer, metrics registry, trace analysis
(repro.telemetry)."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.telemetry import (
    HISTOGRAM_BOUNDS,
    SweepProgress,
    TELEMETRY_ENV_VAR,
    TRACE_DIR_ENV_VAR,
    TRACE_PARENT_ENV_VAR,
    adopt_trace,
    chrome_trace,
    configure,
    get_metrics,
    get_tracer,
    read_events,
    read_metrics,
    render_tree,
    reset,
    span_tree,
    telemetry_enabled,
    top_spans,
)


@pytest.fixture
def telemetry_env(monkeypatch):
    """A clean telemetry environment; whatever the test turns on is torn
    back down (env knobs popped, tracer + metrics registry reset)."""
    for var in (TELEMETRY_ENV_VAR, TRACE_DIR_ENV_VAR, TRACE_PARENT_ENV_VAR):
        monkeypatch.delenv(var, raising=False)
    reset()
    yield monkeypatch
    configure(enabled=False)


def test_disabled_by_default(telemetry_env):
    assert not telemetry_enabled()
    tracer = get_tracer()
    span = tracer.span("anything", kind="demo")
    assert span.id is None
    with span as inner:
        inner.set(outcome="ignored")  # chainable no-op
        tracer.event("ping", x=1)
    assert tracer.span_count == 0
    assert tracer.event_count == 0
    assert tracer.drain() == []
    assert tracer.current_span_id() is None


def test_truthy_env_values(telemetry_env):
    for value in ("1", "true", "YES", "on"):
        telemetry_env.setenv(TELEMETRY_ENV_VAR, value)
        reset()
        assert telemetry_enabled(), value
    for value in ("0", "", "off", "nope"):
        telemetry_env.setenv(TELEMETRY_ENV_VAR, value)
        reset()
        assert not telemetry_enabled(), value
    # A trace dir implies enablement even without REPRO_TELEMETRY.
    telemetry_env.delenv(TELEMETRY_ENV_VAR, raising=False)
    telemetry_env.setenv(TRACE_DIR_ENV_VAR, "/tmp/anywhere")
    reset()
    assert telemetry_enabled()


def test_in_memory_buffer_without_sink(telemetry_env):
    telemetry_env.setenv(TELEMETRY_ENV_VAR, "1")
    reset()
    tracer = get_tracer()
    with tracer.span("phase", kind="demo") as span:
        tracer.event("ping", x=1)
    assert tracer.span_count == 1
    assert tracer.event_count == 1
    buffered = tracer.drain()
    assert [ev["name"] for ev in buffered] == ["ping", "phase"]
    event, emitted = buffered
    assert event["parent"] == span.id == emitted["id"]
    assert emitted["dur"] >= 0.0
    assert emitted["attrs"] == {"kind": "demo"}
    assert tracer.drain() == []  # drain clears


def test_span_nesting_and_jsonl_sink(telemetry_env, tmp_path):
    configure(trace_dir=str(tmp_path))
    tracer = get_tracer()
    with tracer.span("outer", kind="demo") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current_span_id() == inner.id
            tracer.event("mark", note="deep")
        assert tracer.current_span_id() == outer.id
    assert len(list(tmp_path.glob("trace-*.jsonl"))) == 1
    events = read_events(tmp_path)
    by_name = {ev["name"]: ev for ev in events}
    assert set(by_name) == {"outer", "inner", "mark"}
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["mark"]["parent"] == by_name["inner"]["id"]
    ids = [ev["id"] for ev in events]
    assert len(ids) == len(set(ids))
    assert all(ev["id"].startswith(tracer.token + ".") for ev in events)


def test_root_span_adopts_env_parent(telemetry_env):
    telemetry_env.setenv(TELEMETRY_ENV_VAR, "1")
    telemetry_env.setenv(TRACE_PARENT_ENV_VAR, "feed-1.7")
    reset()
    tracer = get_tracer()
    with tracer.span("root") as root:
        assert root.parent == "feed-1.7"
        with tracer.span("child") as child:
            assert child.parent == root.id


def test_negative_duration_clamped(telemetry_env):
    telemetry_env.setenv(TELEMETRY_ENV_VAR, "1")
    reset()
    tracer = get_tracer()
    with tracer.span("warp") as span:
        span._start = time.perf_counter() + 100.0  # simulated clock hiccup
    assert span.duration == 0.0
    assert tracer.drain()[0]["dur"] == 0.0
    assert tracer.traced_seconds == 0.0


def test_chrome_trace_export(telemetry_env, tmp_path):
    configure(trace_dir=str(tmp_path))
    tracer = get_tracer()
    with tracer.span("sweep", kind="demo"):
        tracer.event("connect", worker="w0")
        with tracer.span("job", kind="demo"):
            pass
    doc = chrome_trace(read_events(tmp_path))
    json.dumps(doc)  # must be JSON-serializable as-is
    assert doc["displayTimeUnit"] == "ms"
    entries = doc["traceEvents"]
    assert len(entries) == 3
    spans = [entry for entry in entries if entry["ph"] == "X"]
    instants = [entry for entry in entries if entry["ph"] == "i"]
    assert len(spans) == 2 and len(instants) == 1
    assert instants[0]["s"] == "p"
    assert all(entry["ts"] >= 0.0 for entry in entries)
    assert min(entry["ts"] for entry in entries) == 0.0  # origin-shifted
    assert all(span["dur"] >= 0.0 for span in spans)
    assert all(entry["args"]["id"] for entry in entries)


def test_top_spans_ranking():
    events = [
        {"ev": "span", "name": "job", "dur": 0.5, "attrs": {"kind": "slow"}},
        {"ev": "span", "name": "job", "dur": 0.2, "attrs": {"kind": "slow"}},
        {"ev": "span", "name": "job", "dur": 0.1, "attrs": {"kind": "quick"}},
        {"ev": "event", "name": "noise", "attrs": {}},
        {"ev": "span", "name": "sweep", "dur": 9.0, "attrs": {}},
    ]
    rows = top_spans(events)
    assert [(row["name"], row["kind"]) for row in rows] == [
        ("sweep", "-"), ("job", "slow"), ("job", "quick"),
    ]
    slow = rows[1]
    assert slow["count"] == 2
    assert slow["total_s"] == pytest.approx(0.7)
    assert slow["mean_s"] == pytest.approx(0.35)
    assert slow["max_s"] == pytest.approx(0.5)
    named = top_spans(events, name="job")
    assert [row["kind"] for row in named] == ["slow", "quick"]


def test_span_tree_orphan_becomes_root():
    events = [
        {"ev": "span", "name": "root", "id": "a.1", "parent": None,
         "t0": 1.0, "dur": 1.0, "attrs": {}},
        {"ev": "span", "name": "child", "id": "a.2", "parent": "a.1",
         "t0": 1.1, "dur": 0.5, "attrs": {}},
        {"ev": "span", "name": "orphan", "id": "b.1", "parent": "gone.9",
         "t0": 1.2, "dur": 0.1, "attrs": {}},
    ]
    roots, children = span_tree(events)
    assert [root["name"] for root in roots] == ["root", "orphan"]
    assert [child["name"] for child in children["a.1"]] == ["child"]
    lines = render_tree(events)
    assert lines[0].startswith("root")
    assert lines[1].startswith("  child")
    truncated = render_tree(events, max_lines=1)
    assert truncated[-1].startswith("... (truncated")


def test_read_events_skips_torn_lines(tmp_path):
    path = tmp_path / "trace-dead.jsonl"
    good = {"ev": "span", "name": "ok", "id": "x.1", "parent": None,
            "t0": 1.0, "dur": 0.1, "attrs": {}}
    path.write_text(
        json.dumps(good) + "\n"
        + '{"ev": "span", "na'  # worker killed mid-write
        + "\n42\n\n"
    )
    events = read_events(tmp_path)
    assert [ev["name"] for ev in events] == ["ok"]


def test_metrics_registry(telemetry_env):
    metrics = get_metrics()
    metrics.inc("remote.requeues")
    metrics.inc("remote.requeues")
    metrics.inc("store.bytes_reclaimed", 512)
    metrics.gauge("remote.workers", 3)
    metrics.gauge("remote.workers", 2)  # last write wins
    metrics.observe("job.seconds", 0.05)
    metrics.observe("job.seconds", -1.0)  # clock artifact: clamps to 0
    metrics.observe("job.seconds", 5e6)  # beyond the last bound
    assert metrics.counter_value("remote.requeues") == 2
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["store.bytes_reclaimed"] == 512
    assert isinstance(snapshot["counters"]["remote.requeues"], int)
    assert snapshot["gauges"]["remote.workers"] == 2.0
    histogram = snapshot["histograms"]["job.seconds"]
    assert histogram["count"] == 3
    assert histogram["min"] == 0.0
    assert histogram["max"] == 5e6
    assert histogram["bounds"] == list(HISTOGRAM_BOUNDS)
    assert sum(histogram["buckets"]) == histogram["count"]
    assert histogram["buckets"][-1] == 1  # the +inf overflow bucket


def test_metrics_flush_and_read(telemetry_env, tmp_path):
    metrics = get_metrics()
    assert metrics.flush_to(tmp_path) is None  # empty registry: no file
    metrics.inc("cache.hits", 7)
    path = metrics.flush_to(tmp_path)
    assert path is not None
    assert path.name == f"metrics-{get_tracer().token}.json"
    registries = read_metrics(tmp_path)
    assert list(registries) == [get_tracer().token]
    assert registries[get_tracer().token]["counters"]["cache.hits"] == 7


def test_adopt_trace(telemetry_env, tmp_path):
    assert not adopt_trace(None)
    assert not adopt_trace({"parent": "x.1"})  # no dir
    missing = {"dir": str(tmp_path / "never-created"), "parent": "x.1"}
    assert not adopt_trace(missing)
    assert not telemetry_enabled()
    assert adopt_trace({"dir": str(tmp_path), "parent": "srv-1.3"})
    assert telemetry_enabled()
    tracer = get_tracer()
    assert str(tracer.trace_dir) == str(tmp_path)
    with tracer.span("job") as span:
        assert span.parent == "srv-1.3"


class _FixedCost:
    def predict(self, _kind, _n):
        return 1.0


class _Fleet:
    active_workers = 2


def test_sweep_progress_line(telemetry_env):
    stream = io.StringIO()
    specs = [
        type("S", (), {"kind": "test_planarity", "n": 36})() for _ in range(3)
    ]
    progress = SweepProgress(stream=stream, min_interval=0.0)
    progress.start(specs, cost_model=_FixedCost(), backend=_Fleet())
    progress.update(0, {"trace_s": 5.0}, from_cache=False)  # 5x predicted
    progress.update(1, {}, from_cache=True)
    line = progress.line()
    assert "sweep 2/3" in line
    assert "hits 1" in line
    assert "workers 2" in line
    assert "stragglers 1" in line
    assert progress.straggler_indices == [0]
    assert progress.eta_seconds() is not None
    progress.finish()
    assert stream.getvalue().endswith("\n")


def test_sweep_progress_without_cost_history(telemetry_env):
    stream = io.StringIO()
    specs = [type("S", (), {"kind": "k", "n": 8})() for _ in range(2)]
    progress = SweepProgress(stream=stream, min_interval=0.0)
    progress.start(specs)  # no model, no backend
    assert progress.eta_seconds() is None  # nothing landed yet
    progress.update(0, {}, from_cache=False)
    assert progress.eta_seconds() is not None  # jobs/s fallback
    line = progress.line()
    assert "workers" not in line  # backend has no worker count
    assert progress.stragglers == 0
    progress.finish()
