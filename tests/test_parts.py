"""Tests for Part/Partition bookkeeping and the auxiliary graph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import PartitionError
from repro.partition import AuxiliaryGraph, Part, Partition, build_part


class TestBuildPart:
    def test_simple_tree(self):
        part = build_part(0, [0, 1, 2], [(1, 0), (2, 1)])
        assert part.height == 2
        assert part.parents == {1: 0, 2: 1}

    def test_orientation_agnostic(self):
        part = build_part(0, [0, 1, 2], [(0, 1), (1, 2)])
        assert part.parents == {1: 0, 2: 1}

    def test_unreachable_node_rejected(self):
        with pytest.raises(PartitionError):
            build_part(0, [0, 1, 2], [(1, 0)])

    def test_edge_leaving_part_rejected(self):
        with pytest.raises(PartitionError):
            build_part(0, [0, 1], [(1, 0), (2, 1)])

    def test_singleton(self):
        part = build_part(5, [5], [])
        assert part.height == 0
        assert len(part) == 1
        assert part.pid == 5


class TestPartition:
    def test_singletons(self, small_grid):
        partition = Partition.singletons(small_grid)
        assert partition.size == small_grid.number_of_nodes()
        assert partition.cut_size() == small_grid.number_of_edges()
        partition.validate()

    def test_max_height_zero_for_singletons(self, small_grid):
        assert Partition.singletons(small_grid).max_height() == 0

    def test_duplicate_node_rejected(self):
        graph = nx.path_graph(3)
        parts = [
            build_part(0, [0, 1], [(1, 0)]),
            build_part(1, [1, 2], [(2, 1)]),
        ]
        with pytest.raises(PartitionError):
            Partition(graph, parts)

    def test_missing_node_rejected(self):
        graph = nx.path_graph(3)
        parts = [build_part(0, [0, 1], [(1, 0)])]
        with pytest.raises(PartitionError):
            Partition(graph, parts)

    def test_validate_catches_disconnected_part(self):
        graph = nx.path_graph(4)
        graph.add_edge(0, 3)  # make 0 and 3 adjacent
        part = Part(root=0, nodes=frozenset([0, 2]), parents={2: 0}, height=1)
        rest = Part(root=1, nodes=frozenset([1, 3]), parents={3: 1}, height=1)
        # the spanning "tree" edge (2, 0) is not a graph edge
        partition = Partition(graph, [part, rest])
        with pytest.raises(PartitionError):
            partition.validate()

    def test_validate_catches_wrong_height(self, small_grid):
        partition = Partition.singletons(small_grid)
        some_pid = next(iter(partition.parts))
        partition.parts[some_pid].height = 3
        with pytest.raises(PartitionError):
            partition.validate()

    def test_cut_edges_enumeration(self):
        graph = nx.path_graph(4)
        parts = [
            build_part(0, [0, 1], [(1, 0)]),
            build_part(2, [2, 3], [(3, 2)]),
        ]
        partition = Partition(graph, parts)
        assert list(partition.cut_edges()) == [(1, 2)]

    def test_part_subgraph(self, small_grid):
        partition = Partition.singletons(small_grid)
        sub = partition.part_subgraph(0)
        assert sub.number_of_nodes() == 1


class TestAuxiliaryGraph:
    def make_two_parts(self):
        graph = nx.cycle_graph(6)  # parts {0,1,2} and {3,4,5}: 2 cut edges
        parts = [
            build_part(0, [0, 1, 2], [(1, 0), (2, 1)]),
            build_part(3, [3, 4, 5], [(4, 3), (5, 4)]),
        ]
        return graph, Partition(graph, parts)

    def test_weights(self):
        graph, partition = self.make_two_parts()
        aux = AuxiliaryGraph(partition)
        assert aux.node_count == 2
        assert aux.weight(0, 3) == 2  # edges (2,3) and (5,0)
        assert aux.total_weight() == 2
        assert aux.edge_count() == 1

    def test_connector_is_min_id(self):
        graph, partition = self.make_two_parts()
        aux = AuxiliaryGraph(partition)
        u, v = aux.connector(0, 3)
        assert partition.part_of[u] == 0
        assert partition.part_of[v] == 3
        # (0, 5) sorts before (2, 3) as (repr) pairs
        assert (u, v) == (0, 5)

    def test_connector_orientation_swaps(self):
        graph, partition = self.make_two_parts()
        aux = AuxiliaryGraph(partition)
        u1, v1 = aux.connector(0, 3)
        u2, v2 = aux.connector(3, 0)
        assert (u1, v1) == (v2, u2)

    def test_weighted_degree(self):
        graph, partition = self.make_two_parts()
        aux = AuxiliaryGraph(partition)
        assert aux.weighted_degree(0) == 2

    def test_total_weight_matches_cut(self, small_grid):
        partition = Partition.singletons(small_grid)
        aux = AuxiliaryGraph(partition)
        assert aux.total_weight() == partition.cut_size()

    def test_edges_iteration(self):
        graph, partition = self.make_two_parts()
        aux = AuxiliaryGraph(partition)
        edges = list(aux.edges())
        assert len(edges) == 1
        assert edges[0].weight == 2
