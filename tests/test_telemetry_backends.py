"""Merged traces and cost telemetry across the runtime backends.

The tracer's multi-process story is the whole point: pool and async
workers execute jobs in other processes, each sinking its own
``trace-<token>.jsonl``, and the merged directory must read back as one
coherent sweep -- globally unique span ids, every job span parented
under the orchestrator's sweep span via ``REPRO_TRACE_PARENT``.
"""

from __future__ import annotations

import json
import os
import socket
import threading

from repro.cli import main
from repro.runtime import (
    CostBook,
    CostModel,
    JobSpec,
    RemoteBackend,
    ResultCache,
    SweepSpec,
    make_backend,
    run_jobs,
    run_sweep,
)
from repro.runtime.codec import encode_wire_frame, read_wire_frame
from repro.runtime.remote import PROTOCOL_VERSION
from repro.runtime.worker import serve_remote
from repro.telemetry import configure, read_events, read_metrics, top_spans
import pytest

SPECS = [
    JobSpec.make("test_planarity", family="grid", n=36, seed=seed,
                 epsilon=epsilon)
    for seed in (0, 1)
    for epsilon in (0.5, 0.25)
]

SWEEP = SweepSpec.make(
    "test_planarity", families=["grid"], ns=[36], seeds=[0, 1],
    epsilon=[0.5, 0.25],
)


@pytest.fixture
def trace_dir(tmp_path):
    target = tmp_path / "trace"
    configure(trace_dir=str(target))
    yield target
    configure(enabled=False)


def _assert_coherent_trace(trace_dir, result):
    """One sweep span; every job span a child of it; ids globally unique;
    records tagged with the span that produced them."""
    events = read_events(trace_dir)
    ids = [ev["id"] for ev in events]
    assert len(ids) == len(set(ids)), "span ids collided across processes"
    spans = [ev for ev in events if ev["ev"] == "span"]
    sweeps = [span for span in spans if span["name"] == "sweep"]
    assert len(sweeps) == 1
    jobs = [span for span in spans if span["name"] == "job"]
    assert len(jobs) == len(result.records)
    assert all(job["parent"] == sweeps[0]["id"] for job in jobs)
    assert {record["trace_span"] for record in result.records} == {
        job["id"] for job in jobs
    }
    assert all(record["trace_s"] >= 0.0 for record in result.records)
    return sweeps[0], jobs


def test_serial_sweep_trace(trace_dir):
    result = run_sweep(SWEEP, backend="serial")
    sweep, jobs = _assert_coherent_trace(trace_dir, result)
    assert sweep["attrs"]["executed"] == len(SPECS)
    assert all(job["pid"] == os.getpid() for job in jobs)


def test_process_backend_merged_trace(trace_dir):
    result = run_sweep(SWEEP, backend=make_backend("process", max_workers=2))
    _sweep, jobs = _assert_coherent_trace(trace_dir, result)
    # Jobs genuinely ran in pool workers, each with its own trace file,
    # yet the merged parent links cross the process boundary.
    assert all(job["pid"] != os.getpid() for job in jobs)
    assert len(list(trace_dir.glob("trace-*.jsonl"))) >= 2


def test_async_backend_merged_trace(trace_dir):
    result = run_sweep(SWEEP, backend=make_backend("async", max_workers=2))
    _sweep, jobs = _assert_coherent_trace(trace_dir, result)
    assert all(job["pid"] != os.getpid() for job in jobs)
    # Async workers flush their metrics registry on exit: the executed
    # count lands in the directory even though it happened off-process.
    registries = read_metrics(trace_dir)
    executed = sum(
        registry.get("counters", {}).get("job.executed", 0)
        for registry in registries.values()
    )
    assert executed == len(SPECS)


def test_cost_error_histogram_from_seeded_book(trace_dir, tmp_path):
    cache = ResultCache(disk_dir=tmp_path / "store")
    store = cache.store_backend
    seed_book = CostBook(store)
    seed_book.observe("test_planarity", 36, 0.004)
    assert seed_book.flush() == 1
    assert CostModel.from_store(store).predict(
        "test_planarity", 36
    ) == pytest.approx(0.004)
    result = run_sweep(SWEEP, cache=cache)
    assert result.batch.executed == len(SPECS)
    # Every executed job compared its wall-time against the pre-sweep
    # prediction; the error histogram is the model-quality signal.
    registries = read_metrics(trace_dir)
    histograms = [
        registry["histograms"]["scheduler.cost_rel_error"]
        for registry in registries.values()
        if "scheduler.cost_rel_error" in registry.get("histograms", {})
    ]
    assert histograms, "no cost_rel_error histogram was flushed"
    assert sum(h["count"] for h in histograms) == len(SPECS)
    assert all(h["min"] >= 0.0 for h in histograms)


def test_trace_top_ranks_slowest_kind_first(trace_dir, tmp_path, capsys):
    run_sweep(SWEEP, backend="serial")
    run_sweep(
        SweepSpec.make(
            "simulate_program", families=["delaunay"], ns=[256], seeds=[0],
            program="storm", profile="fast", storm_rounds=6, trial=[0, 1],
        ),
        backend="serial",
    )
    events = read_events(trace_dir)
    rows = top_spans(events, name="job")
    assert {row["kind"] for row in rows} == {
        "test_planarity", "simulate_program"
    }
    # Rank order must match the actual per-kind totals in the trace.
    totals = {}
    for ev in events:
        if ev["ev"] == "span" and ev["name"] == "job":
            kind = ev["attrs"]["kind"]
            totals[kind] = totals.get(kind, 0.0) + ev["dur"]
    expected = sorted(totals, key=lambda kind: -totals[kind])
    assert [row["kind"] for row in rows] == expected
    # The CLI family reads the same directory.
    assert main(["trace", "top", str(trace_dir), "--name", "job"]) == 0
    out = capsys.readouterr().out
    assert out.index(expected[0]) < out.index(expected[1])
    assert main(["trace", "view", str(trace_dir), "--max-lines", "50"]) == 0
    chrome_path = tmp_path / "chrome.json"
    assert main([
        "trace", "export", str(trace_dir),
        "--chrome", "--out", str(chrome_path),
    ]) == 0
    doc = json.loads(chrome_path.read_text())
    assert doc["traceEvents"]
    assert {entry["ph"] for entry in doc["traceEvents"]} <= {"X", "i"}


def test_trace_cli_rejects_empty_directory(tmp_path):
    assert main(["trace", "view", str(tmp_path)]) == 1


def test_remote_requeue_logs_partial_cost():
    """A worker that dies mid-job leaves a cost sample behind: the
    partial elapsed seconds land in the CostBook alongside the
    successful completions (len(SPECS) + 1 observations total)."""
    backend = RemoteBackend(port=0)
    port = backend.bind()
    book = CostBook()
    got_job = threading.Event()

    def doomed_worker():
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        reader = sock.makefile("rb")
        sock.sendall(
            encode_wire_frame(
                {
                    "op": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "kinds": ["test_planarity"],
                    "store": None,
                    "pid": 0,
                }
            )
        )
        assert read_wire_frame(reader)["op"] == "welcome"
        assert read_wire_frame(reader)["op"] == "job"
        got_job.set()
        sock.close()  # die mid-job: the server requeues

    doomed = threading.Thread(target=doomed_worker, daemon=True)
    doomed.start()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS, backend=backend, cost_book=book)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    assert got_job.wait(10), "doomed worker never received a job"
    survivor = threading.Thread(
        target=serve_remote,
        args=("127.0.0.1", port),
        kwargs={"retry_seconds": 10.0},
        daemon=True,
    )
    survivor.start()
    consumer.join(30)
    assert not consumer.is_alive()
    survivor.join(15)
    assert not survivor.is_alive()
    assert len(holder["batch"].records) == len(SPECS)
    assert book.observations == len(SPECS) + 1
