"""Grid sweeps and table aggregation (repro.runtime.sweeps)."""

from __future__ import annotations

from repro.runtime import (
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SweepSpec,
    run_sweep,
)


def test_cli_axis_parsing_strips_whitespace():
    from repro.cli import _parse_axis

    assert _parse_axis("grid, delaunay", str) == ["grid", "delaunay"]
    assert _parse_axis(" 64,128 ,256", int) == [64, 128, 256]
    assert _parse_axis("0.5, 0.1", float) == [0.5, 0.1]


def _small_sweep() -> SweepSpec:
    return SweepSpec.make(
        "test_planarity",
        families=["grid", "tree"],
        ns=[36],
        seeds=[0, 1],
        epsilon=[0.5, 0.25],
    )


def test_expand_size_and_order():
    sweep = _small_sweep()
    specs = sweep.expand()
    assert len(specs) == sweep.size == 2 * 1 * 2 * 2
    # graphs outermost, seeds innermost
    assert [s.family for s in specs[:4]] == ["grid"] * 4
    assert [s.seed for s in specs[:4]] == [0, 1, 0, 1]
    assert specs[0].params["epsilon"] == 0.5
    assert specs[2].params["epsilon"] == 0.25


def test_scalar_params_promoted():
    sweep = SweepSpec.make("test_planarity", ns=[36], epsilon=0.5)
    assert sweep.size == 1
    assert sweep.expand()[0].params["epsilon"] == 0.5


def test_far_axis_overrides_families():
    sweep = SweepSpec.make(
        "test_planarity", families=["grid"], fars=["planted-k5"],
        ns=[80], epsilon=0.1,
    )
    specs = sweep.expand()
    assert len(specs) == 1
    assert specs[0].far == "planted-k5"


def test_sweep_tables_identical_across_backends():
    sweep = _small_sweep()
    serial = run_sweep(sweep, backend=SerialBackend())
    pooled = run_sweep(sweep, backend=ProcessPoolBackend(max_workers=2))
    title = "backend equivalence"
    assert (
        serial.to_table(title).render() == pooled.to_table(title).render()
    )
    assert (
        serial.to_table(title).to_markdown()
        == pooled.to_table(title).to_markdown()
    )


def test_sweep_summary_and_cache():
    cache = ResultCache()
    sweep = _small_sweep()
    first = run_sweep(sweep, cache=cache)
    summary = first.summary()
    assert summary["jobs"] == sweep.size
    assert summary["executed"] == sweep.size
    assert summary["accept_rate"] == 1.0
    assert summary["rounds_min"] <= summary["rounds_mean"] <= summary["rounds_max"]
    second = run_sweep(sweep, cache=cache)
    assert second.summary()["cache_hit_rate"] >= 0.9
    assert second.summary()["executed"] == 0


def test_to_table_column_selection():
    result = run_sweep(
        SweepSpec.make("test_planarity", families=["grid"], ns=[36],
                       epsilon=0.5)
    )
    table = result.to_table("cols", columns=["family", "n", "rounds"])
    assert table.headers == ["family", "n", "rounds"]
    assert len(table.rows) == 1
    # default columns: union of record keys in first-seen order
    auto = result.to_table("auto")
    assert auto.headers[0] == "kind"
    assert "rounds" in auto.headers
