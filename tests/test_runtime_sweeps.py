"""Grid sweeps, sharding, and table aggregation (repro.runtime.sweeps)."""

from __future__ import annotations

import pytest

from repro.runtime import (
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    ShardedSweep,
    SweepSpec,
    job_shard,
    run_sweep,
)


def test_cli_axis_parsing_strips_whitespace():
    from repro.cli import _parse_axis

    assert _parse_axis("grid, delaunay", str) == ["grid", "delaunay"]
    assert _parse_axis(" 64,128 ,256", int) == [64, 128, 256]
    assert _parse_axis("0.5, 0.1", float) == [0.5, 0.1]


def _small_sweep() -> SweepSpec:
    return SweepSpec.make(
        "test_planarity",
        families=["grid", "tree"],
        ns=[36],
        seeds=[0, 1],
        epsilon=[0.5, 0.25],
    )


def test_expand_size_and_order():
    sweep = _small_sweep()
    specs = sweep.expand()
    assert len(specs) == sweep.size == 2 * 1 * 2 * 2
    # graphs outermost, seeds innermost
    assert [s.family for s in specs[:4]] == ["grid"] * 4
    assert [s.seed for s in specs[:4]] == [0, 1, 0, 1]
    assert specs[0].params["epsilon"] == 0.5
    assert specs[2].params["epsilon"] == 0.25


def test_scalar_params_promoted():
    sweep = SweepSpec.make("test_planarity", ns=[36], epsilon=0.5)
    assert sweep.size == 1
    assert sweep.expand()[0].params["epsilon"] == 0.5


def test_far_axis_overrides_families():
    sweep = SweepSpec.make(
        "test_planarity", families=["grid"], fars=["planted-k5"],
        ns=[80], epsilon=0.1,
    )
    specs = sweep.expand()
    assert len(specs) == 1
    assert specs[0].far == "planted-k5"


def test_sweep_tables_identical_across_backends():
    sweep = _small_sweep()
    serial = run_sweep(sweep, backend=SerialBackend())
    pooled = run_sweep(sweep, backend=ProcessPoolBackend(max_workers=2))
    title = "backend equivalence"
    assert (
        serial.to_table(title).render() == pooled.to_table(title).render()
    )
    assert (
        serial.to_table(title).to_markdown()
        == pooled.to_table(title).to_markdown()
    )


def test_sweep_summary_and_cache():
    cache = ResultCache()
    sweep = _small_sweep()
    first = run_sweep(sweep, cache=cache)
    summary = first.summary()
    assert summary["jobs"] == sweep.size
    assert summary["executed"] == sweep.size
    assert summary["accept_rate"] == 1.0
    assert summary["rounds_min"] <= summary["rounds_mean"] <= summary["rounds_max"]
    second = run_sweep(sweep, cache=cache)
    assert second.summary()["cache_hit_rate"] >= 0.9
    assert second.summary()["executed"] == 0


class TestShardedSweep:
    def test_shards_partition_the_grid(self):
        sweep = _small_sweep()
        sharded = ShardedSweep(sweep, 3)
        pieces = [sharded.shard_specs(i) for i in range(3)]
        flattened = [spec for piece in pieces for spec in piece]
        assert sorted(flattened, key=lambda s: s.canonical()) == sorted(
            sweep.expand(), key=lambda s: s.canonical()
        )
        for index, piece in enumerate(pieces):
            for spec in piece:
                assert job_shard(spec, 3) == index

    def test_shard_assignment_is_deterministic(self):
        spec = _small_sweep().expand()[0]
        assert job_shard(spec, 5) == job_shard(spec, 5)
        with pytest.raises(ValueError):
            job_shard(spec, 0)

    def test_merge_restores_expansion_order(self):
        sweep = _small_sweep()
        sharded = ShardedSweep(sweep, 2)
        results = [sharded.run_shard(i) for i in range(2)]
        merged = sharded.merge(results)
        full = run_sweep(sweep)
        assert merged.records == full.records
        assert merged.batch.executed == sweep.size

    def test_shards_share_one_store(self, tmp_path):
        """Shard runs against one store, then a full resume run is a
        100% hit -- the CLI's --shard/--resume workflow."""
        sweep = _small_sweep()
        sharded = ShardedSweep(sweep, 2)
        store = tmp_path / "store"
        for index in range(2):
            sharded.run_shard(index, cache=ResultCache(disk_dir=store))
        final = run_sweep(
            sweep, cache=ResultCache(disk_dir=store), resume=True
        )
        assert final.batch.executed == 0
        assert final.records == run_sweep(sweep).records

    def test_run_sweep_shard_argument(self, tmp_path):
        sweep = _small_sweep()
        direct = run_sweep(sweep, shard=(0, 2))
        via_class = ShardedSweep(sweep, 2).run_shard(0)
        assert direct.records == via_class.records

    def test_merge_rejects_wrong_shard_count(self):
        sharded = ShardedSweep(_small_sweep(), 2)
        with pytest.raises(ValueError, match="expected 2 shard results"):
            sharded.merge([sharded.run_shard(0)])


class TestResume:
    def test_resume_requires_cache(self):
        with pytest.raises(ValueError, match="needs a cache"):
            run_sweep(_small_sweep(), resume=True)

    def test_resume_touches_only_missing_keys(self, tmp_path, monkeypatch):
        """Acceptance: resuming a partially-run sweep executes exactly
        the uncached jobs."""
        import repro.runtime.jobs as jobs_mod

        sweep = _small_sweep()
        store = tmp_path / "store"
        # Run one shard, abandoning the rest of the grid.
        partial = ShardedSweep(sweep, 2).run_shard(
            0, cache=ResultCache(disk_dir=store)
        )
        done = len(partial.records)
        assert 0 < done < sweep.size

        executed_kinds = []
        real_run = jobs_mod.run_job

        def counting_run(spec, graph=None):
            executed_kinds.append(spec)
            return real_run(spec, graph)

        monkeypatch.setattr(jobs_mod, "run_job", counting_run)
        # run_jobs imported the symbol at module load; patch there too.
        import repro.runtime.executor as executor_mod

        monkeypatch.setattr(executor_mod, "run_job", counting_run)
        resumed = run_sweep(
            sweep, cache=ResultCache(disk_dir=store), resume=True
        )
        assert resumed.batch.executed == sweep.size - done
        assert len(executed_kinds) == sweep.size - done
        missing = set(
            s.canonical() for s in ShardedSweep(sweep, 2).shard_specs(1)
        )
        assert {s.canonical() for s in executed_kinds} == missing
        assert resumed.records == run_sweep(sweep).records


def test_to_table_column_selection():
    result = run_sweep(
        SweepSpec.make("test_planarity", families=["grid"], ns=[36],
                       epsilon=0.5)
    )
    table = result.to_table("cols", columns=["family", "n", "rounds"])
    assert table.headers == ["family", "n", "rounds"]
    assert len(table.rows) == 1
    # default columns: union of record keys in first-seen order
    auto = result.to_table("auto")
    assert auto.headers[0] == "kind"
    assert "rounds" in auto.headers
