"""Tests for the genuinely distributed Stage II verification protocol.

The strongest cross-layer validation in the suite: the message-passing
protocol must assign exactly the same Euler-tour corner positions as the
emulated walk, accept every planar part, and reject non-planar parts via
sampled interlacements -- all within the CONGEST bandwidth budget.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.programs import run_stage2_verification_simulated
from repro.graphs import make_far, make_planar
from repro.planarity import check_planarity, identity_rotation
from repro.testers.labels import deterministic_bfs_tree, euler_tour_positions


def run_distributed(graph, rotation, epsilon=0.2, seed=0):
    return run_stage2_verification_simulated(
        graph, 0, rotation.to_dict(), epsilon=epsilon, seed=seed
    )


class TestPositionsMatchEmulated:
    @pytest.mark.parametrize(
        "family", ["grid", "tri-grid", "apollonian", "delaunay", "outerplanar"]
    )
    def test_positions_identical(self, family):
        graph = make_planar(family, 90, seed=2)
        emb = check_planarity(graph).embedding
        result = run_distributed(graph, emb)
        parents, _ = deterministic_bfs_tree(graph, 0)
        emulated, total = euler_tour_positions(graph, 0, emb, parents)
        assert result.positions == emulated

    def test_positions_with_fallback_rotation(self, k33):
        rot = identity_rotation(k33)
        result = run_distributed(k33, rot, seed=1)
        parents, _ = deterministic_bfs_tree(k33, 0)
        emulated, _total = euler_tour_positions(k33, 0, rot, parents)
        assert result.positions == emulated

    def test_tree_part_has_no_positions(self):
        tree = nx.random_labeled_tree(40, seed=1)
        emb = check_planarity(tree).embedding
        result = run_distributed(tree, emb)
        assert result.positions == {}
        assert result.accepted


class TestVerdicts:
    def test_planar_parts_always_accept(self):
        for family in ("grid", "delaunay", "apollonian"):
            for seed in range(3):
                graph = make_planar(family, 80, seed=seed)
                emb = check_planarity(graph).embedding
                result = run_distributed(graph, emb, seed=seed)
                assert result.accepted, (family, seed)

    def test_k33_rejected(self, k33):
        rot = identity_rotation(k33)
        rejections = sum(
            not run_distributed(k33, rot, epsilon=0.3, seed=s).accepted
            for s in range(5)
        )
        assert rejections == 5

    def test_far_part_rejected(self):
        graph, certified = make_far("planted-k5", 100, seed=1)
        rot = identity_rotation(graph)
        result = run_distributed(graph, rot, epsilon=certified * 0.9, seed=0)
        assert not result.accepted
        assert result.rejecting_nodes

    def test_rejection_witness_is_real_interlacement(self, k33):
        rot = identity_rotation(k33)
        result = run_distributed(k33, rot, epsilon=0.3, seed=2)
        assert not result.accepted
        # verdict tuples carry the interlacing interval pair
        assert result.rejecting_nodes


class TestProtocolShape:
    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        result = run_stage2_verification_simulated(graph, 0, {0: []})
        assert result.accepted
        assert result.positions == {}

    def test_two_nodes(self):
        graph = nx.path_graph(2)
        emb = check_planarity(graph).embedding
        result = run_distributed(graph, emb)
        assert result.accepted

    def test_rounds_reported(self):
        graph = make_planar("grid", 60, seed=0)
        emb = check_planarity(graph).embedding
        result = run_distributed(graph, emb)
        assert result.rounds == result.bfs_rounds + result.verification_rounds
        assert result.verification_rounds > 0

    def test_rounds_scale_with_samples_and_depth(self):
        # deeper parts and more samples -> more pipelined rounds
        small_eps = run_distributed(
            make_planar("grid", 100, seed=0),
            check_planarity(make_planar("grid", 100, seed=0)).embedding,
            epsilon=0.05,
        )
        large_eps = run_distributed(
            make_planar("grid", 100, seed=0),
            check_planarity(make_planar("grid", 100, seed=0)).embedding,
            epsilon=0.5,
        )
        assert small_eps.sample_size > large_eps.sample_size
        assert small_eps.verification_rounds >= large_eps.verification_rounds

    def test_bandwidth_respected(self):
        # strict_bandwidth=True inside the runner: reaching here without
        # BandwidthExceededError is the assertion; double-check verdicts.
        graph = make_planar("delaunay", 120, seed=3)
        emb = check_planarity(graph).embedding
        assert run_distributed(graph, emb).accepted

    def test_one_sided_never_false_alarms_bulk(self):
        alarms = 0
        for seed in range(8):
            graph = make_planar("outerplanar", 60, seed=seed)
            emb = check_planarity(graph).embedding
            alarms += not run_distributed(graph, emb, seed=seed).accepted
        assert alarms == 0
