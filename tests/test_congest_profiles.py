"""Differential tests: instrumentation profiles must not change results.

The hard requirement of the two-tier simulator core: the ``fast``
profile may elide validation and memoize accounting, but outputs,
rounds, halting behavior -- and, for the bundled protocols, the
message/bit totals -- must be identical to the ``faithful`` profile on
every bundled program.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import (
    BROADCAST,
    CongestNetwork,
    FaithfulProfile,
    FastProfile,
    NodeProgram,
    resolve_profile,
)
from repro.congest.instrumentation import PROFILE_ENV_VAR
from repro.congest.programs import (
    BFSTreeProgram,
    BroadcastStormProgram,
    cole_vishkin_coloring,
    flood_eccentricity,
    run_bipartite_check_simulated,
    run_cycle_check_simulated,
    run_forest_decomposition_simulated,
    run_stage2_verification_simulated,
)
from repro.errors import BandwidthExceededError, ProtocolError
from repro.graphs import make_planar
from repro.planarity import check_planarity

SEEDS = (0, 1, 2)


def _identical(faithful, fast):
    """Assert the profile-independent parts of two results agree."""
    assert faithful.outputs == fast.outputs
    assert faithful.rounds == fast.rounds
    assert faithful.halted == fast.halted
    assert faithful.total_messages == fast.total_messages
    assert faithful.total_bits == fast.total_bits
    assert faithful.max_message_bits == fast.max_message_bits
    assert faithful.over_budget_messages == fast.over_budget_messages


def _run_both(graph, program, max_rounds, config, seed=0, strict=True):
    results = []
    for profile in ("faithful", "fast"):
        results.append(
            CongestNetwork(graph, seed=seed).run(
                program,
                max_rounds=max_rounds,
                config=config,
                strict_bandwidth=strict,
                profile=profile,
            )
        )
    return results


class TestDifferentialPrograms:
    def test_bfs(self):
        for seed in SEEDS:
            graph = make_planar("delaunay", 80, seed=seed)
            faithful, fast = _run_both(
                graph, BFSTreeProgram, graph.number_of_nodes() + 2, {"root": 0}
            )
            _identical(faithful, fast)

    def test_flood(self):
        for seed in SEEDS:
            graph = make_planar("grid", 64, seed=seed)
            f_ecc, f_dist = flood_eccentricity(graph, 0, profile="faithful")
            q_ecc, q_dist = flood_eccentricity(graph, 0, profile="fast")
            assert f_ecc == q_ecc
            assert f_dist == q_dist

    def test_cole_vishkin(self):
        path = nx.path_graph(90)
        parents = {i: i - 1 if i > 0 else None for i in path.nodes()}
        f_colors, f_rounds = cole_vishkin_coloring(path, parents, profile="faithful")
        q_colors, q_rounds = cole_vishkin_coloring(path, parents, profile="fast")
        assert f_colors == q_colors
        assert f_rounds == q_rounds

    def test_forest_decomposition(self):
        for graph in (make_planar("tri-grid", 100, seed=1), nx.complete_graph(12)):
            faithful = run_forest_decomposition_simulated(
                graph, alpha=3, profile="faithful"
            )
            fast = run_forest_decomposition_simulated(graph, alpha=3, profile="fast")
            assert faithful.inactive_round == fast.inactive_round
            assert faithful.out_neighbors == fast.out_neighbors
            assert faithful.rejecting_nodes == fast.rejecting_nodes
            assert faithful.rounds == fast.rounds

    def test_stage2_verification(self):
        graph = make_planar("delaunay", 60, seed=3)
        rotation = check_planarity(graph).embedding.to_dict()
        for seed in SEEDS:
            faithful = run_stage2_verification_simulated(
                graph, 0, rotation, epsilon=0.2, seed=seed, profile="faithful"
            )
            fast = run_stage2_verification_simulated(
                graph, 0, rotation, epsilon=0.2, seed=seed, profile="fast"
            )
            assert faithful.accepted == fast.accepted
            assert faithful.rejecting_nodes == fast.rejecting_nodes
            assert faithful.positions == fast.positions
            assert faithful.bfs_rounds == fast.bfs_rounds
            assert faithful.verification_rounds == fast.verification_rounds

    def test_part_checks(self):
        tree = nx.random_labeled_tree(40, seed=2) if hasattr(
            nx, "random_labeled_tree"
        ) else nx.random_tree(40, seed=2)
        cycle = nx.cycle_graph(17)
        for graph in (tree, cycle):
            f_cycle = run_cycle_check_simulated(graph, 0, profile="faithful")
            q_cycle = run_cycle_check_simulated(graph, 0, profile="fast")
            assert f_cycle.accepted == q_cycle.accepted
            assert f_cycle.rejecting_nodes == q_cycle.rejecting_nodes
            assert f_cycle.rounds == q_cycle.rounds
            f_bip = run_bipartite_check_simulated(graph, 0, profile="faithful")
            q_bip = run_bipartite_check_simulated(graph, 0, profile="fast")
            assert f_bip.accepted == q_bip.accepted
            assert f_bip.rejecting_nodes == q_bip.rejecting_nodes

    def test_broadcast_storm(self):
        graph = nx.gnp_random_graph(70, 0.15, seed=4)
        faithful, fast = _run_both(
            graph,
            BroadcastStormProgram,
            12,
            {"storm_rounds": 10},
            strict=False,
        )
        _identical(faithful, fast)


class TestProfileSemantics:
    def test_result_records_profile_name(self):
        graph = nx.path_graph(4)
        result = CongestNetwork(graph).run(
            BFSTreeProgram, max_rounds=8, config={"root": 0}, profile="fast"
        )
        assert result.profile == "fast"

    def test_faithful_round_stats_sum_to_totals(self):
        graph = nx.cycle_graph(9)
        result = CongestNetwork(graph).run(
            BFSTreeProgram, max_rounds=20, config={"root": 0}, profile="faithful"
        )
        assert len(result.round_stats) == result.rounds
        assert sum(m for m, _ in result.round_stats) == result.total_messages
        assert sum(b for _, b in result.round_stats) == result.total_bits

    def test_fast_profile_keeps_counters_only(self):
        graph = nx.cycle_graph(9)
        result = CongestNetwork(graph).run(
            BFSTreeProgram, max_rounds=20, config={"root": 0}, profile="fast"
        )
        assert result.round_stats == ()
        assert result.total_messages > 0

    def test_env_knob_selects_profile(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "fast")
        graph = nx.path_graph(4)
        result = CongestNetwork(graph).run(
            BFSTreeProgram, max_rounds=8, config={"root": 0}
        )
        assert result.profile == "fast"

    def test_resolve_profile_accepts_instance_and_class(self):
        assert resolve_profile(FastProfile).name == "fast"
        instance = FaithfulProfile()
        assert resolve_profile(instance) is instance
        with pytest.raises(ValueError, match="unknown instrumentation profile"):
            resolve_profile("warp")

    def test_fast_validates_first_explicit_outbox(self):
        class BadSender(NodeProgram):
            def step(self, round_index, inbox):
                target = (self.ctx.node + 2) % self.ctx.n
                return {target: ("oops",)}

        graph = nx.path_graph(4)
        with pytest.raises(ProtocolError):
            CongestNetwork(graph).run(BadSender, max_rounds=2, profile="fast")

    def test_fast_strict_bandwidth_still_raises(self):
        class HugeSender(NodeProgram):
            def step(self, round_index, inbox):
                return self.broadcast(("x" * 10_000,))

        graph = nx.path_graph(3)
        with pytest.raises(BandwidthExceededError):
            CongestNetwork(graph).run(
                HugeSender, max_rounds=3, strict_bandwidth=True, profile="fast"
            )

    def test_fast_broadcast_with_override(self):
        class Mixed(NodeProgram):
            def step(self, round_index, inbox):
                if round_index == 0 and self.ctx.node == 0:
                    return {BROADCAST: ("b",), self.ctx.neighbors[0]: ("direct",)}
                if round_index == 1:
                    self.halt(dict(inbox))
                return self.silence()

        graph = nx.path_graph(3)
        faithful = CongestNetwork(graph).run(Mixed, max_rounds=4, profile="faithful")
        fast = CongestNetwork(graph).run(Mixed, max_rounds=4, profile="fast")
        assert faithful.outputs == fast.outputs
        assert fast.outputs[1][0] == ("direct",)
