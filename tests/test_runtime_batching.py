"""Runtime-side batching: coalescing, transparent expansion, accounting.

The executor folds eligible same-cell simulator trials into
``simulate_batch`` jobs and re-expands the results, so every consumer
-- record lists, caches, cost books, all backends -- observes exactly
what a scalar run would have produced.  These tests pin the grouping
rules, the record/cache/cost transparency on the serial and process
backends, the async wire round-trip of batch specs, and the env-var
knob.
"""

from __future__ import annotations

from repro.congest.plane import PLANE_ENV_VAR
from repro.runtime import (
    BATCH_ENV_VAR,
    AsyncBackend,
    CostBook,
    JobSpec,
    ResultCache,
    batchable,
    coalesce,
    make_batch_spec,
    run_jobs,
    run_sweep,
    SweepSpec,
)
from repro.runtime.batching import expand_batch_record
from repro.runtime.jobs import run_job


def sim_spec(seed=0, program="bfs", profile="fast", n=30, graph_seed=7, **kw):
    return JobSpec.make(
        "simulate_program",
        family="grid",
        n=n,
        seed=seed,
        graph_seed=graph_seed,
        program=program,
        profile=profile,
        **kw,
    )


FLEET = [sim_spec(seed=s) for s in range(6)]


# -- eligibility and grouping -------------------------------------------------


def test_batchable_requires_fast_profile_and_known_program():
    assert batchable(sim_spec())
    assert not batchable(sim_spec(profile="faithful"))
    assert not batchable(sim_spec(profile=None))
    assert not batchable(
        JobSpec.make("test_planarity", family="grid", n=30, seed=0)
    )


def test_batchable_respects_plane_env(monkeypatch):
    monkeypatch.setenv(PLANE_ENV_VAR, "dict")
    assert not batchable(sim_spec())
    monkeypatch.setenv(PLANE_ENV_VAR, "dense")
    assert batchable(sim_spec())


def test_coalesce_groups_chunks_and_passes_singletons_through():
    specs = (
        [sim_spec(seed=s) for s in range(5)]
        + [sim_spec(seed=9, profile="faithful")]  # ineligible: untouched
        + [sim_spec(seed=s, program="storm", storm_rounds=4) for s in (0, 1)]
        + [sim_spec(seed=99, n=60)]  # different cell: group of one
    )
    dispatch, sources = coalesce(specs, 4)
    covered = sorted(i for group in sources for i in group)
    assert covered == list(range(len(specs)))
    kinds = [(d.kind, len(s)) for d, s in zip(dispatch, sources)]
    assert kinds == [
        ("simulate_batch", 4),  # seeds 0-3
        ("simulate_program", 1),  # seed 4: a chunk of one stays scalar
        ("simulate_program", 1),  # faithful passthrough
        ("simulate_batch", 2),  # the storm pair
        ("simulate_program", 1),  # the n=60 singleton
    ]
    batch = dispatch[0]
    assert batch.params["seeds"] == (0, 1, 2, 3)
    assert batch.params["program"] == "bfs"


def test_coalesce_disabled_at_limit_one():
    dispatch, sources = coalesce(FLEET, 1)
    assert dispatch == FLEET
    assert sources == [[i] for i in range(len(FLEET))]


def test_batch_spec_survives_wire_round_trip():
    batch = make_batch_spec(FLEET)
    clone = JobSpec.from_payload(batch.to_payload())
    assert clone == batch
    assert clone.params["seeds"] == tuple(s.seed for s in FLEET)


def test_batch_record_expands_to_scalar_records():
    batch = make_batch_spec(FLEET)
    record = run_job(batch)
    trials = expand_batch_record(record)
    assert record["trials_n"] == len(FLEET)
    scalar = [run_job(spec) for spec in FLEET]
    assert trials == scalar


# -- executor transparency ----------------------------------------------------


def test_run_jobs_batched_matches_unbatched():
    base = run_jobs(FLEET)
    batched = run_jobs(FLEET, batch=4)
    assert batched.records == base.records
    assert batched.executed == base.executed == len(FLEET)


def test_run_jobs_batched_with_cache_then_scalar_rerun(tmp_path):
    cache = ResultCache(disk_dir=tmp_path / "store")
    first = run_jobs(FLEET, cache=cache, batch=8)
    assert first.cache_stats.misses == len(FLEET)
    assert first.cache_stats.stores == len(FLEET)
    # A later *unbatched* run replays entirely from the per-trial cache.
    second = run_jobs(FLEET, cache=cache)
    assert second.cache_stats.misses == 0
    assert second.records == first.records


def test_cost_book_gets_amortized_per_trial_samples():
    book = CostBook()
    run_jobs(FLEET, cost_book=book, batch=8)
    count, total = book._pending[("simulate_program", 30)]
    assert count == len(FLEET)
    assert total > 0
    assert ("simulate_batch", 30) not in book._pending


def test_process_backend_ships_batches():
    base = run_jobs(FLEET)
    batched = run_jobs(FLEET, backend="process", batch=3)
    assert batched.records == base.records


def test_async_backend_ships_batches(tmp_path):
    base = run_jobs(FLEET)
    cache = ResultCache(disk_dir=tmp_path / "store")
    batched = run_jobs(
        FLEET,
        backend=AsyncBackend(max_workers=2, store_dir=str(tmp_path / "store")),
        cache=cache,
        batch=3,
    )
    assert batched.records == base.records
    # The expanded per-trial records landed in the cache despite the
    # workers persisting only batch records.
    rerun = run_jobs(FLEET, cache=cache)
    assert rerun.cache_stats.misses == 0


def test_env_var_enables_batching(monkeypatch):
    monkeypatch.setenv(BATCH_ENV_VAR, "4")
    dispatch, _sources = coalesce(FLEET)
    assert [d.kind for d in dispatch] == ["simulate_batch", "simulate_batch"]
    base = run_jobs(FLEET)
    batched = run_jobs(FLEET)  # picks the env knob up inside iter_jobs
    assert batched.records == base.records


def test_run_sweep_batched_matches_unbatched():
    sweep = SweepSpec.make(
        "simulate_program",
        families=["grid"],
        ns=[30],
        seeds=[0, 1, 2, 3],
        program=["flood", "storm"],
        profile=["fast"],
        storm_rounds=[4],
    )
    base = run_sweep(sweep)
    batched = run_sweep(sweep, batch=4)
    assert batched.records == base.records
    assert batched.summary()["jobs"] == base.summary()["jobs"]


# -- auto batch sizing --------------------------------------------------------


def test_auto_batch_fixed_default_without_history():
    from repro.runtime import AUTO_BATCH_DEFAULT, auto_batch_size

    assert auto_batch_size(None, FLEET) == AUTO_BATCH_DEFAULT
    from repro.runtime.scheduler import CostModel

    assert auto_batch_size(CostModel(), FLEET) == AUTO_BATCH_DEFAULT


def test_auto_batch_sizes_from_measured_trial_cost():
    from repro.runtime import (
        AUTO_BATCH_MAX,
        AUTO_TARGET_SECONDS,
        auto_batch_size,
    )
    from repro.runtime.scheduler import CostModel

    cheap = CostModel(samples={"simulate_program": {30: 0.01}})
    assert auto_batch_size(cheap, FLEET) == int(AUTO_TARGET_SECONDS / 0.01)
    slow = CostModel(samples={"simulate_program": {30: 2.0}})
    assert auto_batch_size(slow, FLEET) == 1  # batching would not amortize
    free = CostModel(samples={"simulate_program": {30: 1e-6}})
    assert auto_batch_size(free, FLEET) == AUTO_BATCH_MAX


def test_resolve_batch_tolerates_auto(monkeypatch):
    from repro.runtime import AUTO_BATCH_DEFAULT, resolve_batch

    assert resolve_batch("auto") == AUTO_BATCH_DEFAULT
    assert resolve_batch("8") == 8
    monkeypatch.setenv(BATCH_ENV_VAR, "auto")
    assert resolve_batch() == AUTO_BATCH_DEFAULT


def test_run_sweep_auto_batch_matches_unbatched(tmp_path):
    """``batch="auto"``: first run seeds the cost table, second run
    sizes batches from it -- records identical to scalar runs and the
    resume is a 100% hit (auto sizing cannot perturb cache keys)."""
    sweep = SweepSpec.make(
        "simulate_program",
        families=["grid"],
        ns=[30],
        seeds=[0, 1, 2, 3],
        program=["bfs"],
        profile=["fast"],
    )
    base = run_sweep(sweep)
    cache = ResultCache(disk_dir=tmp_path / "store")
    first = run_sweep(sweep, cache=cache, batch="auto")
    assert first.records == base.records
    assert first.batch.executed == len(first.records)
    cache2 = ResultCache(disk_dir=tmp_path / "store")
    second = run_sweep(sweep, cache=cache2, batch="auto", resume=True)
    assert second.records == base.records
    assert second.batch.executed == 0


# -- padding-waste bound ------------------------------------------------------


def test_resolve_pad_waste_arg_env_default(monkeypatch):
    import pytest

    from repro.congest.batch import WASTE_ENV_VAR, resolve_pad_waste

    monkeypatch.delenv(WASTE_ENV_VAR, raising=False)
    assert resolve_pad_waste() == 4.0
    monkeypatch.setenv(WASTE_ENV_VAR, "2.5")
    assert resolve_pad_waste() == 2.5
    assert resolve_pad_waste(8) == 8.0  # explicit arg beats the env
    with pytest.raises(ValueError):
        resolve_pad_waste(0.5)
    monkeypatch.setenv(WASTE_ENV_VAR, "0.25")
    with pytest.raises(ValueError):
        resolve_pad_waste()


def test_pad_groups_reads_waste_env(monkeypatch):
    import networkx as nx

    from repro.congest import compile_topology, pad_groups
    from repro.congest.batch import WASTE_ENV_VAR

    topologies = [compile_topology(nx.path_graph(n)) for n in (4, 8, 64)]
    monkeypatch.delenv(WASTE_ENV_VAR, raising=False)
    default_groups = pad_groups(topologies, limit=8)
    monkeypatch.setenv(WASTE_ENV_VAR, "1.0")
    tight = pad_groups(topologies, limit=8)
    # A waste bound of 1 forbids any padding: every distinct slot count
    # lands in its own group, tighter than the 4.0 default's split.
    assert len(tight) == 3
    assert len(default_groups) < len(tight)


def test_ragged_batch_respects_waste_bound(monkeypatch):
    """A ragged (unpinned-graph) batch splits through ``pad_groups``
    inside the job; under the tightest bound the record still expands
    to exactly the scalar per-trial records."""
    from repro.congest.batch import WASTE_ENV_VAR

    members = [
        JobSpec.make(
            "simulate_program",
            family="planar-sparse",
            n=24,
            seed=s,
            program="bfs",
            profile="fast",
        )
        for s in range(4)
    ]
    scalar = [run_job(spec) for spec in members]
    batch = make_batch_spec(members)
    monkeypatch.setenv(WASTE_ENV_VAR, "1.0")
    assert expand_batch_record(run_job(batch)) == scalar


def test_run_sweep_batch_waste_exports_and_restores_env(monkeypatch):
    import os

    from repro.congest.batch import WASTE_ENV_VAR

    monkeypatch.setenv(WASTE_ENV_VAR, "3.0")
    sweep = SweepSpec.make(
        "simulate_program",
        families=["grid"],
        ns=[30],
        seeds=[0, 1, 2, 3],
        program=["bfs"],
        profile=["fast"],
    )
    base = run_sweep(sweep)
    bounded = run_sweep(sweep, batch=4, batch_waste=1.5)
    assert bounded.records == base.records
    # The flag was exported only for the sweep's duration.
    assert os.environ[WASTE_ENV_VAR] == "3.0"
