"""Remote socket backend: handshake, dispatch, requeue (repro.runtime.remote)."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.runtime import (
    JobSpec,
    RemoteBackend,
    RemoteWorkerError,
    ResultCache,
    SerialBackend,
    make_backend,
    run_jobs,
)
from repro.runtime.codec import (
    STATS,
    encode_wire_frame,
    read_wire_frame,
)
from repro.runtime.remote import (
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    parse_endpoint,
)
from repro.runtime.worker import serve_remote

SPECS = [
    JobSpec.make("test_planarity", family="grid", n=36, seed=seed,
                 epsilon=epsilon)
    for seed in (0, 1)
    for epsilon in (0.5, 0.25)
]


def _start_workers(port, count=1, store_dir=None):
    threads = [
        threading.Thread(
            target=serve_remote,
            args=("127.0.0.1", port),
            kwargs={"store_dir": store_dir, "retry_seconds": 10.0},
            daemon=True,
        )
        for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


def _join(threads, timeout=15.0):
    for thread in threads:
        thread.join(timeout)
        assert not thread.is_alive(), "worker did not exit after the batch"


def test_parse_endpoint():
    assert parse_endpoint("127.0.0.1:7341") == ("127.0.0.1", 7341)
    assert parse_endpoint("host.example:0") == ("host.example", 0)
    with pytest.raises(ValueError):
        parse_endpoint("7341")
    with pytest.raises(ValueError):
        parse_endpoint("host:port")


def test_make_backend_registry_includes_remote():
    backend = make_backend("remote", port=0)
    assert isinstance(backend, RemoteBackend)


def test_remote_matches_serial():
    backend = RemoteBackend(port=0)
    port = backend.bind()
    workers = _start_workers(port, count=2)
    remote = run_jobs(SPECS, backend=backend)
    _join(workers)
    serial = run_jobs(SPECS, backend=SerialBackend())
    assert remote.records == serial.records


def test_workers_share_store_and_records_land_once(tmp_path):
    """Same acceptance as the async backend: one line per record, and
    a fresh resume run is a pure merge."""
    store_dir = tmp_path / "shared"
    backend = RemoteBackend(port=0, store_dir=str(store_dir))
    port = backend.bind()
    cache = ResultCache(disk_dir=store_dir)
    workers = _start_workers(port, count=2, store_dir=str(store_dir))
    batch = run_jobs(SPECS, backend=backend, cache=cache)
    _join(workers)
    assert batch.executed == len(SPECS)
    from repro.runtime.store import count_record_entries

    # One physical entry per record, not two.
    assert count_record_entries(store_dir) == len(SPECS)
    rerun = run_jobs(SPECS, cache=ResultCache(disk_dir=store_dir))
    assert rerun.executed == 0
    assert rerun.records == batch.records


def test_handshake_rejects_legacy_json_worker():
    """A protocol-1 worker opens with a JSON line; the server must
    answer in JSON (the only dialect it can read) and name the
    protocol mismatch before closing."""
    backend = RemoteBackend(port=0)
    port = backend.bind()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS[:1], backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    reader = sock.makefile("rb")
    sock.sendall(
        encode_frame(
            {"op": "hello", "protocol": 1, "kinds": [], "store": None}
        )
    )
    reject = decode_frame(reader.readline())
    sock.close()
    assert reject["op"] == "reject"
    assert "protocol mismatch" in reject["reason"]
    # A conforming worker still completes the batch afterwards.
    workers = _start_workers(port)
    consumer.join(15)
    assert not consumer.is_alive()
    _join(workers)
    assert len(holder["batch"].records) == 1


def test_handshake_rejects_protocol_mismatch():
    backend = RemoteBackend(port=0)
    port = backend.bind()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS[:1], backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    reader = sock.makefile("rb")
    sock.sendall(
        encode_wire_frame(
            {"op": "hello", "protocol": 999, "kinds": [], "store": None}
        )
    )
    reject = read_wire_frame(reader)
    sock.close()
    assert reject["op"] == "reject"
    assert "protocol mismatch" in reject["reason"]
    # A conforming worker still completes the batch afterwards.
    workers = _start_workers(port)
    consumer.join(15)
    assert not consumer.is_alive()
    _join(workers)
    assert len(holder["batch"].records) == 1


def test_handshake_rejects_missing_kinds():
    backend = RemoteBackend(port=0)
    port = backend.bind()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS[:1], backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    reader = sock.makefile("rb")
    sock.sendall(
        encode_wire_frame(
            {
                "op": "hello",
                "protocol": PROTOCOL_VERSION,
                "kinds": ["some_other_kind"],
                "store": None,
            }
        )
    )
    reject = read_wire_frame(reader)
    sock.close()
    assert reject["op"] == "reject"
    assert "missing job kinds" in reject["reason"]
    workers = _start_workers(port)
    consumer.join(15)
    assert not consumer.is_alive()
    _join(workers)


def test_handshake_rejects_store_mismatch(tmp_path):
    backend = RemoteBackend(port=0, store_dir=str(tmp_path / "server-store"))
    port = backend.bind()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS[:1], backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    reader = sock.makefile("rb")
    sock.sendall(
        encode_wire_frame(
            {
                "op": "hello",
                "protocol": PROTOCOL_VERSION,
                "kinds": ["test_planarity"],
                "store": str(tmp_path / "other-store"),
            }
        )
    )
    reject = read_wire_frame(reader)
    sock.close()
    assert reject["op"] == "reject"
    assert "store mismatch" in reject["reason"]
    workers = _start_workers(port, store_dir=str(tmp_path / "server-store"))
    consumer.join(15)
    assert not consumer.is_alive()
    _join(workers)


def test_killed_worker_requeues_its_job():
    """A worker that dies mid-job never loses it: the job is requeued
    and a surviving worker completes the batch."""
    backend = RemoteBackend(port=0)
    port = backend.bind()
    got_job = threading.Event()

    def doomed_worker():
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        reader = sock.makefile("rb")
        sock.sendall(
            encode_wire_frame(
                {
                    "op": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "kinds": ["test_planarity"],
                    "store": None,
                    "pid": 0,
                }
            )
        )
        assert read_wire_frame(reader)["op"] == "welcome"
        job = read_wire_frame(reader)
        assert job["op"] == "job"
        got_job.set()
        sock.close()  # die without answering: the server must requeue

    doomed = threading.Thread(target=doomed_worker, daemon=True)
    doomed.start()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS, backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    assert got_job.wait(10), "doomed worker never received a job"
    survivors = _start_workers(port)
    consumer.join(30)
    assert not consumer.is_alive()
    _join(survivors)
    serial = run_jobs(SPECS, backend=SerialBackend())
    assert holder["batch"].records == serial.records


def test_worker_job_error_propagates():
    backend = RemoteBackend(port=0)
    port = backend.bind()
    invalid = JobSpec(
        kind="test_planarity", family="grid", n=36, seed=0,
        config=(("epsilon", -1.0),),
    )
    workers = _start_workers(port)
    with pytest.raises(RemoteWorkerError, match="failed on"):
        run_jobs([SPECS[0], invalid], backend=backend)
    _join(workers)


def test_late_worker_completes_waiting_jobs():
    """Jobs queue while no worker is connected; a late joiner drains
    them (fleet elasticity)."""
    backend = RemoteBackend(port=0)
    port = backend.bind()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS[:2], backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    time.sleep(0.5)  # batch is underway with zero workers
    assert consumer.is_alive()
    workers = _start_workers(port)
    consumer.join(30)
    assert not consumer.is_alive()
    _join(workers)
    assert len(holder["batch"].records) == 2


def test_abort_wakes_a_blocked_stream():
    """Abandoning a batch mid-flight (ctrl-C, downstream error: the
    generator's finally calls _request_abort) must not hang on the
    server thread even with jobs queued and zero workers connected."""
    backend = RemoteBackend(port=0)
    backend.bind()
    holder = {}

    def consume():
        holder["batch"] = run_jobs(SPECS, backend=backend)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    time.sleep(0.5)  # blocked: jobs pending, no worker will ever join
    assert consumer.is_alive()
    backend._request_abort()
    consumer.join(10)
    assert not consumer.is_alive(), "abort did not wake the serve loop"
    assert len(holder["batch"].records) == 0
    # The listen socket is released for the next run.
    assert backend.bound_port is None


def test_storeless_adoption_requires_initialized_store(tmp_path):
    from repro.runtime.worker import _adopt_store

    # A path the server never initialized (no store.json): adoption
    # must fail rather than forking a fresh local store that the
    # orchestrator will never read.
    assert _adopt_store(str(tmp_path / "never-created")) is None
    # The server's bound store is adoptable once its root exists.
    backend = RemoteBackend(port=0, store_dir=str(tmp_path / "real"))
    port = backend.bind()
    workers = _start_workers(port, count=1)
    batch = run_jobs(SPECS[:1], backend=backend)
    _join(workers)
    assert len(batch.records) == 1
    assert _adopt_store(str(tmp_path / "real")) is not None


def test_server_appends_result_bytes_without_reencode(tmp_path):
    """Zero-copy pin: with storeless workers, the orchestrator appends
    each worker's result *bytes* to the store verbatim.  Workers run
    in-process here, so ``codec.STATS`` sees both sides: per job there
    is exactly one spec encode (server), one spec decode (worker), one
    record encode (worker), and one record decode (server, for the
    consumer stream).  A server that re-encoded for the store append,
    or decoded twice, breaks the exact count."""
    store_dir = tmp_path / "server-store"
    backend = RemoteBackend(port=0, store_dir=str(store_dir))
    port = backend.bind()
    cache = ResultCache(disk_dir=store_dir)  # keys ride to the server
    # Workers do NOT share the store: every result rides the wire and
    # the server persists it (stored=False) via put_raw.
    workers = _start_workers(port, count=2, store_dir=None)
    encoded_before = STATS.encoded_records
    decoded_before = STATS.decoded_records
    batch = run_jobs(SPECS, backend=backend, cache=cache)
    _join(workers)
    assert batch.executed == len(SPECS)
    assert STATS.encoded_records - encoded_before == 2 * len(SPECS)
    assert STATS.decoded_records - decoded_before == 2 * len(SPECS)
    # The spliced bytes decode back to exactly what the workers sent.
    from repro.runtime.cache import KeyDeriver
    from repro.runtime.store import ShardedStore

    store = ShardedStore(store_dir)
    deriver = KeyDeriver()
    for spec, record in zip(SPECS, batch.records):
        assert store.get(deriver.key_for(spec)) == record


def test_worker_reports_seconds_for_executed_jobs():
    backend = RemoteBackend(port=0)
    port = backend.bind()
    workers = _start_workers(port)
    seen = []
    for _index, _record, seconds in backend.run_stream(
        SPECS[:2], keys=None
    ):
        seen.append(seconds)
    _join(workers)
    assert len(seen) == 2
    assert all(value is not None and value >= 0 for value in seen)
