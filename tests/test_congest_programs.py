"""Tests for the distributed node programs (flood, BFS, BE, CV, checks)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.programs import (
    bfs_tree,
    cole_vishkin_coloring,
    flood_eccentricity,
    run_bipartite_check_simulated,
    run_cycle_check_simulated,
    run_forest_decomposition_simulated,
)
from repro.congest.programs.cole_vishkin import cv_schedule, cv_step_value
from repro.congest.programs.forest_decomposition import (
    barenboim_elkin_round_budget,
)


class TestFlood:
    def test_matches_eccentricity(self, small_grid):
        ecc, dists = flood_eccentricity(small_grid, 0)
        assert ecc == nx.eccentricity(small_grid, 0)
        assert dists == nx.single_source_shortest_path_length(small_grid, 0)

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        ecc, dists = flood_eccentricity(graph, 0)
        assert ecc == 0 and dists == {0: 0}


class TestBFS:
    def test_depths_match_networkx(self, small_tri_grid):
        _parents, depths, _rounds = bfs_tree(small_tri_grid, 0)
        assert depths == nx.single_source_shortest_path_length(small_tri_grid, 0)

    def test_parents_one_level_up(self, small_grid):
        parents, depths, _ = bfs_tree(small_grid, 0)
        for child, parent in parents.items():
            assert depths[child] == depths[parent] + 1
            assert small_grid.has_edge(child, parent)

    def test_parent_is_min_id_neighbor(self, small_grid):
        parents, depths, _ = bfs_tree(small_grid, 0)
        for child, parent in parents.items():
            candidates = [
                w
                for w in small_grid.neighbors(child)
                if depths[w] == depths[child] - 1
            ]
            assert parent == min(candidates)

    def test_rounds_close_to_eccentricity(self, small_grid):
        _p, _d, rounds = bfs_tree(small_grid, 0)
        assert rounds <= nx.eccentricity(small_grid, 0) + 3


class TestBarenboimElkin:
    def test_budget_grows_logarithmically(self):
        assert barenboim_elkin_round_budget(1) == 1
        assert barenboim_elkin_round_budget(2**16) < (
            2 * barenboim_elkin_round_budget(2**8)
        )

    def test_succeeds_on_planar(self, planar_zoo):
        for name, graph in planar_zoo:
            fd = run_forest_decomposition_simulated(graph, alpha=3)
            assert fd.success, name

    def test_orientation_covers_all_edges_once(self, small_tri_grid):
        fd = run_forest_decomposition_simulated(small_tri_grid, alpha=3)
        oriented = set(fd.orientation_edges())
        assert len(oriented) == small_tri_grid.number_of_edges()
        for u, v in small_tri_grid.edges():
            assert ((u, v) in oriented) != ((v, u) in oriented)

    def test_out_degree_bounded(self, small_apollonian):
        fd = run_forest_decomposition_simulated(small_apollonian, alpha=3)
        assert max(len(o) for o in fd.out_neighbors.values()) <= 9

    def test_orientation_acyclic(self, small_apollonian):
        fd = run_forest_decomposition_simulated(small_apollonian, alpha=3)
        dg = nx.DiGraph(fd.orientation_edges())
        assert nx.is_directed_acyclic_graph(dg)

    def test_rejects_dense_graph(self):
        fd = run_forest_decomposition_simulated(nx.complete_graph(14), alpha=1)
        assert not fd.success
        assert len(fd.rejecting_nodes) == 14

    def test_k5_passes_alpha3(self, k5):
        # K5 has arboricity exactly 3: the check cannot reject it.
        fd = run_forest_decomposition_simulated(k5, alpha=3)
        assert fd.success


class TestColeVishkin:
    def test_cv_step_differs_from_parent(self):
        for own, parent in [(5, 9), (1, 2), (1023, 511)]:
            a = cv_step_value(own, parent)
            b = cv_step_value(parent, own)
            # values computed from the two endpoints of an edge differ
            assert isinstance(a, int)
            assert a != b or own == parent

    def test_cv_step_requires_difference(self):
        with pytest.raises(ValueError):
            cv_step_value(7, 7)

    def test_schedule_ends_with_eliminations(self):
        schedule = cv_schedule(10**6)
        assert schedule[-6:] == ["shift", "elim5", "shift", "elim4", "shift", "elim3"]

    def test_schedule_length_log_star(self):
        # log*-type growth: huge inputs only need a few more iterations
        small = len(cv_schedule(100))
        huge = len(cv_schedule(2**64))
        assert huge <= small + 3

    def test_path_forest(self):
        graph = nx.path_graph(64)
        parents = {i: i - 1 if i > 0 else None for i in graph.nodes()}
        colors, _ = cole_vishkin_coloring(graph, parents)
        assert set(colors.values()) <= {0, 1, 2}
        assert all(colors[u] != colors[v] for u, v in graph.edges())

    def test_directed_cycle(self):
        graph = nx.cycle_graph(33)
        parents = {i: (i + 1) % 33 for i in graph.nodes()}
        colors, _ = cole_vishkin_coloring(graph, parents)
        assert set(colors.values()) <= {0, 1, 2}
        assert all(colors[u] != colors[v] for u, v in graph.edges())

    def test_star_forest(self):
        graph = nx.star_graph(20)
        parents = {i: 0 for i in range(1, 21)}
        parents[0] = None
        colors, _ = cole_vishkin_coloring(graph, parents)
        assert all(colors[i] != colors[0] for i in range(1, 21))

    def test_missing_parent_edge_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            cole_vishkin_coloring(graph, {0: 2, 1: None, 2: None})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 40), st.randoms(use_true_random=False))
    def test_random_pseudoforests(self, n, rnd):
        # Build a random functional graph (each node points somewhere else),
        # thin multi-edges by keeping one direction.
        parents = {}
        edges = set()
        for v in range(n):
            if rnd.random() < 0.15:
                parents[v] = None
                continue
            w = rnd.randrange(n - 1)
            w = w if w < v else w + 1
            if (w, v) in edges:  # edge exists in other direction already
                parents[v] = None
                continue
            parents[v] = w
            edges.add((v, w))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        colors, _ = cole_vishkin_coloring(graph, parents)
        assert set(colors.values()) <= {0, 1, 2}
        for v, w in edges:
            assert colors[v] != colors[w]


class TestPartChecks:
    def test_tree_accepted(self):
        tree = nx.random_labeled_tree(25, seed=3)
        assert run_cycle_check_simulated(tree, 0).accepted

    def test_cycle_rejected(self):
        assert not run_cycle_check_simulated(nx.cycle_graph(7), 0).accepted

    def test_even_cycle_bipartite(self):
        assert run_bipartite_check_simulated(nx.cycle_graph(8), 0).accepted

    def test_odd_cycle_not_bipartite(self):
        result = run_bipartite_check_simulated(nx.cycle_graph(9), 0)
        assert not result.accepted
        assert result.rejecting_nodes

    def test_grid_bipartite(self, small_grid):
        assert run_bipartite_check_simulated(small_grid, 0).accepted

    def test_tri_grid_not_bipartite(self, small_tri_grid):
        assert not run_bipartite_check_simulated(small_tri_grid, 0).accepted

    def test_disconnected_rejected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            run_cycle_check_simulated(graph, 0)

    def test_rounds_reported(self, small_grid):
        result = run_bipartite_check_simulated(small_grid, 0)
        assert result.rounds == result.bfs_rounds + result.check_rounds
        assert result.rounds > 0
