"""Tests for Stage II labels (BFS, ranks, Euler-tour corners) and the
violating-edge machinery."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.programs import bfs_tree
from repro.planarity import check_planarity, identity_rotation
from repro.testers import (
    count_violating,
    deterministic_bfs_tree,
    edges_interlace,
    embedding_ranks,
    non_tree_intervals,
    sample_and_detect,
    violating_mask,
    violating_mask_bruteforce,
)
from repro.testers.labels import corner_intervals, euler_tour_positions


class TestDeterministicBFS:
    def test_matches_distributed_protocol(self, small_tri_grid):
        """The emulated BFS must equal the simulated CONGEST BFS exactly."""
        sim_parents, sim_depths, _ = bfs_tree(small_tri_grid, 0)
        emu_parents, emu_depths = deterministic_bfs_tree(small_tri_grid, 0)
        assert emu_depths == sim_depths
        assert {v: p for v, p in emu_parents.items() if p is not None} == sim_parents

    def test_disconnected_rejected(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        from repro.errors import GraphInputError

        with pytest.raises(GraphInputError):
            deterministic_bfs_tree(graph, 0)


class TestEmbeddingRanks:
    def test_root_rank_zero(self, small_grid):
        emb = check_planarity(small_grid).embedding
        parents, _ = deterministic_bfs_tree(small_grid, 0)
        ranks = embedding_ranks(small_grid, 0, emb, parents)
        assert ranks[0] == 0
        assert sorted(ranks.values()) == list(range(small_grid.number_of_nodes()))

    def test_parents_before_children(self, small_apollonian):
        emb = check_planarity(small_apollonian).embedding
        parents, _ = deterministic_bfs_tree(small_apollonian, 0)
        ranks = embedding_ranks(small_apollonian, 0, emb, parents)
        for child, parent in parents.items():
            if parent is not None:
                assert ranks[parent] < ranks[child]


class TestEulerTourPositions:
    def test_position_count(self, planar_zoo):
        for name, graph in planar_zoo:
            emb = check_planarity(graph).embedding
            parents, _ = deterministic_bfs_tree(graph, 0)
            positions, total = euler_tour_positions(graph, 0, emb, parents)
            non_tree = graph.number_of_edges() - (graph.number_of_nodes() - 1)
            assert len(positions) == 2 * non_tree, name
            assert total == 2 * non_tree, name
            assert sorted(positions.values()) == list(range(total)), name

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        emb = check_planarity(graph).embedding
        positions, total = euler_tour_positions(graph, 0, emb, {0: None})
        assert positions == {} and total == 0

    def test_tree_has_no_positions(self):
        tree = nx.random_labeled_tree(30, seed=2)
        emb = check_planarity(tree).embedding
        parents, _ = deterministic_bfs_tree(tree, 0)
        positions, total = euler_tour_positions(tree, 0, emb, parents)
        assert total == 0

    def test_works_with_identity_rotation(self, k5):
        rot = identity_rotation(k5)
        parents, _ = deterministic_bfs_tree(k5, 0)
        positions, total = euler_tour_positions(k5, 0, rot, parents)
        assert total == 2 * (10 - 4)


class TestClaimTen:
    """The completeness side of Stage II.

    * Corner criterion: planar embedding => zero violating edges (the
      property our tester's one-sided error rests on).
    * Preorder criterion (the paper's literal Definition 7 labels): NOT
      complete -- the 3x3 grid is a counterexample, pinned here.
    """

    def test_corner_criterion_complete_on_planar(self, planar_zoo):
        for name, graph in planar_zoo:
            emb = check_planarity(graph).embedding
            parents, _ = deterministic_bfs_tree(graph, 0)
            positions, total = euler_tour_positions(graph, 0, emb, parents)
            intervals = [
                (a, b)
                for a, b, _u, _v in corner_intervals(graph, parents, positions)
            ]
            assert count_violating(intervals, universe=total) == 0, name

    def test_preorder_criterion_incomplete_on_3x3_grid(self):
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        emb = check_planarity(graph).embedding
        parents, _ = deterministic_bfs_tree(graph, 0)
        ranks = embedding_ranks(graph, 0, emb, parents)
        intervals = [
            (a, b)
            for a, b, _u, _v in non_tree_intervals(graph, parents, ranks)
        ]
        # the paper-literal criterion flags violations on a planar graph
        assert count_violating(intervals, universe=9) > 0

    def test_corner_criterion_fine_on_3x3_grid(self):
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        emb = check_planarity(graph).embedding
        parents, _ = deterministic_bfs_tree(graph, 0)
        positions, total = euler_tour_positions(graph, 0, emb, parents)
        intervals = [
            (a, b)
            for a, b, _u, _v in corner_intervals(graph, parents, positions)
        ]
        assert count_violating(intervals, universe=total) == 0

    def test_far_graphs_have_many_violations(self, far_zoo):
        """Corollary 9 (corner form): gamma-far => >= gamma*m violating."""
        for name, graph, certified in far_zoo:
            rot = identity_rotation(graph)
            parents, _ = deterministic_bfs_tree(graph, 0)
            positions, total = euler_tour_positions(graph, 0, rot, parents)
            intervals = [
                (a, b)
                for a, b, _u, _v in corner_intervals(graph, parents, positions)
            ]
            violating = count_violating(intervals, universe=total)
            m = graph.number_of_edges()
            assert violating >= certified * m - 1e-9, (name, violating, certified * m)


class TestInterlacement:
    def test_basic_predicate(self):
        assert edges_interlace((1, 5), (3, 8))
        assert edges_interlace((3, 8), (1, 5))  # order-insensitive
        assert not edges_interlace((1, 5), (6, 8))  # disjoint
        assert not edges_interlace((1, 8), (3, 5))  # nested
        assert not edges_interlace((1, 5), (5, 8))  # shared endpoint

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 49), st.integers(0, 49)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=40,
        )
    )
    def test_fenwick_matches_bruteforce(self, raw):
        intervals = [(min(a, b), max(a, b)) for a, b in raw]
        fast = violating_mask(intervals, universe=50)
        slow = violating_mask_bruteforce(intervals)
        assert fast == slow

    def test_count_empty(self):
        assert count_violating([], universe=10) == 0


class TestSampling:
    def test_no_intervals(self):
        outcome = sample_and_detect([], 5, random.Random(0))
        assert not outcome.detected
        assert outcome.sampled == 0

    def test_full_sampling_detects(self):
        intervals = [(0, 2), (1, 3)]  # interlacing pair
        outcome = sample_and_detect(intervals, 10, random.Random(0))
        assert outcome.detected
        assert outcome.witness is not None

    def test_no_violation_no_detection(self):
        intervals = [(0, 1), (2, 3), (4, 9)]
        outcome = sample_and_detect(intervals, 10, random.Random(0))
        assert not outcome.detected

    def test_sampling_probability_reasonable(self):
        intervals = [(i, i + 100) for i in range(0, 400, 2)]  # massively interlacing
        detected = sum(
            sample_and_detect(intervals, 5, random.Random(seed)).detected
            for seed in range(20)
        )
        assert detected == 20  # any sample hits (all edges are violating)

    def test_truncation_cap(self):
        intervals = [(2 * i, 2 * i + 1) for i in range(1000)]
        outcome = sample_and_detect(intervals, 1, random.Random(3))
        assert outcome.sampled <= 4  # cap = 4 * s

    def test_zero_target(self):
        outcome = sample_and_detect([(0, 2), (1, 3)], 0, random.Random(0))
        assert not outcome.detected
