"""Unit + property tests for DisjointSets and FenwickTree."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.structures import DisjointSets, FenwickTree


class TestDisjointSets:
    def test_singletons_are_distinct(self):
        ds = DisjointSets(range(5))
        for i in range(5):
            for j in range(i + 1, 5):
                assert not ds.connected(i, j)

    def test_union_connects(self):
        ds = DisjointSets()
        ds.union(1, 2)
        ds.union(2, 3)
        assert ds.connected(1, 3)
        assert not ds.connected(1, 4)

    def test_union_returns_root(self):
        ds = DisjointSets()
        root = ds.union("a", "b")
        assert ds.find("a") == root
        assert ds.find("b") == root

    def test_lazy_add_on_find(self):
        ds = DisjointSets()
        assert ds.find(42) == 42
        assert 42 in ds

    def test_union_idempotent(self):
        ds = DisjointSets()
        r1 = ds.union(1, 2)
        r2 = ds.union(1, 2)
        assert r1 == r2

    def test_groups_partition_elements(self):
        ds = DisjointSets(range(6))
        ds.union(0, 1)
        ds.union(2, 3)
        groups = ds.groups()
        sizes = sorted(len(g) for g in groups.values())
        assert sizes == [1, 1, 2, 2]
        assert sorted(x for g in groups.values() for x in g) == list(range(6))

    def test_len_and_iter(self):
        ds = DisjointSets("abc")
        assert len(ds) == 3
        assert sorted(ds) == ["a", "b", "c"]

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    def test_matches_naive_connectivity(self, unions):
        ds = DisjointSets(range(21))
        naive = {i: {i} for i in range(21)}
        for a, b in unions:
            ds.union(a, b)
            merged = naive[a] | naive[b]
            for x in merged:
                naive[x] = merged
        for i in range(21):
            for j in range(i + 1, 21):
                assert ds.connected(i, j) == (j in naive[i])


class TestFenwickTree:
    def test_empty_total(self):
        assert FenwickTree(10).total() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_out_of_range_add(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(4)
        with pytest.raises(IndexError):
            tree.add(-1)

    def test_prefix_sums(self):
        tree = FenwickTree(8)
        for i in range(8):
            tree.add(i, i)
        assert tree.prefix_sum(3) == 0 + 1 + 2 + 3
        assert tree.prefix_sum(-1) == 0
        assert tree.prefix_sum(100) == sum(range(8))

    def test_range_sum_empty_range(self):
        tree = FenwickTree(5)
        tree.add(2, 7)
        assert tree.range_sum(3, 2) == 0

    @given(
        st.lists(st.tuples(st.integers(0, 31), st.integers(-5, 5)), max_size=80),
        st.integers(0, 31),
        st.integers(0, 31),
    )
    def test_matches_naive_array(self, updates, lo, hi):
        tree = FenwickTree(32)
        naive = [0] * 32
        for index, delta in updates:
            tree.add(index, delta)
            naive[index] += delta
        assert tree.range_sum(lo, hi) == sum(naive[lo : hi + 1])
        assert tree.total() == sum(naive)
