"""Differential suite: dense vs legacy applications/spanner engines.

The dense engine's contract is *bit identity* with the legacy walk:
``build_spanner`` must produce the same ``SpannerResult`` (tree and
connector counts, guaranteed stretch, edge set, size, rounds),
``measure_stretch`` the same worst-ratio float (same RNG sample), and
the Corollary 16 application testers the same verdicts (accepted,
rejecting parts, round counts) -- across every bundled planar and
far-from-planar generator, for both the deterministic and the seeded
randomized partition method.
"""

from __future__ import annotations

import pytest

import networkx as nx

from repro.applications import DenseSpanner, build_spanner, measure_stretch
from repro.errors import GraphInputError
from repro.graphs.far_from_planar import FAR_FAMILIES, make_far
from repro.graphs.generators import PLANAR_FAMILIES, make_planar
from repro.testers.applications import (
    test_bipartiteness as run_bipartiteness,
    test_cycle_freeness as run_cycle_freeness,
)

N = 36

FAMILIES = sorted(PLANAR_FAMILIES) + sorted(FAR_FAMILIES)

METHODS = ("deterministic", "randomized")


@pytest.fixture(scope="module")
def zoo():
    graphs = {}
    for family in sorted(PLANAR_FAMILIES):
        graphs[family] = make_planar(family, N, seed=0)
    for family in sorted(FAR_FAMILIES):
        graphs[family], _farness = make_far(family, N, seed=0)
    return graphs


def edge_set(result):
    if result.dense is not None:
        return {frozenset(e) for e in result.dense.edges()}
    return {frozenset(e) for e in result.spanner.edges()}


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("family", FAMILIES)
def test_spanner_bit_identical(family, method, zoo):
    graph = zoo[family]
    legacy = build_spanner(graph, method=method, seed=7, engine="legacy")
    dense = build_spanner(graph, method=method, seed=7, engine="dense")
    assert legacy.dense is None
    assert isinstance(dense.dense, DenseSpanner)
    assert dense.tree_edges == legacy.tree_edges
    assert dense.connector_edges == legacy.connector_edges
    assert dense.guaranteed_stretch == legacy.guaranteed_stretch
    assert dense.size == legacy.size
    assert dense.rounds == legacy.rounds
    assert (
        dense.partition_result.success == legacy.partition_result.success
    )
    assert edge_set(dense) == edge_set(legacy)
    # The lazy networkx materialization matches the legacy graph.
    materialized = dense.spanner
    assert set(materialized.nodes()) == set(legacy.spanner.nodes())
    assert {frozenset(e) for e in materialized.edges()} == edge_set(legacy)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("family", FAMILIES)
def test_stretch_bit_identical(family, method, zoo):
    graph = zoo[family]
    legacy = build_spanner(graph, method=method, seed=7, engine="legacy")
    dense = build_spanner(graph, method=method, seed=7, engine="dense")
    want = measure_stretch(graph, legacy.spanner, sample_nodes=6, seed=3,
                           engine="legacy")
    # Dense engine, dense spanner input (the fast path).
    assert measure_stretch(graph, dense.dense, sample_nodes=6, seed=3,
                           engine="dense") == want
    # Dense engine, networkx spanner input (compiled on the fly).
    assert measure_stretch(graph, legacy.spanner, sample_nodes=6, seed=3,
                           engine="dense") == want
    # Auto resolution picks dense here; still the same float.
    assert measure_stretch(graph, dense.dense, sample_nodes=6, seed=3) == want
    # Exhaustive sampling (>= n sources) agrees too.
    assert measure_stretch(
        graph, dense.dense, sample_nodes=10**6, seed=3, engine="dense"
    ) == measure_stretch(
        graph, legacy.spanner, sample_nodes=10**6, seed=3, engine="legacy"
    )


@pytest.mark.parametrize("check", ("cycle", "bipartite"))
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("family", FAMILIES)
def test_application_verdicts_identical(family, method, check, zoo):
    graph = zoo[family]
    runner = run_cycle_freeness if check == "cycle" else run_bipartiteness
    legacy = runner(graph, method=method, seed=11, engine="legacy")
    dense = runner(graph, method=method, seed=11, engine="dense")
    assert dense.accepted == legacy.accepted
    assert dense.rejecting_parts == legacy.rejecting_parts
    assert dense.partition_rounds == legacy.partition_rounds
    assert dense.verification_rounds == legacy.verification_rounds
    assert dense.rounds == legacy.rounds


def test_bfs_fallback_matches_scipy_path():
    """The numpy level-synchronous BFS == the scipy C BFS (same hops)."""
    import numpy as np

    from repro.applications.dense import (
        _level_synchronous_distances,
        multi_source_distances,
    )
    from repro.congest.topology import compile_topology

    graph = nx.disjoint_union(
        make_planar("delaunay", 40, seed=2), nx.empty_graph(3)
    )
    arrays = compile_topology(graph).batch_arrays()
    sources = np.asarray([0, 5, 41], dtype=np.int64)
    n = graph.number_of_nodes()
    fast = multi_source_distances(
        arrays.indptr, arrays.indices, arrays.degrees, sources, n
    )
    slow = _level_synchronous_distances(
        arrays.indptr, arrays.indices, arrays.degrees, sources, n
    )
    assert (fast == slow).all()
    assert (fast[:, -1] == -1).all()  # isolated tail nodes unreachable


def test_explicit_dense_rejects_unsupported_labels():
    graph = nx.relabel_nodes(nx.path_graph(6), lambda v: f"v{v}")
    with pytest.raises(ValueError, match="dense"):
        build_spanner(graph, engine="dense")
    # Auto falls back to the legacy engine and succeeds.
    result = build_spanner(graph)
    assert result.dense is None
    assert result.size == 5


def test_dense_stretch_requires_spanning_subgraph():
    graph = make_planar("grid", 25)
    broken = nx.Graph()
    broken.add_nodes_from(graph.nodes())  # no edges: spans nothing
    with pytest.raises(GraphInputError):
        measure_stretch(graph, broken, sample_nodes=4, seed=0, engine="dense")
    with pytest.raises(GraphInputError):
        measure_stretch(graph, broken, sample_nodes=4, seed=0, engine="legacy")


def test_dense_stretch_node_mismatch_falls_back():
    graph = make_planar("grid", 25)
    spanner = build_spanner(graph, engine="legacy").spanner.copy()
    spanner.add_node(10**9)  # extra node: not the input node set
    want = measure_stretch(graph, spanner, sample_nodes=4, seed=0,
                           engine="legacy")
    # Auto detects the mismatch and quietly uses the legacy fold.
    assert measure_stretch(graph, spanner, sample_nodes=4, seed=0) == want
    with pytest.raises(ValueError, match="node set"):
        measure_stretch(graph, spanner, sample_nodes=4, seed=0,
                        engine="dense")
