"""Packed binary record codec: values, shapes, entries, wire frames.

Property tests pin the codec's contract: every JSON-model value --
including the corners JSON itself fumbles (NaN/inf floats, >64-bit
ints, unicode keys, deep nesting) -- round-trips bit-faithfully
through ``encode_record``/``decode_record``, shape definitions are
content-addressed (identical layouts hash identically in every
process), and the store-entry / wire-frame framings survive garbage,
torn tails, and concatenation.
"""

from __future__ import annotations

import io
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.codec import (
    ENTRY_HEADER_SIZE,
    FRAME_HEADER_SIZE,
    CodecError,
    CorruptEntry,
    ShapeRegistry,
    TruncatedEntry,
    UnknownShapeError,
    WireProtocolError,
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    encode_wire_frame,
    frame_shapes,
    pack_record_entry,
    pack_shape_entry,
    parse_frame_header,
    read_entry,
    read_uvarint,
    read_wire_frame,
    resync,
    scan_entries,
    shape_of_payload,
    write_uvarint,
)

# -- strategies ---------------------------------------------------------------

# The JSON value model the codec mirrors, plus the corners JSONL could
# not represent: NaN/inf floats, arbitrary-precision ints, bytes.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: exercises i/q columns AND bigint varlen
    st.floats(allow_nan=True, allow_infinity=True),  # bit-exact, incl. NaN
    st.text(max_size=40),  # unicode, also 64-char hex via T_HEX32 below
    st.binary(max_size=40),
    st.sampled_from(["a" * 64, "0123456789abcdef" * 4]),  # T_HEX32 packing
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=12), children, max_size=4),
    ),
    max_leaves=12,
)

_records = st.dictionaries(st.text(min_size=1, max_size=16), _values,
                           min_size=0, max_size=8)


def _canon(value):
    """Equality helper: floats by bit pattern (NaN == NaN), tuples as
    lists -- exactly the identifications the codec makes."""
    if isinstance(value, float):
        return ("f64", struct.pack("<d", value))
    if isinstance(value, bool) or value is None or isinstance(value, int):
        return value
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, dict):
        return {key: _canon(item) for key, item in value.items()}
    return value


# -- varints ------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**200))
def test_uvarint_round_trip(value):
    out = bytearray()
    write_uvarint(out, value)
    decoded, pos = read_uvarint(bytes(out), 0)
    assert decoded == value
    assert pos == len(out)


def test_uvarint_truncation_raises():
    out = bytearray()
    write_uvarint(out, 1 << 40)
    with pytest.raises(TruncatedEntry):
        read_uvarint(bytes(out[:-1]), 0)


# -- generic values -----------------------------------------------------------


@given(_values)
def test_value_round_trip(value):
    out = bytearray()
    encode_value(value, out)
    decoded, pos = decode_value(bytes(out), 0)
    assert pos == len(out)
    assert _canon(decoded) == _canon(value)


def test_special_floats_are_bit_exact():
    for value in (float("nan"), float("inf"), float("-inf"), -0.0, 5e-324):
        out = bytearray()
        encode_value(value, out)
        decoded, _pos = decode_value(bytes(out), 0)
        assert struct.pack("<d", decoded) == struct.pack("<d", value)


def test_big_ints_survive():
    for value in (2**63, -(2**63) - 1, 10**50, -(10**50)):
        out = bytearray()
        encode_value(value, out)
        decoded, _pos = decode_value(bytes(out), 0)
        assert decoded == value and isinstance(decoded, int)


def test_hex32_strings_pack_to_half_size():
    digest = "deadbeef" * 8  # 64 lowercase hex chars
    packed = bytearray()
    encode_value(digest, packed)
    plain = bytearray()
    encode_value(digest.upper(), plain)  # not lowercase hex: generic str
    assert len(packed) < len(plain) / 1.8
    assert decode_value(bytes(packed), 0)[0] == digest


def test_non_string_dict_keys_rejected():
    with pytest.raises(CodecError):
        encode_value({1: "x"}, bytearray())


def test_unencodable_type_rejected():
    with pytest.raises(CodecError):
        encode_value(object(), bytearray())


# -- shape-packed records -----------------------------------------------------


@given(_records)
@settings(max_examples=200)
def test_record_round_trip(record):
    registry = ShapeRegistry()
    payload, shape = encode_record(record, registry)
    assert payload[:8] == shape.shape_id
    decoded = decode_record(payload, registry)
    assert _canon(decoded) == _canon(record)


def test_shapes_are_content_addressed_across_registries():
    record = {"n": 100, "seed": 7, "planar": True, "rounds": 12.5}
    a, b = ShapeRegistry(), ShapeRegistry()
    payload_a, shape_a = encode_record(record, a)
    payload_b, shape_b = encode_record(record, b)
    assert shape_a.shape_id == shape_b.shape_id
    assert payload_a == payload_b


def test_decode_without_shape_definition_raises():
    record = {"family": "grid", "n": 36}
    payload, shape = encode_record(record, ShapeRegistry())
    fresh = ShapeRegistry()
    assert shape_of_payload(payload, fresh) is None
    with pytest.raises(UnknownShapeError):
        decode_record(payload, fresh)
    fresh.register_block(shape.block)
    assert decode_record(payload, fresh) == record


def test_same_keys_different_codes_get_distinct_shapes():
    registry = ShapeRegistry()
    _p1, s1 = encode_record({"x": 1}, registry)
    _p2, s2 = encode_record({"x": 1.0}, registry)
    _p3, s3 = encode_record({"x": None}, registry)
    assert len({s1.shape_id, s2.shape_id, s3.shape_id}) == 3


@given(_records)
@settings(max_examples=50)
def test_shape_register_block_is_idempotent(record):
    registry = ShapeRegistry()
    _payload, shape = encode_record(record, registry)
    other = ShapeRegistry()
    first = other.register_block(shape.block)
    second = other.register_block(shape.block)
    assert first.shape_id == second.shape_id == shape.shape_id


# -- store entry framing ------------------------------------------------------


def _entry_stream(records, registry):
    """Concatenated shape + record entries, like one shard file."""
    blob = bytearray()
    seen = set()
    entries = []
    for i, record in enumerate(records):
        payload, shape = encode_record(record, registry)
        if shape.shape_id not in seen:
            seen.add(shape.shape_id)
            blob += pack_shape_entry(shape.block)
        entries.append((f"k{i}", float(i), payload))
        blob += pack_record_entry(f"k{i}", float(i), payload)
    return bytes(blob), entries


@given(st.lists(_records, min_size=1, max_size=6))
@settings(max_examples=50)
def test_entry_stream_scans_back(records):
    writer = ShapeRegistry()
    blob, expected = _entry_stream(records, writer)
    reader = ShapeRegistry()  # shapes travel inside the stream
    scanned, offset = scan_entries(blob, 0, len(blob), reader)
    assert offset == len(blob)
    assert [(e.key, e.stamp) for e in scanned] == [
        (key, stamp) for key, stamp, _payload in expected
    ]
    for entry, (_key, _stamp, payload) in zip(scanned, expected):
        start, end = entry.payload_slice
        assert blob[start:end] == payload
        assert _canon(decode_record(blob[start:end], reader)) == _canon(
            records[int(entry.key[1:])]
        )


def test_truncated_tail_stays_unscanned():
    registry = ShapeRegistry()
    blob, _expected = _entry_stream([{"a": 1}, {"a": 2}], registry)
    torn = blob[:-3]  # writer mid-append on the last entry
    reader = ShapeRegistry()
    scanned, offset = scan_entries(torn, 0, len(torn), reader)
    assert [e.key for e in scanned] == ["k0"]
    # the scan stops exactly at the torn entry so a later pass resumes
    complete = torn[:offset]
    rescan, _off = scan_entries(blob, offset, len(blob), reader)
    assert [e.key for e in rescan] == ["k1"]
    assert len(complete) == offset


def test_scan_resyncs_over_garbage():
    registry = ShapeRegistry()
    blob, _expected = _entry_stream([{"a": 1}], registry)
    dirty = b"\x00garbage\xff" + blob + b"\xa7junk" + blob
    reader = ShapeRegistry()
    scanned, _offset = scan_entries(dirty, 0, len(dirty), reader)
    assert [e.key for e in scanned] == ["k0", "k0"]


def test_read_entry_rejects_corrupt_header():
    registry = ShapeRegistry()
    blob, _expected = _entry_stream([{"a": 1}], registry)
    flipped = bytearray(blob)
    flipped[0] ^= 0xFF  # break the magic
    with pytest.raises(CorruptEntry):
        read_entry(bytes(flipped), 0, len(flipped), ShapeRegistry())


def test_resync_finds_entry_after_noise():
    registry = ShapeRegistry()
    blob, _expected = _entry_stream([{"a": 1}], registry)
    noisy = b"\x01\x02\x03" + blob
    assert resync(noisy, 0, len(noisy)) == 3
    assert resync(b"\x00" * 64, 0, 64) is None


# -- wire frames --------------------------------------------------------------


def test_wire_frame_round_trip_over_stream():
    frames = [
        {"op": "hello", "protocol": 2, "kinds": ["test"], "pid": 123},
        {"op": "job", "id": 0, "spec_pkd": b"\x00\x01", "key": None},
        {"op": "result", "id": 0, "record_pkd": b"\xff" * 10,
         "seconds": 0.25, "hit": False},
    ]
    stream = io.BytesIO(b"".join(encode_wire_frame(f) for f in frames))
    for frame in frames:
        assert read_wire_frame(stream) == frame
    assert read_wire_frame(stream) is None  # clean EOF at a boundary


def test_torn_wire_frame_raises():
    encoded = encode_wire_frame({"op": "ping"})
    with pytest.raises(WireProtocolError):
        read_wire_frame(io.BytesIO(encoded[:-1]))
    with pytest.raises(WireProtocolError):
        read_wire_frame(io.BytesIO(encoded[: FRAME_HEADER_SIZE - 2]))


def test_bad_frame_magic_raises():
    encoded = bytearray(encode_wire_frame({"op": "ping"}))
    encoded[0] ^= 0xFF
    with pytest.raises(WireProtocolError):
        parse_frame_header(bytes(encoded[:FRAME_HEADER_SIZE]))


def test_frame_shapes_dedups_per_connection():
    registry = ShapeRegistry()
    p1, s1 = encode_record({"a": 1}, registry)
    p2, s2 = encode_record({"a": 2}, registry)  # same shape
    p3, s3 = encode_record({"b": "x"}, registry)  # new shape
    sent = set()
    first = frame_shapes(iter((p1,)), sent, registry)
    assert first == [s1.block]
    assert frame_shapes(iter((p2,)), sent, registry) == []
    assert frame_shapes(iter((p3,)), sent, registry) == [s3.block]
    assert frame_shapes(iter((p1, p3)), set(), registry) == [
        s1.block,
        s3.block,
    ]


@given(_records)
@settings(max_examples=50)
def test_frames_carry_arbitrary_records(record):
    # a record rides a frame as a value too (dump/debug paths)
    stream = io.BytesIO(encode_wire_frame({"record": record}))
    decoded = read_wire_frame(stream)
    assert _canon(decoded["record"]) == _canon(record)


def test_entry_header_size_constant_matches_struct():
    blob = pack_record_entry("k", 0.0, b"\x00" * 8)
    assert blob[:2] == b"\xa7R"
    assert len(blob) > ENTRY_HEADER_SIZE
