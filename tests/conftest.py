"""Shared fixtures for the test-suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import (
    grid_graph,
    make_far,
    make_planar,
    random_apollonian,
    triangulated_grid,
)


@pytest.fixture(scope="session")
def small_grid() -> nx.Graph:
    """A 6x6 grid (planar, bipartite, cycle-ful)."""
    return grid_graph(6, 6)


@pytest.fixture(scope="session")
def small_tri_grid() -> nx.Graph:
    """A triangulated 6x6 grid (planar, non-bipartite)."""
    return triangulated_grid(6, 6)


@pytest.fixture(scope="session")
def small_apollonian() -> nx.Graph:
    """A maximal planar graph on 40 nodes."""
    return random_apollonian(40, seed=7)


@pytest.fixture(scope="session")
def planar_zoo() -> list:
    """A list of (name, graph) pairs covering the planar families."""
    return [
        (fam, make_planar(fam, 90, seed=3))
        for fam in ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar", "tree")
    ]


@pytest.fixture(scope="session")
def far_zoo() -> list:
    """A list of (name, graph, certified farness) triples."""
    out = []
    for fam in ("gnp", "planted-k5", "planted-k33", "planar-plus"):
        graph, farness = make_far(fam, 120, seed=3)
        out.append((fam, graph, farness))
    return out


@pytest.fixture(scope="session")
def k5() -> nx.Graph:
    """The smallest non-planar clique."""
    return nx.complete_graph(5)


@pytest.fixture(scope="session")
def k33() -> nx.Graph:
    """The smallest non-planar bipartite graph."""
    return nx.complete_bipartite_graph(3, 3)
