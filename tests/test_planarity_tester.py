"""End-to-end tests for the Theorem 1 planarity tester."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import make_far, make_planar
from repro.testers import PlanarityTestConfig
from repro.testers import test_planarity as run_planarity
from repro.testers.stage2 import sample_size, Stage2Config


class TestOneSidedError:
    """Planar graphs must be accepted with probability 1 (Claim 3 + the
    corner-criterion Claim 10)."""

    @pytest.mark.parametrize(
        "family", ["grid", "tri-grid", "apollonian", "delaunay", "outerplanar", "tree"]
    )
    def test_planar_always_accepted(self, family):
        for seed in range(4):
            graph = make_planar(family, 150, seed=seed)
            result = run_planarity(graph, epsilon=0.15, seed=seed)
            assert result.accepted, (family, seed, result.rejected_stage)
            assert result.rejected_stage is None
            assert not result.rejecting_parts

    def test_planar_accepted_across_epsilons(self):
        graph = make_planar("delaunay", 200, seed=1)
        for eps in (0.5, 0.2, 0.08):
            assert run_planarity(graph, epsilon=eps, seed=0).accepted

    def test_small_planar_graphs(self):
        for builder in (
            lambda: nx.path_graph(2),
            lambda: nx.cycle_graph(3),
            nx.dodecahedral_graph,
            lambda: nx.wheel_graph(10),
        ):
            graph = nx.convert_node_labels_to_integers(builder())
            assert run_planarity(graph, epsilon=0.3, seed=0).accepted

    def test_disconnected_planar(self):
        graph = nx.union(
            nx.cycle_graph(10),
            nx.relabel_nodes(nx.cycle_graph(10), {i: i + 20 for i in range(10)}),
        )
        assert run_planarity(graph, epsilon=0.3, seed=0).accepted


class TestDetection:
    def test_far_families_rejected(self, far_zoo):
        for name, graph, certified in far_zoo:
            eps = min(0.3, max(0.05, certified * 0.9))
            rejected = sum(
                not run_planarity(graph, epsilon=eps, seed=seed).accepted
                for seed in range(5)
            )
            assert rejected == 5, (name, rejected)

    def test_stage1_rejection_reports_evidence(self):
        graph, _ = make_far("gnp", 150, seed=1)
        result = run_planarity(graph, epsilon=0.2, seed=0)
        assert not result.accepted
        assert result.rejected_stage == "stage1"
        assert result.rejecting_parts

    def test_stage2_rejection_on_planted_minors(self):
        graph, certified = make_far("planted-k5", 200, seed=2)
        result = run_planarity(graph, epsilon=min(0.2, certified), seed=0)
        assert not result.accepted
        assert result.rejected_stage == "stage2"
        reasons = {v.reason for v in result.part_verdicts if not v.accepted}
        assert reasons <= {"violation", "density"}

    def test_k5_rejected_via_density_or_violation(self, k5):
        # K5 passes Stage I (arboricity 3); a single part of 5 nodes with
        # 10 > 3*5-6 = 9 edges fails the density check.
        result = run_planarity(k5, epsilon=0.3, seed=0)
        assert not result.accepted
        assert result.rejected_stage == "stage2"

    def test_nonplanar_but_not_far_may_accept(self):
        # one planted K5 in a large planar graph: distance ~1 edge; the
        # tester is allowed to accept -- just verify it does not crash and
        # reports coherent structure.
        graph, _ = make_far("planted-k5", 400, seed=3)
        result = run_planarity(graph, epsilon=0.5, seed=0)
        assert result.rounds > 0
        assert result.stage1.partition.size >= 1


class TestConfiguration:
    def test_exact_violation_analysis(self):
        graph, certified = make_far("planted-k5", 150, seed=4)
        config = PlanarityTestConfig(epsilon=0.1, collect_exact_violations=True)
        result = run_planarity(graph, seed=0, config=config)
        reasons = {v.reason for v in result.part_verdicts if not v.accepted}
        if "violation" in reasons:
            assert result.total_violating_exact is not None
            assert result.total_violating_exact > 0
        # parts that were analyzed carry a non-negative count
        for verdict in result.part_verdicts:
            if verdict.violating_exact is not None:
                assert verdict.violating_exact >= 0

    def test_reject_on_embedding_failure_mode(self, k33):
        config = PlanarityTestConfig(epsilon=0.3, reject_on_embedding_failure=True)
        result = run_planarity(k33, seed=0, config=config)
        assert not result.accepted

    def test_preorder_criterion_mode_runs(self):
        # The paper-literal criterion remains available (soundness holds;
        # completeness does not -- see test_labels_violations).
        graph, _ = make_far("planted-k5", 150, seed=5)
        config = PlanarityTestConfig(epsilon=0.1)
        config_s2 = config.stage2()
        assert config_s2.criterion == "corner"

    def test_rounds_split(self):
        graph = make_planar("grid", 150, seed=0)
        result = run_planarity(graph, epsilon=0.2, seed=0)
        assert result.rounds == result.stage1_rounds + result.stage2_rounds
        assert result.stage1_rounds > 0
        assert result.stage2_rounds > 0

    def test_seed_determinism(self):
        graph, _ = make_far("planted-k33", 150, seed=6)
        r1 = run_planarity(graph, epsilon=0.1, seed=7)
        r2 = run_planarity(graph, epsilon=0.1, seed=7)
        assert r1.accepted == r2.accepted
        assert r1.rounds == r2.rounds

    def test_empty_graph_rejected_input(self):
        with pytest.raises(ValueError):
            run_planarity(nx.Graph())

    def test_multigraph_rejected_input(self):
        from repro.errors import GraphInputError

        with pytest.raises(GraphInputError):
            run_planarity(nx.MultiGraph([(0, 1), (0, 1)]))

    def test_sample_size_scales(self):
        config = Stage2Config(epsilon=0.1)
        assert sample_size(1 << 20, config) > sample_size(1 << 8, config)
        tighter = Stage2Config(epsilon=0.01)
        assert sample_size(1000, tighter) > sample_size(1000, config)


class TestRoundComplexity:
    def test_rounds_grow_mildly_in_n(self):
        """O(log n) growth: doubling n should not double rounds."""
        rounds = []
        for n in (128, 256, 512):
            graph = make_planar("grid", n, seed=0)
            result = run_planarity(graph, epsilon=0.3, seed=0)
            assert result.accepted
            rounds.append(result.rounds)
        assert rounds[2] < 2.0 * rounds[0]

    def test_stage2_parallel_cost_is_max(self):
        graph = make_planar("delaunay", 200, seed=2)
        result = run_planarity(graph, epsilon=0.2, seed=0)
        assert result.stage2_rounds == max(v.rounds for v in result.part_verdicts)
