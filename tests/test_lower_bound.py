"""Tests for the Theorem 2 lower-bound construction."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.errors import GraphInputError
from repro.graphs import (
    all_views_are_trees,
    girth,
    lower_bound_instance,
    view_is_tree,
)


class TestConstruction:
    def test_girth_at_least_target(self):
        inst = lower_bound_instance(300, seed=1)
        assert inst.girth >= inst.target_girth

    def test_far_from_planar(self):
        inst = lower_bound_instance(400, average_degree=8, seed=2)
        assert inst.farness_lower_bound > 0.3

    def test_custom_target_girth(self):
        inst = lower_bound_instance(200, target_girth=6, seed=3)
        assert inst.girth >= 6

    def test_surgery_counted(self):
        inst = lower_bound_instance(300, seed=4)
        assert inst.removed_edges > 0

    def test_small_n_rejected(self):
        with pytest.raises(GraphInputError):
            lower_bound_instance(4)

    def test_default_target_logarithmic(self):
        inst_small = lower_bound_instance(64, seed=0)
        inst_large = lower_bound_instance(1024, seed=0)
        assert inst_large.target_girth >= inst_small.target_girth

    def test_deterministic_given_seed(self):
        a = lower_bound_instance(200, seed=9)
        b = lower_bound_instance(200, seed=9)
        assert nx.utils.graphs_equal(a.graph, b.graph)


class TestIndistinguishability:
    def test_views_are_trees_within_radius(self):
        inst = lower_bound_instance(300, seed=5)
        radius = inst.indistinguishability_radius
        assert all_views_are_trees(inst.graph, radius)

    def test_radius_matches_girth(self):
        inst = lower_bound_instance(300, seed=6)
        if inst.girth != math.inf:
            g = int(inst.girth)
            assert inst.indistinguishability_radius == (g - 2) // 2
            # at radius floor(g/2), nodes on a shortest cycle see it whole
            assert not all_views_are_trees(inst.graph, g // 2)

    def test_radius_tight_for_odd_girth(self):
        # a single 5-cycle: radius 1 views are paths, radius 2 sees the cycle
        import networkx as nx
        from repro.graphs import view_is_tree

        cycle = nx.cycle_graph(5)
        assert all(view_is_tree(cycle, v, 1) for v in cycle)
        assert not view_is_tree(cycle, 0, 2)

    def test_view_is_tree_on_cycle(self):
        cycle = nx.cycle_graph(10)
        assert view_is_tree(cycle, 0, 3)  # ball of radius 3 is a path
        assert not view_is_tree(cycle, 0, 5)  # whole cycle visible

    def test_view_is_tree_consistent_with_girth(self):
        inst = lower_bound_instance(200, average_degree=6, seed=7)
        g = girth(inst.graph)
        if g != math.inf:
            r = int(math.ceil(g / 2)) - 1
            assert all(view_is_tree(inst.graph, v, r) for v in list(inst.graph)[:20])
