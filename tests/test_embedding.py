"""Tests for face traversal and Euler-formula verification."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import EmbeddingError
from repro.planarity import (
    RotationSystem,
    faces,
    genus_by_component,
    identity_rotation,
    is_planar_embedding,
    match_graph,
    verify_planar_embedding,
)


def triangle_embedding():
    rs = RotationSystem()
    rs.set_rotation(0, [1, 2])
    rs.set_rotation(1, [2, 0])
    rs.set_rotation(2, [0, 1])
    return rs


class TestFaces:
    def test_triangle_has_two_faces(self):
        assert len(faces(triangle_embedding())) == 2

    def test_face_lengths_sum_to_half_edges(self):
        rs = triangle_embedding()
        assert sum(len(f) for f in faces(rs)) == 6

    def test_tree_has_one_face(self):
        rs = RotationSystem()
        rs.set_rotation(0, [1, 2])
        rs.set_rotation(1, [0])
        rs.set_rotation(2, [0])
        assert len(faces(rs)) == 1


class TestMatchGraph:
    def test_matching(self):
        match_graph(triangle_embedding(), nx.cycle_graph(3))

    def test_missing_edge_detected(self):
        graph = nx.cycle_graph(3)
        graph.add_edge(0, 3)
        graph.add_node(3)
        with pytest.raises(EmbeddingError):
            match_graph(triangle_embedding(), graph)

    def test_extra_half_edge_detected(self):
        rs = triangle_embedding()
        rs.add_node(3)
        rs.set_rotation(3, [0])
        graph = nx.cycle_graph(3)
        graph.add_node(3)
        with pytest.raises(EmbeddingError):
            match_graph(rs, graph)


class TestEuler:
    def test_triangle_genus_zero(self):
        stats = genus_by_component(triangle_embedding(), nx.cycle_graph(3))
        ((n, m, f, genus),) = stats.values()
        assert (n, m, f, genus) == (3, 3, 2, 0)

    def test_k5_identity_rotation_not_planar(self, k5):
        rs = identity_rotation(k5)
        assert not is_planar_embedding(rs, k5)

    def test_k4_good_rotation_planar(self):
        # An explicitly planar rotation of K4.
        rs = RotationSystem.from_dict(
            {
                0: [1, 2, 3],
                1: [2, 0, 3],
                2: [0, 1, 3],
                3: [0, 2, 1],
            }
        )
        graph = nx.complete_graph(4)
        if not is_planar_embedding(rs, graph):
            # chirality of the hand-built rotation may be mirrored; flip it
            flipped = RotationSystem.from_dict(
                {v: list(reversed(rot)) for v, rot in rs.to_dict().items()}
            )
            assert is_planar_embedding(flipped, graph)

    def test_bad_grid_rotation_rejected(self, small_grid):
        # Identity order of a grid is typically non-planar as an embedding.
        rs = identity_rotation(small_grid)
        stats = genus_by_component(rs, small_grid)
        # it is a valid rotation system, so genus is defined; usually > 0
        assert all(g >= 0 for (_n, _m, _f, g) in stats.values())

    def test_isolated_node(self):
        graph = nx.Graph()
        graph.add_node(7)
        rs = RotationSystem()
        rs.add_node(7)
        verify_planar_embedding(rs, graph)

    def test_disconnected_components(self):
        graph = nx.union(
            nx.cycle_graph(3),
            nx.relabel_nodes(nx.cycle_graph(3), {0: 3, 1: 4, 2: 5}),
        )
        rs = RotationSystem()
        for v in graph.nodes():
            rs.set_rotation(v, sorted(graph.neighbors(v)))
        stats = genus_by_component(rs, graph)
        assert len(stats) == 2
        assert all(g == 0 for (_n, _m, _f, g) in stats.values())

    def test_verify_raises_on_nonplanar(self, k5):
        with pytest.raises(EmbeddingError):
            verify_planar_embedding(identity_rotation(k5), k5)


class TestIdentityRotation:
    def test_covers_graph(self, small_grid):
        rs = identity_rotation(small_grid)
        match_graph(rs, small_grid)

    def test_sorted_order(self):
        graph = nx.star_graph(4)
        rs = identity_rotation(graph)
        assert rs.rotation(0) == sorted(graph.neighbors(0), key=repr)
