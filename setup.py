"""Packaging metadata for the reproduction (offline-friendly).

Kept as a plain ``setup.py`` so ``pip install -e . --no-use-pep517``
works where the ``wheel`` package is unavailable (PEP 660 editable
builds require it).  Registers the ``repro-planarity`` console script.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "_version.py")) as handle:
        match = re.search(r'__version__ = "([^"]+)"', handle.read())
    return match.group(1) if match else "0.0.0"


setup(
    name="repro-planarity",
    version=_version(),
    description=(
        "Reproduction of 'Property Testing of Planarity in the CONGEST "
        "model' (Levi-Medina-Ron, PODC 2018) with a parallel batch runtime"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx>=2.6", "numpy>=1.22"],
    extras_require={
        "delaunay": ["scipy"],
        "cuda": ["cupy"],
        "bench": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-planarity=repro.cli:main",
        ],
    },
)
