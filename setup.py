"""Setup shim for legacy editable installs (offline environments).

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works where the ``wheel`` package is
unavailable (PEP 660 editable builds require it).
"""

from setuptools import setup

setup()
