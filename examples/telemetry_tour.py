"""Telemetry tour: trace a sweep, rank hotspots, export for Chrome.

Runs a small tester sweep twice -- once serially, once over a process
pool -- with tracing enabled, then reads the merged trace directory
back: the span tree (who nested under whom, across processes), the
hotspot ranking `trace top` prints, the per-process metrics
registries, and a Chrome ``trace_event`` export you can drop into
chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/telemetry_tour.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.runtime import SweepSpec, make_backend, run_sweep
from repro.telemetry import (
    chrome_trace,
    configure,
    read_events,
    read_metrics,
    render_tree,
    top_spans,
)


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
    trace_dir = work / "trace"

    # Everything is off by default; one call turns it on for this
    # process *and* its children (pool/async/remote workers inherit
    # the environment knobs this writes).
    configure(trace_dir=str(trace_dir))

    grid = SweepSpec.make(
        "test_planarity",
        families=["grid", "delaunay"],
        ns=[64, 100],
        seeds=[0, 1],
        epsilon=[0.5, 0.25],
    )
    print(f"sweeping {grid.size} jobs serially, then on a process pool...")
    run_sweep(grid, backend="serial")
    run_sweep(grid, backend=make_backend("process", max_workers=2))

    events = read_events(trace_dir)
    files = sorted(path.name for path in trace_dir.glob("trace-*.jsonl"))
    print(f"\n{len(events)} events across {len(files)} per-process files:")
    for name in files:
        print(f"  {name}")

    print("\nspan tree (pool workers' job spans link under sweep #2):")
    for line in render_tree(events, max_lines=12):
        print(f"  {line}")

    print("\nhotspots (what `repro-planarity trace top` prints):")
    for row in top_spans(events):
        print(
            f"  {row['name']:<6} kind={row['kind']:<15} "
            f"count={row['count']:>3}  total={row['total_s']:.4f}s  "
            f"max={row['max_s']:.4f}s"
        )

    print("\nper-process metrics registries:")
    for token, registry in read_metrics(trace_dir).items():
        counters = registry.get("counters", {})
        print(f"  {token}: {json.dumps(counters, sort_keys=True)}")

    chrome_path = work / "trace_chrome.json"
    chrome_path.write_text(json.dumps(chrome_trace(events)))
    print(f"\nChrome trace_event export: {chrome_path}")
    print("  load it in chrome://tracing or https://ui.perfetto.dev")
    print(f"\nsame data via the CLI: repro-planarity trace view {trace_dir}")

    configure(enabled=False)  # leave the process as we found it


if __name__ == "__main__":
    main()
