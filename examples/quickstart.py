"""Quickstart: test planarity of a graph in the CONGEST model.

Generates one planar graph and one certified far-from-planar graph, runs
the Theorem 1 distributed tester on both, and prints the verdicts along
with the round accounting.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import make_far, make_planar, test_planarity


def show(result, label: str) -> None:
    verdict = "ACCEPT" if result.accepted else "REJECT"
    print(f"\n{label}")
    print(f"  verdict         : {verdict}")
    if not result.accepted:
        print(f"  rejected in     : {result.rejected_stage}")
        print(f"  evidence holders: {len(result.rejecting_parts)} part root(s)")
    print(f"  CONGEST rounds  : {result.rounds:,} "
          f"(Stage I {result.stage1_rounds:,} + Stage II {result.stage2_rounds:,})")
    print(f"  parts after Stage I: {result.stage1.partition.size}")


def main() -> None:
    epsilon = 0.1

    # A random Delaunay triangulation: planar, so every node must accept.
    planar_graph = make_planar("delaunay", 800, seed=7)
    result = test_planarity(planar_graph, epsilon=epsilon, seed=7)
    show(result, f"Delaunay triangulation (n={planar_graph.number_of_nodes()}, planar)")
    assert result.accepted, "one-sided error violated!"

    # A planar graph with planted K5s: certified epsilon-far from planar.
    far_graph, farness = make_far("planted-k5", 800, seed=7)
    result = test_planarity(far_graph, epsilon=min(epsilon, farness * 0.9), seed=7)
    show(
        result,
        f"Planar + planted K5s (n={far_graph.number_of_nodes()}, "
        f"certified farness >= {farness:.3f})",
    )

    print(
        "\nThe far graph is rejected by at least one node with probability"
        "\n1 - 1/poly(n); the planar graph is always accepted (one-sided error)."
    )


if __name__ == "__main__":
    main()
