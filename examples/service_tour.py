"""Service tour: one fleet, many clients, one ``submit`` call shape.

Starts a :class:`~repro.runtime.SweepService` in-process, joins two
fleet workers to it (the same ``repro-planarity worker --connect ...
--reconnect`` processes you would run on other hosts), and then walks
the :class:`~repro.runtime.Client` facade through its three targets:

1. in-process serial (the reference record stream),
2. the live service, with progress frames and a store-hit resubmit,
3. two *concurrent* clients sharing the fleet (round-robin
   dispatch, visible in the service's dispatch log).

Records are byte-identical across all of them -- specs carry all
their randomness -- which is the point of the facade: develop against
``backend="serial"``, point the same call at an endpoint later.

Run:  python examples/service_tour.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.runtime import Client, RunConfig, SweepService, SweepSpec
from repro.runtime.worker import serve_remote


def main() -> None:
    store = Path(tempfile.mkdtemp(prefix="repro-service-")) / "store"
    sweep = SweepSpec.make(
        "test_planarity",
        families=["grid"],
        ns=[36, 64, 100],
        epsilon=[0.5, 0.25],
        seeds=[0],
    )

    # 1. The in-process serial reference: no fleet, no store.
    serial = Client(backend="serial", config=RunConfig()).run(sweep)
    print(f"serial reference: {len(serial)} records")

    with SweepService(store_dir=store, heartbeat=2.0) as service:
        print(f"service listening on {service.endpoint}")

        # Two fleet workers.  Here they are threads; in production each
        # is `repro-planarity worker --connect <endpoint> --reconnect`
        # on any host that can reach the service (and, optionally, its
        # store directory -- workers without it run storeless and the
        # service persists their records itself).
        for _ in range(2):
            threading.Thread(
                target=serve_remote,
                args=(service.host, service.bound_port),
                kwargs={"reconnect": True},
                daemon=True,
            ).start()

        # 2. The same submit against the live service, with progress.
        remote = list(
            Client(endpoint=service.endpoint, name="tour").submit(
                sweep,
                on_progress=lambda p: print(
                    f"  progress: {p['done']}/{p['total']} "
                    f"(workers={p['workers']})"
                ),
            )
        )
        print(f"service run matches serial: {remote == serial}")

        # Resubmitting is a pure store-hit run: same records, nothing
        # dispatched to the fleet.
        again = Client(endpoint=service.endpoint, name="tour-again").run(sweep)
        print(f"resubmit (all store hits) matches: {again == serial}")

        # 3. Two concurrent clients with disjoint sweeps share the
        # fleet.  When both have jobs queued at once, the round-robin
        # dispatcher alternates between their queues instead of
        # draining one before the other (tests/test_runtime_service.py
        # pins the a,b,a,b order); with jobs this small the first
        # client may simply finish before the second connects.
        sweep_a = SweepSpec.make(
            "test_planarity", families=["delaunay"], ns=[64, 100, 144],
            epsilon=[0.5], seeds=[1],
        )
        sweep_b = SweepSpec.make(
            "test_planarity", families=["delaunay"], ns=[64, 100, 144],
            epsilon=[0.5], seeds=[2],
        )
        before = len(service.dispatch_log)
        it_a = Client(endpoint=service.endpoint, name="alice").submit(sweep_a)
        it_b = Client(endpoint=service.endpoint, name="bob").submit(sweep_b)
        records_a, records_b = list(it_a), list(it_b)
        print(f"alice got {len(records_a)}, bob got {len(records_b)}")
        order = [name for name, _idx in service.dispatch_log[before:]]
        print(f"dispatch order: {order}")

    print("service stopped; reconnect workers received their exit frames")


if __name__ == "__main__":
    main()
