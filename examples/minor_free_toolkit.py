"""Scenario: the Section 4 toolkit on a minor-free sensor field.

A sensor deployment forms a planar (hence minor-free) communication
graph.  Under that promise the paper's partition unlocks a toolbox:

* a low-diameter partition with few crossing edges (Theorems 3 & 4),
* an ultra-sparse spanner for energy-efficient backbone routing
  (Corollary 17),
* deterministic distributed property tests -- is the field cycle-free?
  bipartite (2-colorable for TDMA-style scheduling)?  (Corollary 16).

Run:  python examples/minor_free_toolkit.py
"""

from __future__ import annotations

from repro import (
    build_spanner,
    make_planar,
    measure_stretch,
    partition_randomized,
    partition_stage1,
    test_bipartiteness,
    test_cycle_freeness,
)
from repro.analysis import Table
from repro.graphs import triangulated_grid


def main() -> None:
    n = 700
    epsilon = 0.15
    field = make_planar("delaunay", n, seed=3)
    n_actual = field.number_of_nodes()

    # --- Theorem 3 vs Theorem 4 partitions -----------------------------------
    det = partition_stage1(field, epsilon=epsilon, target_cut=epsilon * n_actual)
    rand = partition_randomized(field, epsilon=epsilon, delta=0.05, seed=3)
    table = Table(
        f"Partitioning a {n_actual}-sensor field (epsilon={epsilon})",
        ["algorithm", "parts", "cut edges", "target", "max diameter", "rounds"],
    )
    for label, result in (("Theorem 3 (det.)", det), ("Theorem 4 (rand.)", rand)):
        table.add_row(
            label,
            result.partition.size,
            result.partition.cut_size(),
            result.target_cut,
            result.partition.max_diameter(),
            result.rounds,
        )
    table.print()

    # --- Corollary 17 spanner -------------------------------------------------
    spanner = build_spanner(field, epsilon=epsilon)
    stretch = measure_stretch(field, spanner.spanner, sample_nodes=10, seed=0)
    print(
        f"Backbone spanner: {spanner.size} edges "
        f"({spanner.size / n_actual:.3f} per node; input has "
        f"{field.number_of_edges() / n_actual:.3f}), measured stretch "
        f"{stretch:.1f} (guaranteed <= {spanner.guaranteed_stretch})."
    )

    # --- Corollary 16 property tests -------------------------------------------
    tri = triangulated_grid(22, 22)  # a field with triangulated cells
    table = Table(
        "Property tests under the minor-free promise",
        ["graph", "property", "verdict", "rounds"],
    )
    for graph, name in ((field, "delaunay field"), (tri, "triangulated field")):
        cyc = test_cycle_freeness(graph, epsilon=0.4)
        bip = test_bipartiteness(graph, epsilon=0.2)
        table.add_row(name, "cycle-freeness",
                      "accept" if cyc.accepted else "REJECT", cyc.rounds)
        table.add_row(name, "bipartiteness",
                      "accept" if bip.accepted else "REJECT", bip.rounds)
    table.print()
    print(
        "Both fields are triangle-rich, hence far from cycle-free and far\n"
        "from bipartite, and both testers reject them; each verdict is a\n"
        "witness found inside a single low-diameter part -- no global\n"
        "coordination required.  (Run the testers on a tree or an even grid\n"
        "to see one-sided acceptance.)"
    )


if __name__ == "__main__":
    main()
