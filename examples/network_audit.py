"""Scenario: auditing a physically planar network for illegal shortcuts.

A metro fiber network is laid out in the plane (a Delaunay-like mesh), so
its topology *should* be planar.  Operators occasionally splice in ad-hoc
long-range links; once enough of them accumulate, the topology stops
being planar and routing/embedding tools that assume planarity break.

Each router only talks to its neighbors (CONGEST).  This script shows
how the distributed tester acts as a continuous audit: as the fraction of
rogue links grows, the probability that some router raises an alarm goes
to one, while a clean network never alarms.

Run:  python examples/network_audit.py
"""

from __future__ import annotations

import random

import networkx as nx

from repro import make_planar, test_planarity
from repro.analysis import Table
from repro.graphs import planarity_farness_lower_bound


def add_rogue_links(graph: nx.Graph, count: int, seed: int) -> nx.Graph:
    """Splice *count* random long-range links into the mesh."""
    rng = random.Random(seed)
    noisy = nx.Graph(graph)
    nodes = list(noisy.nodes())
    added = 0
    while added < count:
        u, v = rng.sample(nodes, 2)
        if not noisy.has_edge(u, v):
            noisy.add_edge(u, v)
            added += 1
    return noisy


def main() -> None:
    n = 600
    epsilon = 0.05
    trials = 5
    mesh = make_planar("delaunay", n, seed=1)
    m = mesh.number_of_edges()

    table = Table(
        f"Planarity audit of a {n}-router mesh (epsilon={epsilon}, "
        f"{trials} audit runs per row)",
        ["rogue links", "% of edges", "certified farness", "alarms",
         "alarm rate", "rounds (last)"],
    )
    for rogue in (0, 5, 20, 60, 150, 300):
        noisy = add_rogue_links(mesh, rogue, seed=2) if rogue else mesh
        farness = planarity_farness_lower_bound(noisy)
        alarms = 0
        rounds = 0
        for seed in range(trials):
            result = test_planarity(noisy, epsilon=epsilon, seed=seed)
            alarms += not result.accepted
            rounds = result.rounds
        table.add_row(
            rogue,
            100 * rogue / m,
            farness,
            f"{alarms}/{trials}",
            alarms / trials,
            rounds,
        )
        if rogue == 0:
            assert alarms == 0, "false alarm on a clean planar mesh!"
    table.print()
    print(
        "A clean mesh never alarms (one-sided error); once the rogue-link\n"
        "fraction passes epsilon, some router alarms on almost every audit."
    )


if __name__ == "__main__":
    main()
