"""Scenario: the raw CONGEST simulator and its primitive protocols.

Shows the substrate directly: running genuinely distributed protocols
(BFS, Barenboim-Elkin forest decomposition, Cole-Vishkin 3-coloring) as
per-node programs with O(log n)-bit messages, reading the bandwidth
accounting the simulator enforces, and selecting an instrumentation
profile -- ``faithful`` for full diagnostics, ``fast`` for throughput
with identical results.

Run:  python examples/congest_playground.py
"""

from __future__ import annotations

import time

import networkx as nx

from repro import CongestNetwork
from repro.analysis import Table
from repro.congest.programs import (
    BFSTreeProgram,
    cole_vishkin_coloring,
    run_forest_decomposition_simulated,
)
from repro.graphs import make_planar


def main() -> None:
    graph = make_planar("tri-grid", 400, seed=0)
    n = graph.number_of_nodes()

    # --- BFS as a node program ---------------------------------------------------
    # Networks over the same graph object share one CompiledTopology
    # (adjacency arrays, neighbor sets, bandwidth budget) -- the second
    # construction below compiles nothing.
    network = CongestNetwork(graph, seed=0)
    result = network.run(
        BFSTreeProgram,
        max_rounds=n,
        config={"root": 0},
        strict_bandwidth=True,
    )
    depths = [out[1] for out in result.outputs.values() if out]
    table = Table(
        f"Distributed BFS on a triangulated grid (n={n})",
        ["rounds", "messages", "total bits", "max msg bits", "budget bits", "depth"],
    )
    table.add_row(
        result.rounds,
        result.total_messages,
        result.total_bits,
        result.max_message_bits,
        result.bandwidth_bits,
        max(depths),
    )
    table.print()

    # --- instrumentation profiles ------------------------------------------------
    # profile="faithful" (default) validates and sizes every message and
    # keeps per-round stats; profile="fast" memoizes sizes and elides
    # validation after a first check.  Outputs, rounds, and totals are
    # identical -- only wall-clock and diagnostic depth change.  (The
    # REPRO_SIM_PROFILE env var and `repro-planarity sweep --profile`
    # select the same knob without touching code.)
    timings = {}
    for profile in ("faithful", "fast"):
        start = time.perf_counter()
        run = network.run(
            BFSTreeProgram,
            max_rounds=n,
            config={"root": 0},
            strict_bandwidth=True,
            profile=profile,
        )
        timings[profile] = time.perf_counter() - start
        assert run.outputs == result.outputs
        assert run.rounds == result.rounds
    print(
        "Profiles agree on outputs and rounds; faithful "
        f"{timings['faithful'] * 1e3:.1f} ms vs fast "
        f"{timings['fast'] * 1e3:.1f} ms on this BFS "
        "(round stats kept by faithful only: "
        f"{len(result.round_stats)} rounds recorded)."
    )

    # --- Barenboim-Elkin forest decomposition -----------------------------------
    fd = run_forest_decomposition_simulated(graph, alpha=3, seed=0)
    out_degrees = [len(o) for o in fd.out_neighbors.values()]
    print(
        f"Forest decomposition: success={fd.success} in {fd.rounds} rounds; "
        f"max out-degree {max(out_degrees)} <= 3*alpha = 9 "
        "(so the edges split into <= 9 forests)."
    )

    # planar graphs never produce evidence; a clique does:
    clique = nx.complete_graph(16)
    fd_bad = run_forest_decomposition_simulated(clique, alpha=1, seed=0)
    print(
        f"K16 with alpha=1: success={fd_bad.success}, "
        f"{len(fd_bad.rejecting_nodes)} nodes hold rejection evidence."
    )

    # --- Cole-Vishkin 3-coloring ---------------------------------------------------
    path = nx.path_graph(300)
    parents = {i: i - 1 if i > 0 else None for i in path.nodes()}
    colors, rounds = cole_vishkin_coloring(path, parents, seed=0)
    assert all(colors[u] != colors[v] for u, v in path.edges())
    print(
        f"Cole-Vishkin 3-colored a 300-node path in {rounds} rounds "
        f"(colors used: {sorted(set(colors.values()))}) -- O(log* n) speed."
    )


if __name__ == "__main__":
    main()
