"""Scenario: why Omega(log n) rounds are necessary (Theorem 2).

Builds the paper's hard instances -- graphs that are constant-far from
planar yet contain no short cycles -- and demonstrates the
indistinguishability argument concretely: within r rounds a node's output
can only depend on its radius-r view, and on these graphs every such view
is a tree, which also occurs in a (planar!) forest.  A one-sided tester
must accept on forests, so it must accept here too.

Run:  python examples/lower_bound_demo.py
"""

from __future__ import annotations

from repro import lower_bound_instance
from repro.analysis import Table
from repro.graphs import view_is_tree


def main() -> None:
    table = Table(
        "Theorem 2 hard instances: far from planar, locally tree-like",
        ["n", "m", "girth", "farness lb", "blind radius r",
         "tree views at r", "cyclic views at girth"],
    )
    for n in (256, 512, 1024, 2048):
        inst = lower_bound_instance(n, seed=0)
        graph = inst.graph
        r = inst.indistinguishability_radius
        tree_views = sum(view_is_tree(graph, v, r) for v in graph.nodes())
        wide = int(inst.girth) if inst.girth != float("inf") else n
        cyclic_views = sum(
            not view_is_tree(graph, v, wide) for v in list(graph.nodes())[:50]
        )
        table.add_row(
            graph.number_of_nodes(),
            graph.number_of_edges(),
            inst.girth,
            inst.farness_lower_bound,
            r,
            f"{tree_views}/{graph.number_of_nodes()}",
            f"{cyclic_views}/50 sampled",
        )
    table.print()
    print(
        "Within the blind radius every node sees a tree, indistinguishable\n"
        "from a forest on which a one-sided tester must accept; the radius\n"
        "grows like log n, so any one-sided tester needs Omega(log n) rounds\n"
        "-- matching the upper bound of Theorem 1 and making it tight."
    )


if __name__ == "__main__":
    main()
