"""CSR-native engine for the Corollary 17 spanner layer.

The legacy :func:`~repro.applications.spanner.build_spanner` assembles
the spanner by walking legacy :class:`~repro.partition.parts.Partition`
objects and re-deriving the auxiliary graph through networkx views --
the only consumer of the partition that never got the dense-index
treatment.  This module builds the same spanner straight from the
:class:`~repro.partition.dense.DensePartitionState` arrays the dense
partition engine already produced:

* **tree edges** are read off the per-node parent array (one edge per
  non-root dense index, ``n - k`` total);
* **connector edges** come from one vectorized auxiliary-edge pass
  (:meth:`DensePartitionState.build_aux`), whose designated connectors
  use the seed's exact min-id tie-break;
* the spanner is emitted as flat edge arrays (:class:`DenseSpanner`),
  mirroring ``CompiledTopology.edge_arrays`` -- a networkx graph is
  materialized only on demand.

Stretch measurement runs as a *batched* level-synchronous BFS over the
CSR arrays: one ``(sources, n)`` frontier tensor per graph instead of
one ``nx.single_source_shortest_path_length`` call per sampled pair.
Both paths are bit-identical to the legacy implementations (same edge
sets, same counts, same worst-ratio float) -- gated by
``tests/test_applications_dense.py`` and benchmark E19.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

import networkx as nx

try:  # pragma: no cover - exercised by the numpy-less fallback tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..errors import GraphInputError

if TYPE_CHECKING:  # pragma: no cover
    from ..congest.topology import CompiledTopology
    from ..partition.dense import DensePartitionState


class DenseSpanner:
    """A spanner as flat edge arrays over one compiled topology.

    The dense sibling of the ``spanner`` networkx graph in
    :class:`~repro.applications.spanner.SpannerResult`: endpoints are
    dense indices into ``topology.nodes`` (tree edges first, then the
    designated connectors), and the symmetric CSR adjacency used by the
    batched BFS is derived lazily and cached.

    Attributes:
        topology: the :class:`~repro.congest.topology.CompiledTopology`
            of the *input* graph (the spanner shares its node set and
            dense index space).
        su / sv: per spanner edge, the endpoint dense indices.
    """

    __slots__ = ("topology", "su", "sv", "_csr")

    def __init__(self, topology: "CompiledTopology", su, sv):
        self.topology = topology
        self.su = su
        self.sv = sv
        self._csr = None

    @property
    def n(self) -> int:
        """Number of nodes (same as the input graph)."""
        return self.topology.n

    @property
    def edge_count(self) -> int:
        """Number of spanner edges."""
        return int(len(self.su))

    def edge_arrays(self):
        """The spanner edges as index arrays ``(su, sv)``."""
        return self.su, self.sv

    def csr(self):
        """Symmetric CSR adjacency ``(indptr, indices, degrees)`` (cached)."""
        csr = self._csr
        if csr is None:
            csr = self._csr = adjacency_csr(self.topology.n, self.su, self.sv)
        return csr

    def edges(self) -> Iterator[Tuple[object, object]]:
        """Spanner edges as original node-id pairs."""
        ids = self.topology.nodes
        for u, v in zip(self.su.tolist(), self.sv.tolist()):
            yield ids[u], ids[v]

    def to_graph(self) -> nx.Graph:
        """Materialize the spanner as a networkx graph (legacy shape)."""
        spanner = nx.Graph()
        spanner.add_nodes_from(self.topology.nodes)
        spanner.add_edges_from(self.edges())
        return spanner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseSpanner(n={self.n}, edges={self.edge_count})"


def adjacency_csr(n: int, eu, ev):
    """Symmetric CSR adjacency ``(indptr, indices, degrees)`` of an edge list."""
    src = np.concatenate((eu, ev))
    dst = np.concatenate((ev, eu))
    degrees = np.bincount(src, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    order = np.argsort(src, kind="stable")
    return indptr, dst[order], degrees


def build_dense_spanner(
    state: "DensePartitionState",
) -> Tuple[DenseSpanner, int, int]:
    """Assemble the Corollary 17 spanner from a dense partition state.

    Returns ``(spanner, tree_edges, connector_edges)``.  Tree edges are
    the non-root rows of the parent array; connectors are the designated
    auxiliary-edge endpoints (inter-part by construction, so the two
    groups never overlap -- matching the legacy builder's dedup, which
    provably never fires).
    """
    parent = np.asarray(state.parent, dtype=np.int64)
    child = np.nonzero(parent >= 0)[0]
    aux = state.build_aux()
    su = np.concatenate((child, aux.conn_u))
    sv = np.concatenate((parent[child], aux.conn_v))
    spanner = DenseSpanner(state.topology, su, sv)
    return spanner, int(len(child)), int(aux.edge_count())


def multi_source_distances(indptr, indices, degrees, sources, n: int):
    """Batched BFS distances from *sources* over one CSR adjacency.

    Returns an ``(S, n)`` int64 matrix of hop distances (``-1`` for
    unreachable).  Prefers scipy's C BFS over the CSR arrays directly
    (scipy is already in the graph-generator dependency set); without
    it, a pure-numpy level-synchronous sweep gathers the frontier
    across all CSR slots at once and folds per receiver row with
    ``logical_or.reduceat`` -- either way, no per-source or per-node
    Python loop, and identical hop counts.
    """
    count = len(sources)
    if count and n:
        try:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
        except ImportError:  # pragma: no cover - scipy ships with the env
            pass
        else:
            adjacency = csr_matrix(
                (np.ones(len(indices), dtype=np.int8), indices, indptr),
                shape=(n, n),
            )
            raw = dijkstra(
                adjacency,
                unweighted=True,
                indices=np.asarray(sources, dtype=np.int64),
            )
            dist = np.full((count, n), -1, dtype=np.int64)
            finite = np.isfinite(raw)
            dist[finite] = raw[finite].astype(np.int64)
            return dist
    return _level_synchronous_distances(indptr, indices, degrees, sources, n)


def _level_synchronous_distances(indptr, indices, degrees, sources, n: int):
    """The numpy fallback BFS behind :func:`multi_source_distances`."""
    count = len(sources)
    rows = np.arange(count)
    dist = np.full((count, n), -1, dtype=np.int64)
    dist[rows, sources] = 0
    frontier = np.zeros((count, n), dtype=bool)
    frontier[rows, sources] = True
    # One padding column keeps every reduceat start index in bounds for
    # trailing empty rows; genuinely empty rows are masked afterwards.
    pad = np.zeros((count, 1), dtype=bool)
    starts = indptr[:-1]
    empty = degrees == 0
    depth = 0
    while True:
        depth += 1
        gathered = np.concatenate((frontier[:, indices], pad), axis=1)
        reached = np.logical_or.reduceat(gathered, starts, axis=1)
        reached[:, empty] = False
        new = reached & (dist < 0)
        if not new.any():
            break
        dist[new] = depth
        frontier = new
    return dist


def stretch_from_distances(dist_g, dist_s) -> float:
    """Worst ``d_S / d_G`` ratio given the two distance matrices.

    Raises :class:`~repro.errors.GraphInputError` when some node is
    graph-reachable but spanner-unreachable (legacy contract).  The
    result is the same float the legacy per-pair fold produces: the
    ratios are exact int64-over-int64 IEEE divisions and ``max`` over
    float64 is order-independent.
    """
    positive = dist_g > 0
    if bool(np.any(positive & (dist_s < 0))):
        raise GraphInputError("spanner does not span the graph")
    if not positive.any():
        return 1.0
    ratios = dist_s[positive] / dist_g[positive]
    worst = float(ratios.max())
    return worst if worst > 1.0 else 1.0
