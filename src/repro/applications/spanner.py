"""Corollary 17: spanners for unweighted minor-free graphs.

Given the Stage I (or Theorem 4) partition with edge-cut parameter
``epsilon``, the spanner consists of

* the spanning tree of every part (``n - k`` edges), and
* one designated connector edge per pair of adjacent parts (at most the
  number of cut edges, which is ``<= epsilon * n`` on minor-free inputs).

Size: ``(1 + O(epsilon)) n`` edges.  Stretch: an intra-part edge detours
through the part tree (``<= 2 * height``); a cut edge detours through the
two part trees plus the connector (``<= 4 * height + 1``); heights are
``poly(1/epsilon)`` by Claim 4.  Benchmark E10 measures size and exact
stretch against baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from ..errors import GraphInputError
from ..graphs.utils import require_simple
from ..partition.auxiliary import AuxiliaryGraph
from ..partition.stage1 import Stage1Result, partition_stage1
from ..partition.weighted_selection import partition_randomized


@dataclass
class SpannerResult:
    """A constructed spanner plus provenance.

    Attributes:
        spanner: the spanner subgraph (same node set as the input).
        partition_result: the partition it was derived from.
        tree_edges: number of part spanning-tree edges.
        connector_edges: number of inter-part connector edges.
        guaranteed_stretch: the a-priori stretch bound
            ``4 * max_height + 1`` from the part trees.
    """

    spanner: nx.Graph
    partition_result: Stage1Result
    tree_edges: int
    connector_edges: int
    guaranteed_stretch: int

    @property
    def size(self) -> int:
        """Number of spanner edges."""
        return self.spanner.number_of_edges()

    @property
    def rounds(self) -> int:
        """CONGEST rounds charged (partition + one designation exchange)."""
        return self.partition_result.rounds + 1


def build_spanner(
    graph: nx.Graph,
    epsilon: float = 0.1,
    method: str = "deterministic",
    delta: float = 0.1,
    alpha: int = 3,
    seed: Optional[int] = None,
) -> SpannerResult:
    """Build the Corollary 17 spanner.

    Args:
        graph: unweighted minor-free graph (the promise; other inputs
            yield a connected subgraph but the size bound may not hold).
        epsilon: edge-cut parameter; the partition targets
            ``epsilon * n`` cut edges per Theorems 3/4.
        method: ``"deterministic"`` (Theorem 3, ``O(poly(1/eps) log n)``
            rounds) or ``"randomized"`` (Theorem 4,
            ``O(poly(1/eps)(log 1/delta + log* n))`` rounds, size bound
            with probability ``>= 1 - delta``).
        delta / alpha / seed: as in the partition algorithms.
    """
    require_simple(graph, "build_spanner input")
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphInputError("build_spanner requires at least one node")
    target = epsilon * n
    if method == "deterministic":
        result = partition_stage1(
            graph, epsilon=epsilon, alpha=alpha, target_cut=target
        )
    elif method == "randomized":
        result = partition_randomized(
            graph,
            epsilon=epsilon,
            delta=delta,
            alpha=alpha,
            target_cut=target,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown method {method!r}")

    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes())
    tree_edges = 0
    for part in result.partition.parts.values():
        for child, parent in part.tree_edges():
            spanner.add_edge(child, parent)
            tree_edges += 1

    aux = AuxiliaryGraph(result.partition)
    connector_edges = 0
    for edge in aux.edges():
        u, v = edge.connector
        if not spanner.has_edge(u, v):
            spanner.add_edge(u, v)
            connector_edges += 1

    max_height = result.partition.max_height()
    return SpannerResult(
        spanner=spanner,
        partition_result=result,
        tree_edges=tree_edges,
        connector_edges=connector_edges,
        guaranteed_stretch=4 * max_height + 1,
    )


def measure_stretch(
    graph: nx.Graph,
    spanner: nx.Graph,
    sample_nodes: int = 16,
    seed: Optional[int] = None,
) -> float:
    """Exact stretch over BFS from a sample of source nodes.

    Returns ``max over sampled u, all v of d_S(u, v) / d_G(u, v)``; with
    ``sample_nodes >= n`` this is the exact stretch.
    """
    import random

    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    if sample_nodes < len(nodes):
        sources = rng.sample(nodes, sample_nodes)
    else:
        sources = nodes
    worst = 1.0
    for source in sources:
        d_g = nx.single_source_shortest_path_length(graph, source)
        d_s = nx.single_source_shortest_path_length(spanner, source)
        for v, dg in d_g.items():
            if dg == 0:
                continue
            ds = d_s.get(v)
            if ds is None:
                raise GraphInputError("spanner does not span the graph")
            worst = max(worst, ds / dg)
    return worst
