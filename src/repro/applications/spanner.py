"""Corollary 17: spanners for unweighted minor-free graphs.

Given the Stage I (or Theorem 4) partition with edge-cut parameter
``epsilon``, the spanner consists of

* the spanning tree of every part (``n - k`` edges), and
* one designated connector edge per pair of adjacent parts (at most the
  number of cut edges, which is ``<= epsilon * n`` on minor-free inputs).

Size: ``(1 + O(epsilon)) n`` edges.  Stretch: an intra-part edge detours
through the part tree (``<= 2 * height``); a cut edge detours through the
two part trees plus the connector (``<= 4 * height + 1``); heights are
``poly(1/epsilon)`` by Claim 4.  Benchmark E10 measures size and exact
stretch against baselines.

Two engines build the same spanner (``engine=auto|dense|legacy``,
mirroring the partition's switch): the dense engine assembles the edge
arrays straight from the partition's
:class:`~repro.partition.dense.DensePartitionState`
(:mod:`repro.applications.dense`) and defers the networkx
materialization until someone actually asks for ``result.spanner``;
the legacy engine keeps the original dict walk.  Results are
bit-identical; only wall-clock differs (benchmark E19).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

import networkx as nx

from ..errors import GraphInputError
from ..graphs.utils import require_simple
from ..partition.auxiliary import AuxiliaryGraph
from ..partition.stage1 import Stage1Result, partition_stage1, resolve_engine
from ..partition.weighted_selection import partition_randomized
from .dense import (
    DenseSpanner,
    adjacency_csr,
    build_dense_spanner,
    multi_source_distances,
    stretch_from_distances,
)


@dataclass
class SpannerResult:
    """A constructed spanner plus provenance.

    Attributes:
        partition_result: the partition it was derived from.
        tree_edges: number of part spanning-tree edges.
        connector_edges: number of inter-part connector edges.
        guaranteed_stretch: the a-priori stretch bound
            ``4 * max_height + 1`` from the part trees.
        dense: the CSR edge-array form of the spanner when the dense
            engine built it (``None`` under the legacy engine).
    """

    partition_result: Stage1Result
    tree_edges: int
    connector_edges: int
    guaranteed_stretch: int
    dense: Optional[DenseSpanner] = None
    _graph: Optional[nx.Graph] = field(default=None, repr=False, compare=False)

    @property
    def spanner(self) -> nx.Graph:
        """The spanner subgraph (same node set as the input).

        Under the dense engine the networkx graph is materialized on
        first access; fast-path consumers (vectorized stretch, the
        dense application verifiers) read ``dense`` instead and never
        pay for it.
        """
        if self._graph is None:
            self._graph = self.dense.to_graph()
        return self._graph

    @property
    def size(self) -> int:
        """Number of spanner edges."""
        if self.dense is not None:
            return self.dense.edge_count
        return self._graph.number_of_edges()

    @property
    def rounds(self) -> int:
        """CONGEST rounds charged (partition + one designation exchange)."""
        return self.partition_result.rounds + 1


def build_spanner(
    graph: nx.Graph,
    epsilon: float = 0.1,
    method: str = "deterministic",
    delta: float = 0.1,
    alpha: int = 3,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
) -> SpannerResult:
    """Build the Corollary 17 spanner.

    Args:
        graph: unweighted minor-free graph (the promise; other inputs
            yield a connected subgraph but the size bound may not hold).
        epsilon: edge-cut parameter; the partition targets
            ``epsilon * n`` cut edges per Theorems 3/4.
        method: ``"deterministic"`` (Theorem 3, ``O(poly(1/eps) log n)``
            rounds) or ``"randomized"`` (Theorem 4,
            ``O(poly(1/eps)(log 1/delta + log* n))`` rounds, size bound
            with probability ``>= 1 - delta``).
        delta / alpha / seed: as in the partition algorithms.
        engine: ``"auto"`` (default), ``"dense"``, or ``"legacy"`` --
            resolved by :func:`repro.partition.stage1.resolve_engine`
            and forwarded to the partition, so one switch covers the
            whole pipeline.  Engines produce identical spanners.
    """
    require_simple(graph, "build_spanner input")
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphInputError("build_spanner requires at least one node")
    resolved = resolve_engine(engine, graph)
    target = epsilon * n
    if method == "deterministic":
        result = partition_stage1(
            graph, epsilon=epsilon, alpha=alpha, target_cut=target,
            engine=resolved,
        )
    elif method == "randomized":
        result = partition_randomized(
            graph,
            epsilon=epsilon,
            delta=delta,
            alpha=alpha,
            target_cut=target,
            seed=seed,
            engine=resolved,
        )
    else:
        raise ValueError(f"unknown method {method!r}")

    if resolved == "dense":
        dense, tree_edges, connector_edges = build_dense_spanner(
            result.dense_state
        )
        return SpannerResult(
            partition_result=result,
            tree_edges=tree_edges,
            connector_edges=connector_edges,
            guaranteed_stretch=4 * result.dense_state.max_height() + 1,
            dense=dense,
        )

    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes())
    tree_edges = 0
    for part in result.partition.parts.values():
        for child, parent in part.tree_edges():
            spanner.add_edge(child, parent)
            tree_edges += 1

    aux = AuxiliaryGraph(result.partition)
    connector_edges = 0
    for edge in aux.edges():
        u, v = edge.connector
        if not spanner.has_edge(u, v):
            spanner.add_edge(u, v)
            connector_edges += 1

    max_height = result.partition.max_height()
    return SpannerResult(
        partition_result=result,
        tree_edges=tree_edges,
        connector_edges=connector_edges,
        guaranteed_stretch=4 * max_height + 1,
        _graph=spanner,
    )


def measure_stretch(
    graph: nx.Graph,
    spanner: Union[nx.Graph, DenseSpanner],
    sample_nodes: int = 16,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
) -> float:
    """Exact stretch over BFS from a sample of source nodes.

    Returns ``max over sampled u, all v of d_S(u, v) / d_G(u, v)``; with
    ``sample_nodes >= n`` this is the exact stretch.  *spanner* may be a
    networkx graph or the dense engine's :class:`DenseSpanner`.

    The dense engine runs all sampled sources as one batched BFS over
    the CSR arrays (same sample -- the RNG preamble is shared -- and the
    same worst-ratio float as the legacy per-pair fold).  ``engine=None``
    resolves like the partition switch; a networkx spanner additionally
    needs the exact input node set for the dense path (``auto`` falls
    back to legacy otherwise, explicit ``"dense"`` raises).
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    if sample_nodes < len(nodes):
        sources = rng.sample(nodes, sample_nodes)
    else:
        sources = nodes
    resolved = resolve_engine(engine, graph)
    if resolved == "dense":
        if isinstance(spanner, DenseSpanner):
            topology = spanner.topology
            span_csr = spanner.csr()
        else:
            topology, span_csr = _compile_nx_spanner(graph, spanner, engine)
        if span_csr is not None:
            import numpy as np

            arrays = topology.batch_arrays()
            src_idx = np.asarray(
                [topology.index[v] for v in sources], dtype=np.int64
            )
            dist_g = multi_source_distances(
                arrays.indptr, arrays.indices, arrays.degrees,
                src_idx, topology.n,
            )
            dist_s = multi_source_distances(
                span_csr[0], span_csr[1], span_csr[2], src_idx, topology.n
            )
            return stretch_from_distances(dist_g, dist_s)

    if isinstance(spanner, DenseSpanner):
        spanner = spanner.to_graph()
    worst = 1.0
    for source in sources:
        d_g = nx.single_source_shortest_path_length(graph, source)
        d_s = nx.single_source_shortest_path_length(spanner, source)
        for v, dg in d_g.items():
            if dg == 0:
                continue
            ds = d_s.get(v)
            if ds is None:
                raise GraphInputError("spanner does not span the graph")
            worst = max(worst, ds / dg)
    return worst


def _compile_nx_spanner(graph: nx.Graph, spanner: nx.Graph, engine):
    """CSR form of a networkx spanner over *graph*'s dense index space.

    Returns ``(topology, (indptr, indices, degrees))``, or
    ``(topology, None)`` when the spanner's node set differs from the
    graph's (the auto path then falls back to the legacy fold, since
    spanner-only nodes could legitimately carry shortest paths).
    """
    from ..congest.topology import compile_topology

    topology = compile_topology(graph)
    if spanner.number_of_nodes() != topology.n or any(
        v not in topology.index for v in spanner.nodes()
    ):
        if engine == "dense":
            raise ValueError(
                "dense stretch engine requires a spanner on the exact "
                "input node set"
            )
        return topology, None
    import numpy as np

    index = topology.index
    su = np.fromiter(
        (index[u] for u, _ in spanner.edges()),
        dtype=np.int64,
        count=spanner.number_of_edges(),
    )
    sv = np.fromiter(
        (index[v] for _, v in spanner.edges()),
        dtype=np.int64,
        count=spanner.number_of_edges(),
    )
    return topology, adjacency_csr(topology.n, su, sv)
