"""Applications of the minor-free partition (Corollary 17)."""

from .dense import DenseSpanner, build_dense_spanner
from .spanner import SpannerResult, build_spanner, measure_stretch

__all__ = [
    "DenseSpanner",
    "SpannerResult",
    "build_dense_spanner",
    "build_spanner",
    "measure_stretch",
]
