"""Applications of the minor-free partition (Corollary 17)."""

from .spanner import SpannerResult, build_spanner, measure_stretch

__all__ = ["SpannerResult", "build_spanner", "measure_stretch"]
