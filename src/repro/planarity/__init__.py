"""Planarity substrate: LR test, rotation systems, embedding verification."""

from .embedding import (
    faces,
    genus_by_component,
    identity_rotation,
    is_planar_embedding,
    match_graph,
    verify_planar_embedding,
)
from .lr_planarity import PlanarityResult, check_planarity, is_planar
from .rotation import RotationSystem

__all__ = [
    "PlanarityResult",
    "RotationSystem",
    "check_planarity",
    "faces",
    "genus_by_component",
    "identity_rotation",
    "is_planar",
    "is_planar_embedding",
    "match_graph",
    "verify_planar_embedding",
]
