"""Rotation systems (combinatorial embeddings).

A rotation system assigns to every node a cyclic *clockwise* ordering of
its incident edges.  Together with the graph it fully determines a
cellular embedding on an orientable surface; the embedding is planar iff
the Euler characteristic computed from the face count is 2 per connected
component (see :mod:`repro.planarity.embedding`).

The structure is stored as doubly linked circular lists per node so the
LR embedding phase can insert half-edges in O(1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import EmbeddingError

HalfEdge = Tuple[Any, Any]


class RotationSystem:
    """A mutable clockwise rotation system over hashable node ids."""

    def __init__(self) -> None:  # noqa: D107
        self._first: Dict[Any, Optional[Any]] = {}
        self._cw: Dict[Any, Dict[Any, Any]] = {}
        self._ccw: Dict[Any, Dict[Any, Any]] = {}

    # -- construction ---------------------------------------------------------

    def add_node(self, v: Any) -> None:
        """Register node *v* with an empty rotation."""
        if v not in self._first:
            self._first[v] = None
            self._cw[v] = {}
            self._ccw[v] = {}

    def _require_node(self, v: Any) -> None:
        if v not in self._first:
            raise EmbeddingError(f"unknown node {v!r}")

    def _insert_only(self, v: Any, w: Any) -> None:
        self._first[v] = w
        self._cw[v][w] = w
        self._ccw[v][w] = w

    def add_half_edge_cw(self, v: Any, w: Any, ref: Optional[Any]) -> None:
        """Insert half-edge ``(v, w)`` clockwise-after *ref* in v's rotation."""
        self._require_node(v)
        if w in self._cw[v]:
            raise EmbeddingError(f"half-edge ({v!r}, {w!r}) already present")
        if not self._cw[v]:
            if ref is not None:
                raise EmbeddingError(
                    f"reference {ref!r} given but rotation of {v!r} is empty"
                )
            self._insert_only(v, w)
            return
        if ref not in self._cw[v]:
            raise EmbeddingError(f"reference {ref!r} not in rotation of {v!r}")
        nxt = self._cw[v][ref]
        self._cw[v][ref] = w
        self._cw[v][w] = nxt
        self._ccw[v][nxt] = w
        self._ccw[v][w] = ref

    def add_half_edge_ccw(self, v: Any, w: Any, ref: Optional[Any]) -> None:
        """Insert half-edge ``(v, w)`` counterclockwise-after (before) *ref*."""
        self._require_node(v)
        if not self._cw[v]:
            if ref is not None:
                raise EmbeddingError(
                    f"reference {ref!r} given but rotation of {v!r} is empty"
                )
            if w in self._cw[v]:
                raise EmbeddingError(f"half-edge ({v!r}, {w!r}) already present")
            self._insert_only(v, w)
            return
        if ref not in self._ccw[v]:
            raise EmbeddingError(f"reference {ref!r} not in rotation of {v!r}")
        self.add_half_edge_cw(v, w, self._ccw[v][ref])

    def add_half_edge_first(self, v: Any, w: Any) -> None:
        """Insert half-edge ``(v, w)`` as the new first entry of v's rotation."""
        self._require_node(v)
        if self._first[v] is None:
            if w in self._cw[v]:
                raise EmbeddingError(f"half-edge ({v!r}, {w!r}) already present")
            self._insert_only(v, w)
        else:
            self.add_half_edge_ccw(v, w, self._first[v])
            self._first[v] = w

    def set_rotation(self, v: Any, neighbors: Iterable[Any]) -> None:
        """Replace v's rotation with *neighbors* in clockwise order."""
        self.add_node(v)
        ordered = list(neighbors)
        if len(set(ordered)) != len(ordered):
            raise EmbeddingError(f"duplicate neighbor in rotation of {v!r}")
        self._cw[v] = {}
        self._ccw[v] = {}
        self._first[v] = ordered[0] if ordered else None
        k = len(ordered)
        for i, w in enumerate(ordered):
            self._cw[v][w] = ordered[(i + 1) % k]
            self._ccw[v][w] = ordered[(i - 1) % k]

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Any, ...]:
        """All registered nodes."""
        return tuple(self._first)

    def degree(self, v: Any) -> int:
        """Number of half-edges leaving *v*."""
        self._require_node(v)
        return len(self._cw[v])

    def has_half_edge(self, v: Any, w: Any) -> bool:
        """True if half-edge ``(v, w)`` is present."""
        return v in self._cw and w in self._cw[v]

    def next_cw(self, v: Any, w: Any) -> Any:
        """Neighbor following *w* clockwise in v's rotation."""
        try:
            return self._cw[v][w]
        except KeyError:
            raise EmbeddingError(f"half-edge ({v!r}, {w!r}) not present") from None

    def next_ccw(self, v: Any, w: Any) -> Any:
        """Neighbor preceding *w* (counterclockwise) in v's rotation."""
        try:
            return self._ccw[v][w]
        except KeyError:
            raise EmbeddingError(f"half-edge ({v!r}, {w!r}) not present") from None

    def rotation(self, v: Any) -> List[Any]:
        """Clockwise neighbor list of *v*, starting at its first entry."""
        self._require_node(v)
        start = self._first[v]
        if start is None:
            return []
        out = [start]
        cur = self._cw[v][start]
        while cur != start:
            out.append(cur)
            cur = self._cw[v][cur]
        return out

    def half_edges(self) -> Iterator[HalfEdge]:
        """Iterate over all half-edges (v, w)."""
        for v in self._first:
            for w in self._cw[v]:
                yield (v, w)

    def to_dict(self) -> Dict[Any, List[Any]]:
        """Plain-dict snapshot ``{node: clockwise neighbor list}``."""
        return {v: self.rotation(v) for v in self._first}

    @classmethod
    def from_dict(cls, rotations: Dict[Any, Iterable[Any]]) -> "RotationSystem":
        """Build a rotation system from ``{node: clockwise neighbor list}``."""
        rs = cls()
        for v, order in rotations.items():
            rs.set_rotation(v, order)
        return rs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RotationSystem):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RotationSystem({self.to_dict()!r})"
