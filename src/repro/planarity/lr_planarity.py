"""Left-right planarity test with embedding extraction (from scratch).

This implements the de Fraysseix-Rosenstiehl left-right criterion in the
formulation of Brandes ("The left-right planarity test"), the same
algorithmic skeleton behind Boyer-Myrvold-class linear-time testers:

1. *Orientation phase*: a DFS orients the graph, computing ``height``,
   ``lowpt``, ``lowpt2`` and a ``nesting_depth`` ordering key per edge.
2. *Testing phase*: a second DFS over adjacency lists sorted by nesting
   depth maintains a stack of conflict pairs of back-edge intervals;
   an unresolvable conflict certifies non-planarity.
3. *Embedding phase*: the recorded ``ref``/``side`` relations assign each
   back edge to the left or right of its fundamental cycle, from which a
   clockwise rotation system is assembled.

In this reproduction the algorithm plays the role of the
Ghaffari-Haeupler distributed planar-embedding subroutine of paper
Section 2.2.2 (see DESIGN.md, substitution 1): it produces the
combinatorial embedding for each (planar) part, while the *distributed*
round cost of the GH algorithm is charged analytically by the Stage II
driver.

All DFS phases are iterative, so graphs with deep DFS trees (paths,
grids) do not hit Python's recursion limit.

Implementation correspondence note: the phase structure and the conflict
pair bookkeeping follow Brandes' published pseudocode, which is also the
basis of networkx's checker -- networkx is used in the test-suite as an
*oracle* only; this module shares no code with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..errors import GraphInputError
from .rotation import RotationSystem

Edge = Tuple[Any, Any]


class _Interval:
    """An interval of back edges, identified by its low and high edges."""

    __slots__ = ("low", "high")

    def __init__(self, low: Optional[Edge] = None, high: Optional[Edge] = None):
        self.low = low
        self.high = high

    def empty(self) -> bool:
        return self.low is None and self.high is None

    def copy(self) -> "_Interval":
        return _Interval(self.low, self.high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval({self.low}, {self.high})"


class _ConflictPair:
    """A pair of (left, right) intervals of back edges."""

    __slots__ = ("L", "R")

    def __init__(
        self,
        left: Optional[_Interval] = None,
        right: Optional[_Interval] = None,
    ):
        self.L = left if left is not None else _Interval()
        self.R = right if right is not None else _Interval()

    def swap(self) -> None:
        self.L, self.R = self.R, self.L

    def lowest(self, lowpt: Dict[Edge, int]) -> int:
        if self.L.empty():
            return lowpt[self.R.low]
        if self.R.empty():
            return lowpt[self.L.low]
        return min(lowpt[self.L.low], lowpt[self.R.low])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConflictPair(L={self.L}, R={self.R})"


@dataclass
class PlanarityResult:
    """Outcome of :func:`check_planarity`.

    Attributes:
        is_planar: verdict.
        embedding: a clockwise :class:`RotationSystem` when planar,
            otherwise ``None``.
    """

    is_planar: bool
    embedding: Optional[RotationSystem] = None

    def __bool__(self) -> bool:
        return self.is_planar


class _LRPlanarity:
    """Single-use state machine for one planarity check."""

    def __init__(self, graph: nx.Graph):
        if graph.is_directed() or graph.is_multigraph():
            raise GraphInputError("planarity check requires a simple undirected graph")
        if any(u == v for u, v in graph.edges()):
            raise GraphInputError("planarity check does not support self-loops")
        self.graph = graph
        self.adjs: Dict[Any, List[Any]] = {
            v: list(graph.neighbors(v)) for v in graph.nodes()
        }
        self.height: Dict[Any, Optional[int]] = {v: None for v in graph.nodes()}
        self.parent_edge: Dict[Any, Optional[Edge]] = {v: None for v in graph.nodes()}
        self.oriented_adj: Dict[Any, List[Any]] = {v: [] for v in graph.nodes()}
        self.lowpt: Dict[Edge, int] = {}
        self.lowpt2: Dict[Edge, int] = {}
        self.nesting_depth: Dict[Edge, int] = {}
        self.ref: Dict[Edge, Optional[Edge]] = {}
        self.side: Dict[Edge, int] = {}
        self.S: List[_ConflictPair] = []
        self.stack_bottom: Dict[Edge, Optional[_ConflictPair]] = {}
        self.lowpt_edge: Dict[Edge, Edge] = {}
        self.ordered_adjs: Dict[Any, List[Any]] = {}
        self.roots: List[Any] = []
        self.embedding = RotationSystem()
        self.left_ref: Dict[Any, Any] = {}
        self.right_ref: Dict[Any, Any] = {}

    # -- phase 1: orientation --------------------------------------------------

    def dfs_orientation(self, root: Any) -> None:
        oriented = set()
        dfs_stack = [root]
        ind: Dict[Any, int] = {}
        skip_init: Dict[Edge, bool] = {}

        while dfs_stack:
            v = dfs_stack.pop()
            e = self.parent_edge[v]
            adj = self.adjs[v]
            i = ind.get(v, 0)
            descended = False
            while i < len(adj):
                w = adj[i]
                vw = (v, w)
                if not skip_init.get(vw, False):
                    if (v, w) in oriented or (w, v) in oriented:
                        i += 1
                        continue
                    oriented.add(vw)
                    self.oriented_adj[v].append(w)
                    self.lowpt[vw] = self.height[v]
                    self.lowpt2[vw] = self.height[v]
                    self.ref[vw] = None
                    self.side[vw] = 1
                    if self.height[w] is None:  # tree edge: descend
                        self.parent_edge[w] = vw
                        self.height[w] = self.height[v] + 1
                        ind[v] = i
                        skip_init[vw] = True
                        dfs_stack.append(v)
                        dfs_stack.append(w)
                        descended = True
                        break
                    # back edge
                    self.lowpt[vw] = self.height[w]
                # postprocessing of edge vw (back edge now, or tree edge
                # after its subtree has completed)
                self.nesting_depth[vw] = 2 * self.lowpt[vw]
                if self.lowpt2[vw] < self.height[v]:  # chordal
                    self.nesting_depth[vw] += 1
                if e is not None:
                    if self.lowpt[vw] < self.lowpt[e]:
                        self.lowpt2[e] = min(self.lowpt[e], self.lowpt2[vw])
                        self.lowpt[e] = self.lowpt[vw]
                    elif self.lowpt[vw] > self.lowpt[e]:
                        self.lowpt2[e] = min(self.lowpt2[e], self.lowpt[vw])
                    else:
                        self.lowpt2[e] = min(self.lowpt2[e], self.lowpt2[vw])
                i += 1
            if not descended:
                ind[v] = i

    # -- phase 2: testing --------------------------------------------------------

    def _top(self) -> Optional[_ConflictPair]:
        return self.S[-1] if self.S else None

    def _conflicting(self, interval: _Interval, b: Edge) -> bool:
        return not interval.empty() and self.lowpt[interval.high] > self.lowpt[b]

    def dfs_testing(self, root: Any) -> bool:
        dfs_stack = [root]
        ind: Dict[Any, int] = {}
        skip_init: Dict[Edge, bool] = {}

        while dfs_stack:
            v = dfs_stack.pop()
            e = self.parent_edge[v]
            adj = self.ordered_adjs[v]
            i = ind.get(v, 0)
            descended = False
            while i < len(adj):
                w = adj[i]
                ei = (v, w)
                if not skip_init.get(ei, False):
                    self.stack_bottom[ei] = self._top()
                    if ei == self.parent_edge[w]:  # tree edge: descend
                        ind[v] = i
                        skip_init[ei] = True
                        dfs_stack.append(v)
                        dfs_stack.append(w)
                        descended = True
                        break
                    # back edge
                    self.lowpt_edge[ei] = ei
                    self.S.append(_ConflictPair(right=_Interval(ei, ei)))
                # integrate new return edges
                if self.lowpt[ei] < self.height[v]:
                    if w == adj[0]:  # first child/edge inherits directly
                        self.lowpt_edge[e] = self.lowpt_edge[ei]
                    elif not self.add_constraints(ei, e):
                        return False  # non-planar
                i += 1
            if descended:
                continue
            ind[v] = i
            if e is not None:
                self.remove_back_edges(e)
        return True

    def add_constraints(self, ei: Edge, e: Edge) -> bool:
        P = _ConflictPair()
        # merge return edges of e_i into P.R
        while True:
            Q = self.S.pop()
            if not Q.L.empty():
                Q.swap()
            if not Q.L.empty():
                return False  # non-planar
            if self.lowpt[Q.R.low] > self.lowpt[e]:
                # merge intervals
                if P.R.empty():
                    P.R.high = Q.R.high
                else:
                    self.ref[P.R.low] = Q.R.high
                P.R.low = Q.R.low
            else:
                # align
                self.ref[Q.R.low] = self.lowpt_edge[e]
            if self._top() is self.stack_bottom[ei]:
                break
        # merge conflicting return edges of e_1..e_{i-1} into P.L
        while self._conflicting(self._top().L, ei) or self._conflicting(
            self._top().R, ei
        ):
            Q = self.S.pop()
            if self._conflicting(Q.R, ei):
                Q.swap()
            if self._conflicting(Q.R, ei):
                return False  # non-planar
            # merge interval below lowpt(e_i) into P.R
            self.ref[P.R.low] = Q.R.high
            if Q.R.low is not None:
                P.R.low = Q.R.low
            if P.L.empty():
                P.L.high = Q.L.high
            else:
                self.ref[P.L.low] = Q.L.high
            P.L.low = Q.L.low
        if not (P.L.empty() and P.R.empty()):
            self.S.append(P)
        return True

    def remove_back_edges(self, e: Edge) -> None:
        u = e[0]
        # trim back edges ending at parent u: drop entire conflict pairs
        while self.S and self.S[-1].lowest(self.lowpt) == self.height[u]:
            P = self.S.pop()
            if P.L.low is not None:
                self.side[P.L.low] = -1
        if self.S:  # one more conflict pair to consider
            P = self.S.pop()
            # trim left interval
            while P.L.high is not None and P.L.high[1] == u:
                P.L.high = self.ref[P.L.high]
            if P.L.high is None and P.L.low is not None:
                self.ref[P.L.low] = P.R.low
                self.side[P.L.low] = -1
                P.L.low = None
            # trim right interval
            while P.R.high is not None and P.R.high[1] == u:
                P.R.high = self.ref[P.R.high]
            if P.R.high is None and P.R.low is not None:
                self.ref[P.R.low] = P.L.low
                self.side[P.R.low] = -1
                P.R.low = None
            self.S.append(P)
        # side of e is the side of a highest return edge
        if self.lowpt[e] < self.height[u]:  # e has return edge
            top = self.S[-1]
            hl = top.L.high
            hr = top.R.high
            if hl is not None and (hr is None or self.lowpt[hl] > self.lowpt[hr]):
                self.ref[e] = hl
            else:
                self.ref[e] = hr

    # -- phase 3: embedding -------------------------------------------------------

    def _resolve_side(self, e: Edge) -> int:
        """Resolve the absolute side of *e* through its ref chain."""
        chain: List[Edge] = []
        cur: Optional[Edge] = e
        while cur is not None and self.ref[cur] is not None:
            chain.append(cur)
            cur = self.ref[cur]
        for edge in reversed(chain):
            parent = self.ref[edge]
            self.side[edge] = self.side[edge] * self.side[parent]
            self.ref[edge] = None
        return self.side[e]

    def dfs_embedding(self, root: Any) -> None:
        dfs_stack = [root]
        ind: Dict[Any, int] = {}

        while dfs_stack:
            v = dfs_stack.pop()
            adj = self.ordered_adjs[v]
            i = ind.get(v, 0)
            descended = False
            while i < len(adj):
                w = adj[i]
                i += 1
                ei = (v, w)
                if ei == self.parent_edge[w]:  # tree edge
                    self.embedding.add_half_edge_first(w, v)
                    self.left_ref[v] = w
                    self.right_ref[v] = w
                    ind[v] = i
                    dfs_stack.append(v)
                    dfs_stack.append(w)
                    descended = True
                    break
                # back edge: insert the reversed half-edge at the ancestor
                if self.side[ei] == 1:
                    self.embedding.add_half_edge_cw(w, v, self.right_ref[w])
                else:
                    self.embedding.add_half_edge_ccw(w, v, self.left_ref[w])
                    self.left_ref[w] = v
            if not descended:
                ind[v] = i

    # -- driver ---------------------------------------------------------------

    def run(self) -> PlanarityResult:
        n = self.graph.number_of_nodes()
        m = self.graph.number_of_edges()
        if n > 2 and m > 3 * n - 6:
            return PlanarityResult(False, None)

        # Phase 1 on every component.
        for v in self.graph.nodes():
            if self.height[v] is None:
                self.height[v] = 0
                self.roots.append(v)
                self.dfs_orientation(v)

        # Phase 2.
        for v in self.graph.nodes():
            self.ordered_adjs[v] = sorted(
                self.oriented_adj[v], key=lambda w, v=v: self.nesting_depth[(v, w)]
            )
        for root in self.roots:
            if not self.dfs_testing(root):
                return PlanarityResult(False, None)

        # Phase 3: apply signs, re-sort, and build the rotation system.
        for v in self.graph.nodes():
            for w in self.oriented_adj[v]:
                e = (v, w)
                self.nesting_depth[e] *= self._resolve_side(e)
        for v in self.graph.nodes():
            self.ordered_adjs[v] = sorted(
                self.oriented_adj[v], key=lambda w, v=v: self.nesting_depth[(v, w)]
            )
            self.embedding.add_node(v)
            previous = None
            for w in self.ordered_adjs[v]:
                self.embedding.add_half_edge_cw(v, w, previous)
                previous = w
        for root in self.roots:
            self.dfs_embedding(root)
        return PlanarityResult(True, self.embedding)


def check_planarity(graph: nx.Graph) -> PlanarityResult:
    """Test planarity of *graph*; return verdict plus embedding if planar.

    The embedding is a clockwise :class:`RotationSystem` covering every
    node and edge of the graph.  Use
    :func:`repro.planarity.embedding.verify_planar_embedding` for an
    independent Euler-formula certificate.
    """
    return _LRPlanarity(graph).run()


def is_planar(graph: nx.Graph) -> bool:
    """Convenience wrapper returning only the planarity verdict."""
    return check_planarity(graph).is_planar
