"""Face traversal and Euler-formula verification for rotation systems.

Given a rotation system, the faces of the induced cellular embedding are
the orbits of the permutation ``next(u, v) = (v, cw_v(u))`` on half-edges.
For a connected graph the embedding is planar (genus 0) iff

    n - m + f == 2.

:func:`verify_planar_embedding` checks this per connected component and
additionally validates that the rotation system matches the graph's edge
set exactly.  This gives an *independent* certificate for embeddings
produced by the LR algorithm: any rotation bug shows up as a genus
violation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

import networkx as nx

from ..errors import EmbeddingError
from .rotation import HalfEdge, RotationSystem


def match_graph(rotations: RotationSystem, graph: nx.Graph) -> None:
    """Raise :class:`EmbeddingError` unless rotations match *graph* exactly.

    Every node of the graph must be present and every undirected edge must
    appear as exactly two half-edges (one per direction); no extras.
    """
    graph_nodes = set(graph.nodes())
    rot_nodes = set(rotations.nodes)
    if graph_nodes != rot_nodes:
        raise EmbeddingError(
            f"node sets differ: graph-only={graph_nodes - rot_nodes!r}, "
            f"rotation-only={rot_nodes - graph_nodes!r}"
        )
    half: Set[HalfEdge] = set(rotations.half_edges())
    expected: Set[HalfEdge] = set()
    for u, v in graph.edges():
        expected.add((u, v))
        expected.add((v, u))
    if half != expected:
        missing = expected - half
        extra = half - expected
        raise EmbeddingError(
            f"half-edge sets differ: missing={sorted(missing)[:4]!r}..., "
            f"extra={sorted(extra)[:4]!r}..."
        )


def faces(rotations: RotationSystem) -> List[List[HalfEdge]]:
    """Return the faces of the embedding as lists of half-edges.

    Each half-edge belongs to exactly one face; the face containing
    ``(u, v)`` continues with ``(v, cw_v(u))``.
    """
    remaining: Set[HalfEdge] = set(rotations.half_edges())
    out: List[List[HalfEdge]] = []
    while remaining:
        start = remaining.pop()
        face = [start]
        u, v = start
        while True:
            nxt = (v, rotations.next_cw(v, u))
            if nxt == start:
                break
            if nxt not in remaining:
                raise EmbeddingError(
                    f"face traversal revisited half-edge {nxt!r}; "
                    "rotation system is inconsistent"
                )
            remaining.discard(nxt)
            face.append(nxt)
            u, v = nxt
        out.append(face)
    return out


def genus_by_component(
    rotations: RotationSystem, graph: nx.Graph
) -> Dict[Any, Tuple[int, int, int, int]]:
    """Per-component ``(n, m, f, genus)`` from Euler's formula.

    The returned dict is keyed by an arbitrary representative node of
    each connected component.  ``genus = (2 - n + m - f) / 2``.
    """
    match_graph(rotations, graph)
    all_faces = faces(rotations)
    # Assign each face to the component of any node it touches; isolated
    # nodes have no half-edges and contribute one implicit face.
    component_of: Dict[Any, Any] = {}
    for comp in nx.connected_components(graph):
        rep = min(comp, key=repr)
        for node in comp:
            component_of[node] = rep
    face_count: Dict[Any, int] = {}
    for face in all_faces:
        rep = component_of[face[0][0]]
        face_count[rep] = face_count.get(rep, 0) + 1
    result: Dict[Any, Tuple[int, int, int, int]] = {}
    for comp in nx.connected_components(graph):
        rep = min(comp, key=repr)
        sub_n = len(comp)
        sub_m = graph.subgraph(comp).number_of_edges()
        f = face_count.get(rep, 1 if sub_m == 0 else 0)
        euler = sub_n - sub_m + f
        genus2 = 2 - euler
        if genus2 % 2 != 0 or genus2 < 0:
            raise EmbeddingError(
                f"component {rep!r} has impossible Euler characteristic "
                f"{euler} (n={sub_n}, m={sub_m}, f={f})"
            )
        result[rep] = (sub_n, sub_m, f, genus2 // 2)
    return result


def is_planar_embedding(rotations: RotationSystem, graph: nx.Graph) -> bool:
    """True iff the rotation system is a genus-0 embedding of *graph*."""
    try:
        stats = genus_by_component(rotations, graph)
    except EmbeddingError:
        return False
    return all(genus == 0 for (_n, _m, _f, genus) in stats.values())


def verify_planar_embedding(rotations: RotationSystem, graph: nx.Graph) -> None:
    """Raise :class:`EmbeddingError` unless rotations planarly embed *graph*."""
    stats = genus_by_component(rotations, graph)
    bad = {rep: s for rep, s in stats.items() if s[3] != 0}
    if bad:
        raise EmbeddingError(f"non-planar embedding: component genus {bad!r}")


def identity_rotation(graph: nx.Graph) -> RotationSystem:
    """An arbitrary (id-sorted) rotation system for *graph*.

    This is the fallback ordering used for parts on which the embedding
    algorithm fails to produce a planar embedding: the paper's
    Ghaffari-Haeupler step "is possible that an ordering is determined
    though Gj is not planar" -- detection then falls to the violating-edge
    machinery of Stage II, which is sound for arbitrary orderings.
    """
    rs = RotationSystem()
    for v in graph.nodes():
        rs.set_rotation(v, sorted(graph.neighbors(v), key=repr))
    return rs
