"""Deterministic seed derivation shared by the simulator and the runtime.

Historically per-node RNGs were seeded with ad-hoc tuple reprs such as
``(self.seed, repr(node)).__repr__()``, which ties reproducibility to the
exact formatting of :func:`repr` and to Python's string hashing.  The
helpers here derive integer seeds through SHA-256 over a canonical,
length-prefixed encoding of the seed components, so

* the same components always yield the same seed, on every Python
  version and platform, and
* distinct component tuples yield independent streams (no accidental
  collisions such as ``("a", "bc")`` vs ``("ab", "c")``).

Used by :meth:`repro.congest.network.CongestNetwork._node_rng`,
:func:`repro.testers.planarity.stage2_over_partition`, and the
:mod:`repro.runtime` executor's per-job seeding.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

_SEED_BITS = 64


def _canonical_token(part: Any) -> bytes:
    """A type-tagged byte encoding of one seed component.

    Primitives get explicit tags so that e.g. ``1``, ``1.0``, ``True``
    and ``"1"`` all produce distinct tokens; everything else falls back
    to its :func:`repr`, which must therefore be stable for the caller's
    own types (node ids in this repo are ints, strs, or tuples of those).
    """
    if part is None:
        return b"none:"
    if isinstance(part, bool):
        return b"bool:" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"int:" + str(part).encode("ascii")
    if isinstance(part, float):
        return b"float:" + part.hex().encode("ascii")
    if isinstance(part, str):
        return b"str:" + part.encode("utf-8")
    if isinstance(part, bytes):
        return b"bytes:" + part
    if isinstance(part, (tuple, list)):
        inner = b"".join(
            len(tok).to_bytes(4, "big") + tok
            for tok in (_canonical_token(p) for p in part)
        )
        return b"seq:" + inner
    return b"repr:" + repr(part).encode("utf-8")


def derive_seed(*parts: Any) -> int:
    """Derive a 64-bit integer seed from *parts* via SHA-256.

    >>> derive_seed(0, "stage2") == derive_seed(0, "stage2")
    True
    >>> derive_seed(0, "stage2") != derive_seed(1, "stage2")
    True
    """
    digest = hashlib.sha256()
    for part in parts:
        token = _canonical_token(part)
        digest.update(len(token).to_bytes(4, "big"))
        digest.update(token)
    return int.from_bytes(digest.digest()[: _SEED_BITS // 8], "big")


def derive_rng(*parts: Any) -> random.Random:
    """A :class:`random.Random` seeded with :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))
