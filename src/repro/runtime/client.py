"""The ``Client`` facade: one ``submit(SweepSpec)`` for every target.

This is the library face of the runtime.  The same call shape --
``Client(...).submit(sweep)`` returning an iterator of records in the
sweep's canonical expansion order -- works against three targets:

* **a remote service** (``Client(endpoint="host:port")``): dials a
  :class:`~repro.runtime.service.SweepService`, streams ``record``
  frames as the fleet completes jobs, and reorders them client-side;
* **a local backend** (``Client(backend="process")`` etc.): runs the
  expansion through :func:`~repro.runtime.executor.iter_jobs` on any
  registered backend, with the same optional disk cache;
* **the in-process serial path** (the default): no fleet, no pools --
  jobs run inline as the iterator is consumed.

Records are byte-identical across all three (specs carry all
randomness), so code written against the facade is deployment-
agnostic: develop against ``backend="serial"``, point the same call
at a service endpoint in production.

The remote path is a sync wrapper over an async core: ``submit``
eagerly sends the ``submit`` frame from a background thread running
:meth:`Client.submit_async`'s machinery, and the returned iterator
drains a queue bridge -- so the server starts scheduling the sweep
the moment ``submit`` returns, not on the first ``next()``.

Typical use::

    from repro.runtime import Client, SweepSpec

    sweep = SweepSpec.make("test", families=["grid"], ns=[64, 100],
                           epsilon=[0.5, 0.25])
    with Client(endpoint="127.0.0.1:7077") as client:
        for record in client.submit(sweep):
            print(record["n"], record["accepted"])
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
from typing import Callable, Dict, Iterator, List, Optional

from .cache import ResultCache
from .codec import (
    GLOBAL_SHAPES,
    WireProtocolError,
    decode_record,
    encode_wire_frame,
)
from .config import RunConfig
from .executor import iter_jobs
from .jobs import Record
from .remote import PROTOCOL_VERSION, parse_endpoint, read_bframe
from .sweeps import SweepSpec

_SENTINEL = object()

_PROGRESS_FIELDS = ("done", "total", "queued", "inflight", "workers")


class ServiceError(RuntimeError):
    """The service rejected, aborted, or truncated a submission."""


class Client:
    """Submit sweeps to a service, a local backend, or in-process.

    Args:
        endpoint: ``host:port`` of a running ``repro-planarity serve``
            instance; when set, submissions go over the wire and the
            other execution arguments are ignored.
        backend: local execution backend name or instance (``"serial"``,
            ``"process"``, ``"async"``; see
            :data:`~repro.runtime.executor.BACKENDS`) used when no
            *endpoint* is configured.
        cache_dir: optional sharded-store directory for the local path
            (hits stream back without executing, like the service's
            store hits).
        config: optional :class:`~repro.runtime.config.RunConfig` for
            the local path (batch coalescing etc.).
        name: client display name shown in the service's logs,
            telemetry gauges, and dispatch log.
    """

    def __init__(
        self,
        endpoint: Optional[str] = None,
        backend="serial",
        cache_dir: Optional[str] = None,
        config: Optional[RunConfig] = None,
        name: Optional[str] = None,
    ):
        self.endpoint = endpoint
        self.backend = backend
        self.cache_dir = cache_dir
        self.config = config
        self.name = name

    def submit(
        self,
        sweep: SweepSpec,
        on_progress: Optional[Callable[[Dict], None]] = None,
    ) -> Iterator[Record]:
        """Execute *sweep*, yielding records in canonical expansion order.

        The iterator is identical whichever target the client points
        at.  *on_progress* (optional) receives ``{"done", "total",
        "queued", "inflight", "workers"}`` dicts as execution
        advances; it is called on the consuming thread.

        Raises :class:`ServiceError` when the service rejects the
        submission, aborts it (a job failed deterministically), or
        the connection dies before every record arrived.
        """
        if self.endpoint:
            return self._submit_remote(sweep, on_progress)
        return self._submit_local(sweep, on_progress)

    def run(self, sweep: SweepSpec) -> List[Record]:
        """``submit`` drained into a list (canonical expansion order)."""
        return list(self.submit(sweep))

    def close(self) -> None:
        """Release resources (connections are per-submit; no-op today)."""

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- local path -----------------------------------------------------------

    def _submit_local(
        self,
        sweep: SweepSpec,
        on_progress: Optional[Callable[[Dict], None]],
    ) -> Iterator[Record]:
        specs = sweep.expand()
        cache = (
            ResultCache(disk_dir=self.cache_dir) if self.cache_dir else None
        )

        config = self.config if self.config is not None else RunConfig()

        def generate():
            buffer: Dict[int, Record] = {}
            next_index = 0
            done = 0
            # Export the config's env knobs for the run's duration so
            # they reach job code (and pool workers) the same way
            # run_sweep's do; restored when the iterator finishes.
            with config.export():
                for index, record, _from_cache in iter_jobs(
                    specs,
                    backend=self.backend,
                    cache=cache,
                    config=config,
                ):
                    done += 1
                    buffer[index] = record
                    while next_index in buffer:
                        yield buffer.pop(next_index)
                        next_index += 1
                    if on_progress is not None:
                        on_progress({
                            "done": done,
                            "total": len(specs),
                            "queued": len(specs) - done,
                            "inflight": 0,
                            "workers": 0,
                        })

        return generate()

    # -- remote path ----------------------------------------------------------

    def _submit_remote(
        self,
        sweep: SweepSpec,
        on_progress: Optional[Callable[[Dict], None]],
    ) -> Iterator[Record]:
        out: "queue.Queue" = queue.Queue()
        ctrl: Dict = {"loop": None, "cancel": None, "started": threading.Event()}

        def pump():
            try:
                asyncio.run(self._drive_submission(sweep, out, ctrl))
            except BaseException as exc:  # surfaced by the iterator
                out.put(("error", exc))
            finally:
                out.put(_SENTINEL)

        thread = threading.Thread(
            target=pump, name="repro-client-submit", daemon=True
        )
        # Eager: the submit frame is on the wire (or the dial has
        # failed) by the time submit() returns, so concurrent clients
        # contend for the fleet immediately, not on first next().
        thread.start()
        ctrl["started"].wait()
        return self._drain(out, thread, ctrl, sweep.size, on_progress)

    def _drain(
        self,
        out: "queue.Queue",
        thread: threading.Thread,
        ctrl: Dict,
        total: int,
        on_progress: Optional[Callable[[Dict], None]],
    ) -> Iterator[Record]:
        buffer: Dict[int, Record] = {}
        next_index = 0
        verdict: Optional[dict] = None
        completed = False
        try:
            while True:
                item = out.get()
                if item is _SENTINEL:
                    break
                kind = item[0]
                if kind == "error":
                    raise item[1]
                if kind == "progress":
                    if on_progress is not None:
                        on_progress(item[1])
                    continue
                if kind == "verdict":
                    verdict = item[1]
                    continue
                _kind, index, record = item
                buffer[index] = record
                while next_index in buffer:
                    yield buffer.pop(next_index)
                    next_index += 1
            completed = True
            if verdict is not None and not verdict.get("ok"):
                raise ServiceError(
                    verdict.get("error")
                    or "submission cancelled by the service"
                )
            if verdict is None:
                raise ServiceError(
                    "service closed the connection before the verdict"
                )
            if next_index != total:
                raise ServiceError(
                    f"service delivered {next_index} of {total} records"
                )
        finally:
            if not completed:
                # The consumer abandoned the iterator mid-sweep (or an
                # error unwound it): tell the service to cancel our
                # queued jobs instead of leaving them to run blind.
                self._request_cancel(ctrl)
            thread.join()

    @staticmethod
    def _request_cancel(ctrl: Dict) -> None:
        loop, cancel = ctrl.get("loop"), ctrl.get("cancel")
        if loop is None or cancel is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(cancel.set)
        except RuntimeError:
            pass  # loop already gone: the connection is closed anyway

    async def _drive_submission(
        self, sweep: SweepSpec, out: "queue.Queue", ctrl: Dict
    ) -> None:
        """The async core: one connection, one submission, one verdict."""
        ctrl["loop"] = asyncio.get_running_loop()
        cancel = asyncio.Event()
        ctrl["cancel"] = cancel
        try:
            host, port = parse_endpoint(self.endpoint)
            reader, writer = await asyncio.open_connection(host, port)
        finally:
            ctrl["started"].set()
        try:
            writer.write(encode_wire_frame({
                "op": "submit",
                "protocol": PROTOCOL_VERSION,
                "client": self.name,
                "sweep_json": json.dumps(
                    sweep.to_payload(), sort_keys=True, separators=(",", ":")
                ),
            }))
            await writer.drain()
            while True:
                frame_task = asyncio.ensure_future(read_bframe(reader))
                cancel_task = asyncio.ensure_future(cancel.wait())
                done, _ = await asyncio.wait(
                    {frame_task, cancel_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                cancel_task.cancel()
                if frame_task not in done:
                    frame_task.cancel()
                    await self._send_cancel(reader, writer)
                    return
                frame = frame_task.result()  # WireProtocolError propagates
                if frame is None:
                    out.put((
                        "error",
                        ServiceError(
                            "service closed the connection before the verdict"
                        ),
                    ))
                    return
                op = frame.get("op")
                if op == "reject":
                    out.put((
                        "error",
                        ServiceError(
                            f"service rejected submission: "
                            f"{frame.get('reason')}"
                        ),
                    ))
                    return
                if op == "record":
                    for block in frame.get("shapes") or ():
                        GLOBAL_SHAPES.register_block(block)
                    record = decode_record(bytes(frame["record_pkd"]))
                    out.put(("record", int(frame["index"]), record))
                    continue
                if op == "progress":
                    out.put((
                        "progress",
                        {k: frame.get(k) for k in _PROGRESS_FIELDS},
                    ))
                    continue
                if op == "verdict":
                    out.put(("verdict", frame))
                    return
                # Unknown op: ignore (forward-compatible with new
                # server-side frame types).
        finally:
            writer.close()

    @staticmethod
    async def _send_cancel(reader, writer) -> None:
        """Best-effort cancel: ask, then wait briefly for the verdict."""
        try:
            writer.write(encode_wire_frame({"op": "cancel"}))
            await writer.drain()
            while True:
                frame = await asyncio.wait_for(read_bframe(reader), timeout=5.0)
                if frame is None or frame.get("op") == "verdict":
                    return
        except (asyncio.TimeoutError, WireProtocolError, OSError):
            pass
