"""Content-addressed result cache for the batch runtime.

Cache keys are ``sha256(kind || graph fingerprint || config digest)``:

* the **graph fingerprint** hashes the canonical edge list of the actual
  input graph (sorted nodes + sorted edges), so two specs that generate
  the same graph share entries regardless of how they were phrased;
* the **config digest** hashes the spec's canonical JSON minus the graph
  coordinates, so any change to ``epsilon``, ``method``, sampling knobs,
  or the algorithm seed invalidates the entry.

Entries live in a bounded in-memory LRU; an optional on-disk layer (the
sharded single-index :class:`~repro.runtime.store.ShardedStore` --
append-only shard files, fcntl-locked multi-writer appends, newest-wins
compaction) persists them across processes and CLI invocations, so
concurrent sweeps, shard runs, and async workers all share one cache.
Only flat primitive records (see :mod:`repro.runtime.jobs`) are stored,
so JSON round-trips are lossless.

Coordinate-derived cache keys (fingerprint from generator coordinates,
skipping graph generation on hits) are the **default**; set
``REPRO_CACHE_COORD_KEYS=0`` to fall back to content-addressed keys.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

import networkx as nx

from .jobs import JobSpec, Record, spec_needs_graph
from .store import ClearReport, GCReport, ShardedStore

COORD_KEYS_ENV_VAR = "REPRO_CACHE_COORD_KEYS"


def coord_keys_enabled() -> bool:
    """Whether coordinate-derived cache keys are selected (the default).

    Coordinate keys skip graph generation entirely on cache hits; they
    are sound because every bundled generator is deterministic in its
    coordinates (certified by the determinism cross-check test over all
    planar and far families).  ``REPRO_CACHE_COORD_KEYS=0`` opts out,
    restoring content-addressed fingerprints of the generated graph.
    """
    return os.environ.get(COORD_KEYS_ENV_VAR, "1") != "0"


def coordinate_fingerprint(spec: JobSpec) -> str:
    """Graph fingerprint derived from generator coordinates alone.

    Hashes ``(family/far, n, effective graph seed)`` instead of the
    generated edge list, so a cache hit skips graph generation entirely.
    Sound because the bundled generators are deterministic in those
    coordinates (the cross-check test regenerates and compares content
    fingerprints).  The ``coord:`` prefix keeps this key space disjoint
    from content-addressed fingerprints -- flipping the mode never
    aliases entries, it only re-keys them.
    """
    payload = json.dumps(
        {
            "far": spec.far,
            "family": spec.family,
            "n": spec.n,
            "graph_seed": spec.effective_graph_seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return "coord:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def graph_fingerprint(graph: nx.Graph) -> str:
    """SHA-256 over the canonical node and edge lists of *graph*.

    Nodes and edges are sorted by :func:`repr`; each undirected edge is
    normalized so ``(u, v)`` and ``(v, u)`` fingerprint identically.
    """
    digest = hashlib.sha256()
    for node in sorted(graph.nodes(), key=repr):
        token = repr(node).encode("utf-8")
        digest.update(b"n" + len(token).to_bytes(4, "big") + token)
    edges = sorted(
        tuple(sorted((u, v), key=repr)) for u, v in graph.edges()
    )
    for u, v in edges:
        token = (repr(u) + "|" + repr(v)).encode("utf-8")
        digest.update(b"e" + len(token).to_bytes(4, "big") + token)
    return digest.hexdigest()


def config_digest(spec: JobSpec) -> str:
    """SHA-256 over the non-graph part of the spec: kind + seed + config.

    The graph coordinates (family, n) are deliberately excluded -- the
    graph's identity is the fingerprint's job.  The seed stays in: it
    drives the algorithm's randomness, not just generation.
    """
    payload = json.dumps(
        {
            "kind": spec.kind,
            "seed": spec.seed,
            "config": [[k, repr(v)] for k, v in spec.config],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(spec: JobSpec, fingerprint: str) -> str:
    """The content address of *spec* run on a graph with *fingerprint*."""
    payload = f"{spec.kind}\x00{fingerprint}\x00{config_digest(spec)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_evictions: int = 0
    disk_bytes_reclaimed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary_line(self) -> str:
        """One-line rendering for CLI summaries."""
        parts = [
            f"hits={self.hits}",
            f"misses={self.misses}",
            f"hit_rate={self.hit_rate:.0%}",
            f"stores={self.stores}",
        ]
        if self.disk_hits:
            parts.append(f"disk_hits={self.disk_hits}")
        return " ".join(parts)


@dataclass
class ResultCache:
    """In-memory LRU over job records, with an optional sharded disk store.

    Args:
        max_entries: LRU capacity; oldest entries evict first.  The disk
            store (when configured) re-warms the LRU on hit.
        disk_dir: directory for the persistent sharded store
            (:class:`~repro.runtime.store.ShardedStore`); created on
            first write.  ``None`` keeps the cache memory-only.
            Multiple processes may point at one directory concurrently
            -- appends are fcntl-locked, so pool/async workers and
            parallel shard runs share a single cache.
        disk_shards: number of shard files for a newly-created store.
        disk_max_entries: live-entry cap the store enforces at
            compaction time (``None`` = unbounded).
        disk_format: record format for the store (``"rbin"`` /
            ``"jsonl"``); ``None`` follows the store's own resolution
            (persisted format, then ``REPRO_STORE_FORMAT``, then
            binary).
    """

    max_entries: int = 4096
    disk_dir: Optional[Path] = None
    disk_shards: int = 8
    disk_max_entries: Optional[int] = None
    disk_format: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, Record]" = field(default_factory=OrderedDict)
    _store: Optional[ShardedStore] = field(default=None, repr=False)

    def __post_init__(self):
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self._store = ShardedStore(
                self.disk_dir,
                shards=self.disk_shards,
                max_entries=self.disk_max_entries,
                record_format=self.disk_format,
            )

    @property
    def store_backend(self) -> Optional[ShardedStore]:
        """The sharded disk store, when configured."""
        return self._store

    def lookup(self, key: str) -> Optional[Record]:
        """Return the cached record for *key*, or ``None`` on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return dict(self._entries[key])
        if self._store is not None:
            record = self._store.get(key)
            if record is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._remember(key, record)
                return dict(record)
        self.stats.misses += 1
        return None

    def store(self, key: str, record: Record) -> None:
        """Insert *record* under *key* (memory, and disk when configured)."""
        self.stats.stores += 1
        self._remember(key, record)
        if self._store is not None:
            self._store.put(key, record)
            self.stats.disk_evictions = self._store.stats.evicted_entries
            self.stats.disk_bytes_reclaimed = (
                self._store.stats.bytes_reclaimed
            )

    def remember(self, key: str, record: Record) -> None:
        """Insert into the in-memory LRU only (disk untouched).

        The executor uses this when a backend's workers already
        appended the record to this cache's own disk store (the async
        backend with a shared ``store_dir``): a second ``put`` would
        double every line and halve the compaction headroom.
        """
        self.stats.stores += 1
        self._remember(key, record)

    def _remember(self, key: str, record: Record) -> None:
        self._entries[key] = dict(record)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self, disk: bool = False) -> ClearReport:
        """Drop the in-memory entries (and the disk store when *disk*).

        Returns a :class:`~repro.runtime.store.ClearReport` of evicted
        entries and bytes reclaimed (in-memory entries count as
        entries; bytes are disk bytes only).  The counts also land in
        ``stats.evictions`` / ``stats.disk_evictions`` /
        ``stats.disk_bytes_reclaimed``.
        """
        report = ClearReport(entries_removed=len(self._entries))
        self.stats.evictions += len(self._entries)
        self._entries.clear()
        if disk and self._store is not None:
            disk_report = self._store.clear()
            report += disk_report
            self.stats.disk_evictions += disk_report.entries_removed
            self.stats.disk_bytes_reclaimed += disk_report.bytes_reclaimed
        return report

    def gc(
        self,
        ttl: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> Optional[GCReport]:
        """Garbage-collect the disk store (see :meth:`ShardedStore.gc`).

        Entries the GC removed may survive in this process's in-memory
        LRU until they age out; other processes miss immediately.
        Returns ``None`` for a memory-only cache.  Removal counters
        land in ``stats.disk_evictions`` / ``disk_bytes_reclaimed``.
        """
        if self._store is None:
            return None
        report = self._store.gc(ttl=ttl, max_bytes=max_bytes)
        self.stats.disk_evictions += report.entries_removed
        self.stats.disk_bytes_reclaimed += report.bytes_reclaimed
        return report


# Keys derived per spec in one batch: the graph fingerprint is memoized
# on (family/far, n, seed) so a sweep over epsilon builds each graph once.
class KeyDeriver:
    """Computes cache keys for specs, memoizing fingerprints and graphs.

    Built graphs are retained (for the lifetime of the deriver, i.e. one
    batch) so in-process execution can reuse them instead of generating
    each input a second time after fingerprinting.

    With coordinate keys (``coord_keys=True``, or the
    ``REPRO_CACHE_COORD_KEYS=1`` environment default) the fingerprint
    comes from :func:`coordinate_fingerprint` and **no graph is built**
    while deriving keys -- a fully-cached batch then never touches the
    generators; misses build their graph lazily in the backend.
    """

    def __init__(self, coord_keys: Optional[bool] = None):
        self._fingerprints: Dict[Any, str] = {}
        self._graphs: Dict[Any, nx.Graph] = {}
        self.coord_keys = (
            coord_keys_enabled() if coord_keys is None else coord_keys
        )

    def _graph_id(self, spec: JobSpec) -> Any:
        return spec.graph_coordinates

    def key_for(self, spec: JobSpec) -> str:
        if not spec_needs_graph(spec):
            # Graphless kinds (audit jobs that build their own
            # instances) always key by coordinates: there is no input
            # graph to fingerprint, and the coordinate hash is cheap
            # enough not to memoize.
            return cache_key(spec, coordinate_fingerprint(spec))
        graph_id = self._graph_id(spec)
        fingerprint = self._fingerprints.get(graph_id)
        if fingerprint is None:
            if self.coord_keys:
                fingerprint = coordinate_fingerprint(spec)
            else:
                graph = spec.build_graph()
                fingerprint = graph_fingerprint(graph)
                self._graphs[graph_id] = graph
            self._fingerprints[graph_id] = fingerprint
        return cache_key(spec, fingerprint)

    def graph_for(self, spec: JobSpec) -> Optional[nx.Graph]:
        """The graph built while fingerprinting *spec*, if still held."""
        return self._graphs.get(self._graph_id(spec))
