"""Sharded on-disk record store: append-only shards + a compact index.

The seed cache persisted one JSON file per entry, which meant one
``open``/``stat`` pair per lookup, unbounded directory growth, and no
way for concurrent writers to coordinate beyond atomic renames.  This
module replaces that layer with a **sharded single-index store**:

* records append to one of ``shards`` JSONL files (``shard-SS.jsonl``);
  the shard is chosen by a stable hash of the key, so every process
  agrees on placement without coordination;
* each process keeps a **compact in-memory index** per shard (key ->
  byte offset of the newest line), built by scanning the shard once and
  refreshed *incrementally*: when another process appends, only the new
  tail is read, never the whole file;
* appends hold an ``fcntl`` exclusive lock on a per-shard lock file, so
  any number of pool workers / CLI invocations / async workers can
  write to one store concurrently without tearing lines;
* **compaction** rewrites a shard newest-wins, evicting the
  least-recently-touched entries beyond ``max_entries`` (recency is
  this process's append/lookup order -- an LRU approximation across
  processes) and reporting entries evicted + bytes reclaimed;
* every line carries an **append timestamp**, so long-lived fleet
  stores can be garbage-collected: :meth:`ShardedStore.gc` expires
  entries older than a TTL and shrinks the store to a byte budget with
  newest-wins retention, reporting entries removed + bytes reclaimed;
* one **metadata shard** (``meta-00.jsonl``, same locking and line
  format, exempt from caps/GC) holds small operational records --
  today the scheduler's per-kind/per-n wall-time cost table.

Durability model: a line is the unit of persistence.  Torn or corrupt
lines (crash mid-append without the lock discipline, disk trouble)
degrade to misses at scan time, never to crashes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX advisory locks; other platforms use an O_EXCL lock file.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import telemetry_enabled

Record = Dict[str, object]

DEFAULT_SHARDS = 8

META_SHARD = "meta-00"
"""Basename of the metadata shard (cost tables, operational records)."""


def _now() -> float:
    """Wall-clock used for entry timestamps (monkeypatchable in tests)."""
    return time.time()


def shard_of_key(key: str, shards: int) -> int:
    """Stable shard placement: independent of Python's hash seed."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass
class StoreStats:
    """Counters for one :class:`ShardedStore` instance."""

    appends: int = 0
    lookups: int = 0
    hits: int = 0
    compactions: int = 0
    evicted_entries: int = 0
    bytes_reclaimed: int = 0


@dataclass
class ClearReport:
    """What a destructive operation (clear / compaction) removed."""

    entries_removed: int = 0
    bytes_reclaimed: int = 0

    def __iadd__(self, other: "ClearReport") -> "ClearReport":
        self.entries_removed += other.entries_removed
        self.bytes_reclaimed += other.bytes_reclaimed
        return self


@dataclass
class GCReport:
    """Outcome of one :meth:`ShardedStore.gc` pass.

    ``entries_removed`` counts live entries dropped (TTL-expired plus
    byte-budget evictions); ``bytes_reclaimed`` additionally includes
    dead newest-wins duplicates rewritten away.
    """

    entries_removed: int = 0
    bytes_reclaimed: int = 0
    entries_kept: int = 0
    bytes_kept: int = 0
    expired_entries: int = 0
    evicted_entries: int = 0

    def __iadd__(self, other: "GCReport") -> "GCReport":
        self.entries_removed += other.entries_removed
        self.bytes_reclaimed += other.bytes_reclaimed
        self.entries_kept += other.entries_kept
        self.bytes_kept += other.bytes_kept
        self.expired_entries += other.expired_entries
        self.evicted_entries += other.evicted_entries
        return self


class _Shard:
    """One append-only JSONL file plus this process's index over it.

    ``index`` maps key -> byte offset of the newest line holding it,
    ordered by recency (move-to-end on append and on lookup).
    ``scanned`` is how far into the file the index is valid; anything
    past it was appended by another process and is folded in lazily.
    """

    __slots__ = ("path", "index", "scanned")

    def __init__(self, path: Path):
        self.path = path
        self.index: "OrderedDict[str, int]" = OrderedDict()
        self.scanned = 0

    def refresh(self) -> None:
        """Fold in lines appended since the last scan (cheap when none)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            # File vanished (clear() from another process): start over.
            self.index.clear()
            self.scanned = 0
            return
        if size < self.scanned:
            # Truncated behind our back (compaction elsewhere): rescan.
            self.index.clear()
            self.scanned = 0
        if size == self.scanned:
            return
        line = b"\n"
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.scanned)
                offset = self.scanned
                for line in handle:
                    if line.endswith(b"\n"):
                        key = _key_of_line(line)
                        if key is not None:
                            self.index[key] = offset
                            self.index.move_to_end(key)
                    offset += len(line)
        except OSError:
            # Shard disappeared mid-read (clear/compact race): the next
            # refresh rescans from scratch.
            self.index.clear()
            self.scanned = 0
            return
        # A trailing partial line (writer mid-append) stays unscanned
        # so the next refresh picks it up once it is complete.
        self.scanned = offset if line_complete(line) else offset - len(line)


def line_complete(line: bytes) -> bool:
    return line.endswith(b"\n")


def _key_of_line(line: bytes) -> Optional[str]:
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(payload, dict) and isinstance(payload.get("k"), str):
        return payload["k"]
    return None


@dataclass
class ShardedStore:
    """Multi-process-safe sharded record store under one directory.

    Args:
        root: store directory; created on first write.
        shards: number of shard files (fixed at creation; persisted in
            ``store.json`` so every opener agrees).
        max_entries: per-store live-entry cap enforced at compaction
            time (``None`` = unbounded).  Eviction order is this
            process's recency order (append/lookup), oldest first.
        compact_factor: a shard compacts automatically when its file
            holds more than ``compact_factor`` times its live entries
            (dead newest-wins duplicates) and at least ``shards`` lines.
    """

    root: Path
    shards: int = DEFAULT_SHARDS
    max_entries: Optional[int] = None
    compact_factor: float = 4.0
    stats: StoreStats = field(default_factory=StoreStats)
    _shards: List[_Shard] = field(default_factory=list, repr=False)
    _lines: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.root = Path(self.root)
        meta = self.root / "store.json"
        if meta.is_file():
            try:
                persisted = json.loads(meta.read_text())
                self.shards = int(persisted.get("shards", self.shards))
            except (ValueError, OSError):
                pass
        self._shards = [
            _Shard(self.root / f"shard-{i:02d}.jsonl")
            for i in range(self.shards)
        ]
        self._lines = [0] * self.shards

    # -- layout helpers -------------------------------------------------------

    def _ensure_root(self) -> None:
        if not self.root.is_dir():
            self.root.mkdir(parents=True, exist_ok=True)
        meta = self.root / "store.json"
        if not meta.is_file():
            tmp = meta.with_suffix(".tmp")
            tmp.write_text(
                json.dumps({"version": 1, "shards": self.shards}) + "\n"
            )
            os.replace(tmp, meta)

    def _lock(self, shard_id: int):
        """Exclusive lock for one data shard (see :meth:`_lock_named`)."""
        return self._lock_named(f"shard-{shard_id:02d}")

    @contextmanager
    def _lock_named(self, name: str):
        """Exclusive named lock: ``flock`` on POSIX, else O_EXCL file.

        The fallback spins on atomically creating ``.mutex``; a mutex
        older than 30s is presumed leaked by a dead process and broken.
        Multi-writer appends are therefore serialized on every
        platform, matching the rename-atomicity the per-entry JSON
        layout used to provide.
        """
        self._ensure_root()
        lock_path = self.root / f"{name}.lock"
        if fcntl is not None:
            handle = open(lock_path, "a+b")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                handle.close()
            return
        mutex = lock_path.with_suffix(".mutex")  # pragma: no cover
        deadline = time.monotonic() + 30.0
        while True:
            try:
                fd = os.open(str(mutex), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                break
            except FileExistsError:
                try:
                    if mutex.stat().st_mtime + 30.0 < time.time():
                        mutex.unlink()  # break a leaked lock
                        continue
                except OSError:
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not acquire store lock {mutex}"
                    ) from None
                time.sleep(0.005)
        try:
            yield
        finally:
            try:
                mutex.unlink()
            except OSError:
                pass

    # -- store API ------------------------------------------------------------

    def get(self, key: str) -> Optional[Record]:
        """Return the newest record stored under *key*, or ``None``."""
        self.stats.lookups += 1
        shard = self._shards[shard_of_key(key, self.shards)]
        shard.refresh()
        record = self._read_indexed(shard, key)
        if record is None and key in shard.index:
            # The offset was stale (another process compacted the shard
            # without shrinking it below our scan pointer): rebuild the
            # index from scratch and retry once.
            shard.index.clear()
            shard.scanned = 0
            shard.refresh()
            record = self._read_indexed(shard, key)
        if record is None:
            return None
        shard.index.move_to_end(key)  # recency for LRU compaction
        self.stats.hits += 1
        return record

    @staticmethod
    def _read_indexed(shard: _Shard, key: str) -> Optional[Record]:
        """Read *key*'s record at its indexed offset; ``None`` if stale."""
        offset = shard.index.get(key)
        if offset is None:
            return None
        try:
            with open(shard.path, "rb") as handle:
                handle.seek(offset)
                line = handle.readline()
            payload = json.loads(line)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("k") != key:
            # The line at this offset belongs to a different key: the
            # file was rewritten behind our back.  Never serve it.
            return None
        record = payload.get("r")
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: Record) -> None:
        """Append *record* under *key* (newest-wins on repeated keys).

        Each line is stamped with the append wall-clock time, which is
        what :meth:`gc` ages entries by.
        """
        shard_id = shard_of_key(key, self.shards)
        shard = self._shards[shard_id]
        line = (
            json.dumps(
                {"k": key, "r": record, "t": round(_now(), 3)},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        with self._lock(shard_id):
            with open(shard.path, "ab") as handle:
                offset = handle.tell()
                handle.write(line)
        shard.index[key] = offset
        shard.index.move_to_end(key)
        # Our scan pointer is only advanced past our own line when no
        # other writer interleaved; otherwise the next refresh re-reads
        # the gap (idempotent).
        if offset == shard.scanned:
            shard.scanned = offset + len(line)
        self.stats.appends += 1
        if telemetry_enabled():
            get_metrics().inc("store.appends")
        self._maybe_compact(shard_id)

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            shard.refresh()
            total += len(shard.index)
        return total

    def keys(self) -> Iterator[str]:
        for shard in self._shards:
            shard.refresh()
            yield from list(shard.index)

    # -- compaction / eviction ------------------------------------------------

    def _live_cap_per_shard(self) -> Optional[int]:
        if self.max_entries is None:
            return None
        return max(1, self.max_entries // self.shards)

    def _maybe_compact(self, shard_id: int) -> None:
        shard = self._shards[shard_id]
        try:
            size = shard.path.stat().st_size
        except OSError:
            return
        live = max(1, len(shard.index))
        cap = self._live_cap_per_shard()
        over_cap = cap is not None and len(shard.index) > cap
        # Estimate dead weight from line counts: scanned bytes per live
        # entry.  Compact when the file is mostly dead or over cap.
        self._lines[shard_id] += 1
        if over_cap or (
            self._lines[shard_id] >= live * self.compact_factor
            and self._lines[shard_id] >= 2 * self.shards
        ):
            self.compact(shard_id)

    def compact(self, shard_id: Optional[int] = None) -> ClearReport:
        """Rewrite shards newest-wins, evicting beyond ``max_entries``.

        Returns a :class:`ClearReport` of entries evicted (cap overflow
        only -- deduplicated stale lines are not "entries") and total
        bytes reclaimed.
        """
        report = ClearReport()
        ids = range(self.shards) if shard_id is None else (shard_id,)
        cap = self._live_cap_per_shard()
        for sid in ids:
            shard = self._shards[sid]
            with self._lock(sid):
                shard.refresh()
                try:
                    old_size = shard.path.stat().st_size
                except OSError:
                    self._lines[sid] = 0
                    continue
                keep = list(shard.index.items())  # oldest -> newest
                evicted = 0
                if cap is not None and len(keep) > cap:
                    evicted = len(keep) - cap
                    for key, _offset in keep[:evicted]:
                        del shard.index[key]
                    keep = keep[evicted:]
                new_index, new_size = self._rewrite_shard(shard, keep)
                shard.index = new_index
                shard.scanned = new_size
                self._lines[sid] = len(new_index)
                self.stats.compactions += 1
                self.stats.evicted_entries += evicted
                reclaimed = max(0, old_size - new_size)
                self.stats.bytes_reclaimed += reclaimed
                report += ClearReport(evicted, reclaimed)
        if telemetry_enabled():
            metrics = get_metrics()
            metrics.inc("store.compactions")
            metrics.inc("store.evicted_entries", report.entries_removed)
            metrics.inc("store.bytes_reclaimed", report.bytes_reclaimed)
        return report

    # -- garbage collection ---------------------------------------------------

    def _scan_live(
        self, shard: _Shard
    ) -> "OrderedDict[str, Tuple[int, int, float]]":
        """Newest-wins scan of one shard file.

        Returns ``key -> (offset, line_length, timestamp)`` for every
        complete line, later lines overriding earlier ones.  Lines
        without a timestamp (pre-GC stores) age as epoch 0, so a TTL
        pass retires them first.
        """
        live: "OrderedDict[str, Tuple[int, int, float]]" = OrderedDict()
        try:
            with open(shard.path, "rb") as handle:
                offset = 0
                for line in handle:
                    if line_complete(line):
                        try:
                            payload = json.loads(line)
                        except (ValueError, UnicodeDecodeError):
                            payload = None
                        if (
                            isinstance(payload, dict)
                            and isinstance(payload.get("k"), str)
                        ):
                            stamp = payload.get("t")
                            live[payload["k"]] = (
                                offset,
                                len(line),
                                float(stamp)
                                if isinstance(stamp, (int, float))
                                else 0.0,
                            )
                            live.move_to_end(payload["k"])
                    offset += len(line)
        except OSError:
            return OrderedDict()
        return live

    def gc(
        self,
        ttl: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
        grace: float = 60.0,
    ) -> GCReport:
        """Expire old entries and shrink the store to a byte budget.

        Args:
            ttl: drop entries whose newest line is older than this many
                seconds (``None`` = no age limit).
            max_bytes: keep only the newest entries whose lines fit in
                this many bytes store-wide, newest-first by timestamp
                (``None`` = no size limit).
            now: reference wall-clock (defaults to ``time.time()``;
                injectable for tests).
            grace: entries stamped within this many seconds of the
                snapshot are never collected.  This is the
                concurrent-writer guard across *hosts*: a fleet
                worker whose clock trails the collector's by less
                than the grace can re-put a condemned key mid-GC
                without losing the fresh record.

        Entries appended *while* the GC runs (newer stamp than the
        snapshot, a key the snapshot never saw, or anything inside the
        grace window) are always retained, so concurrent writers never
        lose fresh records.  With both limits ``None`` this
        degenerates to a full newest-wins compaction.  The metadata
        shard is exempt from TTL/size limits (cost history outlives
        result TTLs) but is deduplicated newest-wins on every GC so it
        cannot grow without bound either.

        Returns a :class:`GCReport`; the removal counters also land in
        ``stats.evicted_entries`` / ``stats.bytes_reclaimed``.
        """
        snapshot_now = _now() if now is None else now
        keep_floor = snapshot_now - max(0.0, grace)
        ttl_cut = (snapshot_now - ttl) if ttl is not None else None
        # Phase 1: snapshot live entries across all shards and decide
        # which keys survive.  (sid, key) -> timestamp/length.
        survivors: Dict[Tuple[int, str], float] = {}
        candidates: List[Tuple[float, int, int, str]] = []
        seen: List[set] = [set() for _ in range(self.shards)]
        expired = 0
        for sid in range(self.shards):
            for key, (offset, length, stamp) in self._scan_live(
                self._shards[sid]
            ).items():
                seen[sid].add(key)
                if ttl_cut is not None and stamp < ttl_cut:
                    expired += 1
                    continue
                candidates.append((stamp, sid, length, key))
        evicted_by_size = 0
        if max_bytes is not None:
            # Newest-wins retention: keep newest-first until the byte
            # budget is spent.  Deterministic given the timestamps
            # (ties broken by shard id, then key).
            candidates.sort(key=lambda item: (-item[0], item[1], item[3]))
            budget = max_bytes
            for stamp, sid, length, key in candidates:
                if budget - length >= 0:
                    budget -= length
                    survivors[(sid, key)] = stamp
                else:
                    evicted_by_size += 1
        else:
            for stamp, sid, length, key in candidates:
                survivors[(sid, key)] = stamp
        # Phase 2: rewrite each shard under its lock.  A fresh rescan
        # folds in lines appended since the snapshot; anything stamped
        # after the snapshot is kept unconditionally.
        report = GCReport(expired_entries=expired, evicted_entries=evicted_by_size)
        for sid in range(self.shards):
            shard = self._shards[sid]
            with self._lock(sid):
                live = self._scan_live(shard)
                if not live:
                    self._drop_shard_file(shard, sid, report)
                    continue
                try:
                    old_size = shard.path.stat().st_size
                except OSError:
                    continue
                # Keep: phase-1 survivors, anything stamped after the
                # grace floor (covers appends during the GC, timestamp
                # rounding, and cross-host clock skew up to *grace*),
                # and keys phase 1 never saw.
                keep = [
                    (key, offset)
                    for key, (offset, _length, stamp) in live.items()
                    if (sid, key) in survivors
                    or stamp > keep_floor
                    or key not in seen[sid]
                ]
                removed = len(live) - len(keep)
                new_index, new_size = self._rewrite_shard(shard, keep)
                shard.index = new_index
                shard.scanned = new_size
                self._lines[sid] = len(new_index)
                report += GCReport(
                    entries_removed=removed,
                    bytes_reclaimed=max(0, old_size - new_size),
                    entries_kept=len(new_index),
                    bytes_kept=new_size,
                )
        report += self._compact_meta()
        self.stats.compactions += 1
        self.stats.evicted_entries += report.entries_removed
        self.stats.bytes_reclaimed += report.bytes_reclaimed
        if telemetry_enabled():
            metrics = get_metrics()
            metrics.inc("store.gc_runs")
            metrics.inc("store.gc_entries_removed", report.entries_removed)
            metrics.inc("store.bytes_reclaimed", report.bytes_reclaimed)
        return report

    def _compact_meta(self) -> GCReport:
        """Deduplicate the metadata shard newest-wins (no TTL, no cap).

        Meta cells are read-modify-write records (the scheduler's cost
        table), so the file accumulates one dead line per update;
        every GC rewrites it down to its live entries so the meta
        shard cannot grow without bound either.
        """
        meta = self._meta
        with self._lock_named(META_SHARD):
            live = self._scan_live(meta)
            if not live:
                return GCReport()
            try:
                old_size = meta.path.stat().st_size
            except OSError:
                return GCReport()
            keep = [(key, offset) for key, (offset, _len, _t) in live.items()]
            new_index, new_size = self._rewrite_shard(meta, keep)
            meta.index = new_index
            meta.scanned = new_size
            return GCReport(bytes_reclaimed=max(0, old_size - new_size))

    def _drop_shard_file(
        self, shard: _Shard, sid: int, report: GCReport
    ) -> None:
        """Remove an all-dead shard file during GC (caller holds lock)."""
        try:
            size = shard.path.stat().st_size
        except OSError:
            size = 0
        if size:
            try:
                shard.path.unlink()
            except OSError:
                return
            report += GCReport(bytes_reclaimed=size)
        shard.index = OrderedDict()
        shard.scanned = 0
        self._lines[sid] = 0

    def _rewrite_shard(
        self, shard: _Shard, keep: List[Tuple[str, int]]
    ) -> Tuple["OrderedDict[str, int]", int]:
        """Rewrite *shard* to exactly the ``(key, old_offset)`` lines.

        The shared tail of :meth:`compact` and :meth:`gc` (caller holds
        the shard lock): copy the kept lines into a temp file and
        atomically replace the shard.  The temp file is removed if the
        copy fails, so an aborted rewrite leaves the shard untouched.
        """
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        new_index: "OrderedDict[str, int]" = OrderedDict()
        offset = 0
        try:
            with open(shard.path, "rb") as src, os.fdopen(fd, "wb") as dst:
                for key, old_offset in keep:
                    src.seek(old_offset)
                    line = src.readline()
                    dst.write(line)
                    new_index[key] = offset
                    offset += len(line)
            os.replace(tmp_name, shard.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return new_index, offset

    def usage(self) -> Dict[str, object]:
        """Store-wide usage summary for ``repro-planarity cache stats``.

        Scans every shard (newest-wins): live entry count, live vs
        on-disk bytes (the difference is reclaimable by compaction),
        and the age range of the live entries.
        """
        entries = 0
        live_bytes = 0
        file_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for sid in range(self.shards):
            shard = self._shards[sid]
            try:
                file_bytes += shard.path.stat().st_size
            except OSError:
                continue
            for _key, (_offset, length, stamp) in self._scan_live(
                shard
            ).items():
                entries += 1
                live_bytes += length
                if stamp > 0:
                    oldest = stamp if oldest is None else min(oldest, stamp)
                    newest = stamp if newest is None else max(newest, stamp)
        meta_entries = sum(1 for _ in self.meta_keys())
        try:
            meta_bytes = self._meta.path.stat().st_size
        except OSError:
            meta_bytes = 0
        return {
            "root": str(self.root),
            "shards": self.shards,
            "entries": entries,
            "live_bytes": live_bytes,
            "file_bytes": file_bytes,
            "reclaimable_bytes": max(0, file_bytes - live_bytes),
            "oldest_t": oldest,
            "newest_t": newest,
            "meta_entries": meta_entries,
            "meta_bytes": meta_bytes,
        }

    # -- metadata shard -------------------------------------------------------

    @property
    def _meta(self) -> _Shard:
        meta = getattr(self, "_meta_shard", None)
        if meta is None:
            meta = _Shard(self.root / f"{META_SHARD}.jsonl")
            self._meta_shard = meta
        return meta

    def put_meta(self, key: str, record: Record) -> None:
        """Append an operational record to the metadata shard.

        Same line format and lock discipline as data shards; excluded
        from ``len()`` / ``keys()`` / caps / GC.  Used by the scheduler
        for the per-kind/per-n wall-time cost table.
        """
        meta = self._meta
        line = (
            json.dumps(
                {"k": key, "r": record, "t": round(_now(), 3)},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        with self._lock_named(META_SHARD):
            with open(meta.path, "ab") as handle:
                offset = handle.tell()
                handle.write(line)
        meta.index[key] = offset
        meta.index.move_to_end(key)
        if offset == meta.scanned:
            meta.scanned = offset + len(line)

    def get_meta(self, key: str) -> Optional[Record]:
        """Return the newest metadata record under *key*, or ``None``."""
        meta = self._meta
        meta.refresh()
        return self._read_indexed(meta, key)

    def meta_keys(self) -> Iterator[str]:
        """All keys present in the metadata shard."""
        meta = self._meta
        meta.refresh()
        yield from list(meta.index)

    def clear(self) -> ClearReport:
        """Delete every shard file; report entries and bytes removed."""
        report = ClearReport()
        for sid in range(self.shards):
            shard = self._shards[sid]
            with self._lock(sid):
                shard.refresh()
                entries = len(shard.index)
                try:
                    size = shard.path.stat().st_size
                    shard.path.unlink()
                except OSError:
                    size = 0
                shard.index.clear()
                shard.scanned = 0
                self._lines[sid] = 0
                report += ClearReport(entries, size)
        self.stats.evicted_entries += report.entries_removed
        self.stats.bytes_reclaimed += report.bytes_reclaimed
        return report
