"""Sharded on-disk record store: append-only shards + a compact index.

The seed cache persisted one JSON file per entry, which meant one
``open``/``stat`` pair per lookup, unbounded directory growth, and no
way for concurrent writers to coordinate beyond atomic renames.  This
module replaces that layer with a **sharded single-index store**:

* records append to one of ``shards`` JSONL files (``shard-SS.jsonl``);
  the shard is chosen by a stable hash of the key, so every process
  agrees on placement without coordination;
* each process keeps a **compact in-memory index** per shard (key ->
  byte offset of the newest line), built by scanning the shard once and
  refreshed *incrementally*: when another process appends, only the new
  tail is read, never the whole file;
* appends hold an ``fcntl`` exclusive lock on a per-shard lock file, so
  any number of pool workers / CLI invocations / async workers can
  write to one store concurrently without tearing lines;
* **compaction** rewrites a shard newest-wins, evicting the
  least-recently-touched entries beyond ``max_entries`` (recency is
  this process's append/lookup order -- an LRU approximation across
  processes) and reporting entries evicted + bytes reclaimed.

Durability model: a line is the unit of persistence.  Torn or corrupt
lines (crash mid-append without the lock discipline, disk trouble)
degrade to misses at scan time, never to crashes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

try:  # POSIX advisory locks; other platforms use an O_EXCL lock file.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

Record = Dict[str, object]

DEFAULT_SHARDS = 8


def shard_of_key(key: str, shards: int) -> int:
    """Stable shard placement: independent of Python's hash seed."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass
class StoreStats:
    """Counters for one :class:`ShardedStore` instance."""

    appends: int = 0
    lookups: int = 0
    hits: int = 0
    compactions: int = 0
    evicted_entries: int = 0
    bytes_reclaimed: int = 0


@dataclass
class ClearReport:
    """What a destructive operation (clear / compaction) removed."""

    entries_removed: int = 0
    bytes_reclaimed: int = 0

    def __iadd__(self, other: "ClearReport") -> "ClearReport":
        self.entries_removed += other.entries_removed
        self.bytes_reclaimed += other.bytes_reclaimed
        return self


class _Shard:
    """One append-only JSONL file plus this process's index over it.

    ``index`` maps key -> byte offset of the newest line holding it,
    ordered by recency (move-to-end on append and on lookup).
    ``scanned`` is how far into the file the index is valid; anything
    past it was appended by another process and is folded in lazily.
    """

    __slots__ = ("path", "index", "scanned")

    def __init__(self, path: Path):
        self.path = path
        self.index: "OrderedDict[str, int]" = OrderedDict()
        self.scanned = 0

    def refresh(self) -> None:
        """Fold in lines appended since the last scan (cheap when none)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            # File vanished (clear() from another process): start over.
            self.index.clear()
            self.scanned = 0
            return
        if size < self.scanned:
            # Truncated behind our back (compaction elsewhere): rescan.
            self.index.clear()
            self.scanned = 0
        if size == self.scanned:
            return
        line = b"\n"
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.scanned)
                offset = self.scanned
                for line in handle:
                    if line.endswith(b"\n"):
                        key = _key_of_line(line)
                        if key is not None:
                            self.index[key] = offset
                            self.index.move_to_end(key)
                    offset += len(line)
        except OSError:
            # Shard disappeared mid-read (clear/compact race): the next
            # refresh rescans from scratch.
            self.index.clear()
            self.scanned = 0
            return
        # A trailing partial line (writer mid-append) stays unscanned
        # so the next refresh picks it up once it is complete.
        self.scanned = offset if line_complete(line) else offset - len(line)


def line_complete(line: bytes) -> bool:
    return line.endswith(b"\n")


def _key_of_line(line: bytes) -> Optional[str]:
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(payload, dict) and isinstance(payload.get("k"), str):
        return payload["k"]
    return None


@dataclass
class ShardedStore:
    """Multi-process-safe sharded record store under one directory.

    Args:
        root: store directory; created on first write.
        shards: number of shard files (fixed at creation; persisted in
            ``store.json`` so every opener agrees).
        max_entries: per-store live-entry cap enforced at compaction
            time (``None`` = unbounded).  Eviction order is this
            process's recency order (append/lookup), oldest first.
        compact_factor: a shard compacts automatically when its file
            holds more than ``compact_factor`` times its live entries
            (dead newest-wins duplicates) and at least ``shards`` lines.
    """

    root: Path
    shards: int = DEFAULT_SHARDS
    max_entries: Optional[int] = None
    compact_factor: float = 4.0
    stats: StoreStats = field(default_factory=StoreStats)
    _shards: List[_Shard] = field(default_factory=list, repr=False)
    _lines: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.root = Path(self.root)
        meta = self.root / "store.json"
        if meta.is_file():
            try:
                persisted = json.loads(meta.read_text())
                self.shards = int(persisted.get("shards", self.shards))
            except (ValueError, OSError):
                pass
        self._shards = [
            _Shard(self.root / f"shard-{i:02d}.jsonl")
            for i in range(self.shards)
        ]
        self._lines = [0] * self.shards

    # -- layout helpers -------------------------------------------------------

    def _ensure_root(self) -> None:
        if not self.root.is_dir():
            self.root.mkdir(parents=True, exist_ok=True)
        meta = self.root / "store.json"
        if not meta.is_file():
            tmp = meta.with_suffix(".tmp")
            tmp.write_text(
                json.dumps({"version": 1, "shards": self.shards}) + "\n"
            )
            os.replace(tmp, meta)

    @contextmanager
    def _lock(self, shard_id: int):
        """Exclusive per-shard lock: ``flock`` on POSIX, else O_EXCL file.

        The fallback spins on atomically creating ``.mutex``; a mutex
        older than 30s is presumed leaked by a dead process and broken.
        Multi-writer appends are therefore serialized on every
        platform, matching the rename-atomicity the per-entry JSON
        layout used to provide.
        """
        self._ensure_root()
        lock_path = self.root / f"shard-{shard_id:02d}.lock"
        if fcntl is not None:
            handle = open(lock_path, "a+b")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                handle.close()
            return
        mutex = lock_path.with_suffix(".mutex")  # pragma: no cover
        deadline = time.monotonic() + 30.0
        while True:
            try:
                fd = os.open(str(mutex), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                break
            except FileExistsError:
                try:
                    if mutex.stat().st_mtime + 30.0 < time.time():
                        mutex.unlink()  # break a leaked lock
                        continue
                except OSError:
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not acquire store lock {mutex}"
                    ) from None
                time.sleep(0.005)
        try:
            yield
        finally:
            try:
                mutex.unlink()
            except OSError:
                pass

    # -- store API ------------------------------------------------------------

    def get(self, key: str) -> Optional[Record]:
        """Return the newest record stored under *key*, or ``None``."""
        self.stats.lookups += 1
        shard = self._shards[shard_of_key(key, self.shards)]
        shard.refresh()
        record = self._read_indexed(shard, key)
        if record is None and key in shard.index:
            # The offset was stale (another process compacted the shard
            # without shrinking it below our scan pointer): rebuild the
            # index from scratch and retry once.
            shard.index.clear()
            shard.scanned = 0
            shard.refresh()
            record = self._read_indexed(shard, key)
        if record is None:
            return None
        shard.index.move_to_end(key)  # recency for LRU compaction
        self.stats.hits += 1
        return record

    @staticmethod
    def _read_indexed(shard: _Shard, key: str) -> Optional[Record]:
        """Read *key*'s record at its indexed offset; ``None`` if stale."""
        offset = shard.index.get(key)
        if offset is None:
            return None
        try:
            with open(shard.path, "rb") as handle:
                handle.seek(offset)
                line = handle.readline()
            payload = json.loads(line)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("k") != key:
            # The line at this offset belongs to a different key: the
            # file was rewritten behind our back.  Never serve it.
            return None
        record = payload.get("r")
        return record if isinstance(record, dict) else None

    def put(self, key: str, record: Record) -> None:
        """Append *record* under *key* (newest-wins on repeated keys)."""
        shard_id = shard_of_key(key, self.shards)
        shard = self._shards[shard_id]
        line = (
            json.dumps({"k": key, "r": record}, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        with self._lock(shard_id):
            with open(shard.path, "ab") as handle:
                offset = handle.tell()
                handle.write(line)
        shard.index[key] = offset
        shard.index.move_to_end(key)
        # Our scan pointer is only advanced past our own line when no
        # other writer interleaved; otherwise the next refresh re-reads
        # the gap (idempotent).
        if offset == shard.scanned:
            shard.scanned = offset + len(line)
        self.stats.appends += 1
        self._maybe_compact(shard_id)

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            shard.refresh()
            total += len(shard.index)
        return total

    def keys(self) -> Iterator[str]:
        for shard in self._shards:
            shard.refresh()
            yield from list(shard.index)

    # -- compaction / eviction ------------------------------------------------

    def _live_cap_per_shard(self) -> Optional[int]:
        if self.max_entries is None:
            return None
        return max(1, self.max_entries // self.shards)

    def _maybe_compact(self, shard_id: int) -> None:
        shard = self._shards[shard_id]
        try:
            size = shard.path.stat().st_size
        except OSError:
            return
        live = max(1, len(shard.index))
        cap = self._live_cap_per_shard()
        over_cap = cap is not None and len(shard.index) > cap
        # Estimate dead weight from line counts: scanned bytes per live
        # entry.  Compact when the file is mostly dead or over cap.
        self._lines[shard_id] += 1
        if over_cap or (
            self._lines[shard_id] >= live * self.compact_factor
            and self._lines[shard_id] >= 2 * self.shards
        ):
            self.compact(shard_id)

    def compact(self, shard_id: Optional[int] = None) -> ClearReport:
        """Rewrite shards newest-wins, evicting beyond ``max_entries``.

        Returns a :class:`ClearReport` of entries evicted (cap overflow
        only -- deduplicated stale lines are not "entries") and total
        bytes reclaimed.
        """
        report = ClearReport()
        ids = range(self.shards) if shard_id is None else (shard_id,)
        cap = self._live_cap_per_shard()
        for sid in ids:
            shard = self._shards[sid]
            with self._lock(sid):
                shard.refresh()
                try:
                    old_size = shard.path.stat().st_size
                except OSError:
                    self._lines[sid] = 0
                    continue
                keep = list(shard.index.items())  # oldest -> newest
                evicted = 0
                if cap is not None and len(keep) > cap:
                    evicted = len(keep) - cap
                    for key, _offset in keep[:evicted]:
                        del shard.index[key]
                    keep = keep[evicted:]
                fd, tmp_name = tempfile.mkstemp(
                    dir=str(self.root), suffix=".tmp"
                )
                new_index: "OrderedDict[str, int]" = OrderedDict()
                offset = 0
                with open(shard.path, "rb") as src, os.fdopen(
                    fd, "wb"
                ) as dst:
                    for key, old_offset in keep:
                        src.seek(old_offset)
                        line = src.readline()
                        dst.write(line)
                        new_index[key] = offset
                        offset += len(line)
                os.replace(tmp_name, shard.path)
                shard.index = new_index
                shard.scanned = offset
                self._lines[sid] = len(new_index)
                self.stats.compactions += 1
                self.stats.evicted_entries += evicted
                reclaimed = max(0, old_size - offset)
                self.stats.bytes_reclaimed += reclaimed
                report += ClearReport(evicted, reclaimed)
        return report

    def clear(self) -> ClearReport:
        """Delete every shard file; report entries and bytes removed."""
        report = ClearReport()
        for sid in range(self.shards):
            shard = self._shards[sid]
            with self._lock(sid):
                shard.refresh()
                entries = len(shard.index)
                try:
                    size = shard.path.stat().st_size
                    shard.path.unlink()
                except OSError:
                    size = 0
                shard.index.clear()
                shard.scanned = 0
                self._lines[sid] = 0
                report += ClearReport(entries, size)
        self.stats.evicted_entries += report.entries_removed
        self.stats.bytes_reclaimed += report.bytes_reclaimed
        return report
