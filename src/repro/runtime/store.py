"""Sharded on-disk record store: append-only shards + a compact index.

The seed cache persisted one JSON file per entry; PR 3 replaced it
with sharded JSONL files; this revision moves the payload plane to a
**packed binary format** (``shard-SS.rbin``, see
:mod:`repro.runtime.codec`) while keeping every operational property
of the JSONL store:

* records append to one of ``shards`` data files; the shard is chosen
  by a stable hash of the key, so every process agrees on placement
  without coordination;
* each process keeps a **compact in-memory index** per shard (key ->
  ``(source file, byte offset)`` of the newest entry), built by
  scanning the shard once and refreshed *incrementally*: when another
  process appends, only the new tail is read, never the whole file;
* appends hold an ``fcntl`` exclusive lock on a per-shard lock file,
  so any number of pool workers / CLI invocations / async workers can
  write to one store concurrently without tearing entries;
* **compaction** rewrites a shard newest-wins, evicting the
  least-recently-touched entries beyond ``max_entries`` and reporting
  entries evicted + bytes reclaimed;
* every entry carries an **append timestamp** for TTL/size
  :meth:`ShardedStore.gc`; one **metadata shard** (``meta-00``, same
  locking, exempt from caps/GC) holds small operational records.

What the binary format adds on top:

* **zero-parse reads**: lookups memory-map the shard file and slice
  the record payload at its indexed offset; compaction, GC, and
  resume merges splice entry *bytes* between files instead of
  JSON-round-tripping every record (shape-packed payloads are
  position-independent, so splicing is safe);
* **zero-copy hand-off**: :meth:`ShardedStore.put_raw` appends an
  already-encoded payload (e.g. bytes received from a remote worker)
  without decode/re-encode, and :meth:`ShardedStore.get_raw` returns
  the stored bytes for the symmetric send path;
* a **memory-mapped shard index sidecar** (``shard-SS.idx``, written
  after every compaction/GC/migration): the live entries' offset
  table plus the shard's shape dictionary, so a fresh process seeds
  its index without scanning entry-by-entry (telemetry counts
  ``store.index_hits`` / ``store.index_misses``);
* **formats coexist**: a directory may hold ``.jsonl`` and ``.rbin``
  shards side by side (e.g. mid-migration, or a legacy writer against
  an upgraded store); readers merge both, newest-scan-wins.  The
  store format is resolved per store -- constructor argument, then
  the format persisted in ``store.json``, then ``REPRO_STORE_FORMAT``,
  then the ``rbin`` default -- and :meth:`ShardedStore.migrate`
  rewrites everything (including the meta shard) into the resolved
  format, so ``cache migrate`` upgrades legacy stores in place.

Durability model: an entry is the unit of persistence.  Torn or
corrupt entries (crash mid-append without the lock discipline, disk
trouble) degrade to misses at scan time, never to crashes; binary
scans resynchronize on the entry magic + header checksum, the
analogue of JSONL's newline resync.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX advisory locks; other platforms use an O_EXCL lock file.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import telemetry_enabled
from .codec import (
    ENTRY_HEADER_SIZE,
    GLOBAL_SHAPES,
    CorruptEntry,
    ShapeRegistry,
    TruncatedEntry,
    UnknownShapeError,
    decode_record,
    encode_record,
    pack_record_entry,
    pack_shape_entry,
    read_entry,
    read_uvarint,
    scan_entries,
    shape_of_payload,
    write_uvarint,
)

Record = Dict[str, object]

DEFAULT_SHARDS = 8

META_SHARD = "meta-00"
"""Basename of the metadata shard (cost tables, operational records)."""

FORMAT_RBIN = "rbin"
FORMAT_JSONL = "jsonl"
FORMAT_ENV_VAR = "REPRO_STORE_FORMAT"
"""Environment override for the store format of newly-opened stores."""

SRC_BIN = 0
SRC_JSONL = 1

IDX_MAGIC = b"RIDX\x01"
_IDX_HEAD = struct.Struct("<QB16s")


def _now() -> float:
    """Wall-clock used for entry timestamps (monkeypatchable in tests)."""
    return time.time()


def resolve_format(explicit: Optional[str], persisted: Optional[str]) -> str:
    """Store format resolution: argument > ``store.json`` > env > rbin."""
    fmt = explicit or persisted or os.environ.get(FORMAT_ENV_VAR) or FORMAT_RBIN
    if fmt not in (FORMAT_RBIN, FORMAT_JSONL):
        raise ValueError(
            f"unknown store format {fmt!r} "
            f"(expected {FORMAT_RBIN!r} or {FORMAT_JSONL!r})"
        )
    return fmt


def shard_of_key(key: str, shards: int) -> int:
    """Stable shard placement: independent of Python's hash seed."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass
class StoreStats:
    """Counters for one :class:`ShardedStore` instance."""

    appends: int = 0
    lookups: int = 0
    hits: int = 0
    compactions: int = 0
    evicted_entries: int = 0
    bytes_reclaimed: int = 0
    index_hits: int = 0
    index_misses: int = 0


@dataclass
class ClearReport:
    """What a destructive operation (clear / compaction) removed."""

    entries_removed: int = 0
    bytes_reclaimed: int = 0

    def __iadd__(self, other: "ClearReport") -> "ClearReport":
        self.entries_removed += other.entries_removed
        self.bytes_reclaimed += other.bytes_reclaimed
        return self


@dataclass
class GCReport:
    """Outcome of one :meth:`ShardedStore.gc` pass.

    ``entries_removed`` counts live entries dropped (TTL-expired plus
    byte-budget evictions); ``bytes_reclaimed`` additionally includes
    dead newest-wins duplicates rewritten away.
    """

    entries_removed: int = 0
    bytes_reclaimed: int = 0
    entries_kept: int = 0
    bytes_kept: int = 0
    expired_entries: int = 0
    evicted_entries: int = 0

    def __iadd__(self, other: "GCReport") -> "GCReport":
        self.entries_removed += other.entries_removed
        self.bytes_reclaimed += other.bytes_reclaimed
        self.entries_kept += other.entries_kept
        self.bytes_kept += other.bytes_kept
        self.expired_entries += other.expired_entries
        self.evicted_entries += other.evicted_entries
        return self


@dataclass
class MigrateReport:
    """Outcome of one :meth:`ShardedStore.migrate` pass."""

    format: str = FORMAT_RBIN
    entries: int = 0
    meta_entries: int = 0
    bytes_before: int = 0
    bytes_after: int = 0


class _Shard:
    """One logical shard: up to two data files plus this process's index.

    ``index`` maps key -> ``(src, offset)`` of the newest entry
    holding it (``src`` selects the ``.rbin`` or legacy ``.jsonl``
    file), ordered by recency (move-to-end on append and lookup).
    ``scanned_bin`` / ``scanned_jsonl`` are how far into each file the
    index is valid; anything past them was appended by another
    process and is folded in lazily.  Binary reads go through a
    persistent read-only ``mmap`` so steady-state lookups cost a
    slice, not an ``open``/``seek``/``read`` cycle.
    """

    __slots__ = (
        "name",
        "bin_path",
        "jsonl_path",
        "idx_path",
        "index",
        "scanned_bin",
        "scanned_jsonl",
        "bin_end",
        "shapes_written",
        "bin_absent",
        "jsonl_absent",
        "idx_tried",
        "stats",
        "_mmap",
    )

    def __init__(self, root: Path, name: str, stats=None):
        self.name = name
        self.stats = stats  # owning store's StoreStats, if any
        self.bin_path = root / f"{name}.rbin"
        self.jsonl_path = root / f"{name}.jsonl"
        self.idx_path = root / f"{name}.idx"
        self.index: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
        self.scanned_bin = 0
        self.scanned_jsonl = 0
        # Writer-side state: the binary file's size after our last
        # locked append.  A later append that finds the file *smaller*
        # knows another process rewrote it and re-emits shape
        # definitions (duplicates are harmless, missing ones are not).
        self.bin_end = 0
        self.shapes_written: set = set()
        # Missing-file stat caches: once a rescan-from-zero observes a
        # data file absent, skip re-statting it on every refresh until
        # the next reset (or until this process creates it).
        self.bin_absent = False
        self.jsonl_absent = False
        self.idx_tried = False
        self._mmap: Optional[mmap.mmap] = None

    def reset(self) -> None:
        """Forget everything scanned; the next refresh starts over."""
        self.index.clear()
        self.scanned_bin = 0
        self.scanned_jsonl = 0
        self.bin_absent = False
        self.jsonl_absent = False
        self.idx_tried = False
        self.close_mmap()

    # -- file plumbing ----------------------------------------------

    def stat_bin(self) -> int:
        if self.bin_absent:
            return 0
        try:
            return os.stat(self.bin_path).st_size
        except OSError:
            self.bin_absent = True
            return 0

    def stat_jsonl(self) -> int:
        if self.jsonl_absent:
            return 0
        try:
            return os.stat(self.jsonl_path).st_size
        except OSError:
            self.jsonl_absent = True
            return 0

    def close_mmap(self) -> None:
        if self._mmap is not None:
            try:
                self._mmap.close()
            except OSError:  # pragma: no cover - close never fails here
                pass
            self._mmap = None

    def remap(self) -> Optional[mmap.mmap]:
        self.close_mmap()
        try:
            with open(self.bin_path, "rb") as handle:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError):  # ValueError: empty file
            self._mmap = None
        return self._mmap

    def ensure_mmap(self, need: int) -> Optional[mmap.mmap]:
        """A read map covering at least ``need`` bytes, if possible."""
        current = self._mmap
        if current is not None and len(current) >= need:
            return current
        return self.remap()

    def bin_entry_at(self, offset: int, registry: ShapeRegistry):
        """Parse the record entry at *offset* via the mmap.

        Returns ``(entry, buf)`` (slice ``buf`` for the payload) or
        ``None`` when the bytes there are not a complete record entry
        -- a stale index, a torn write, or a rewritten file; callers
        treat all three as "rescan and retry".
        """
        for attempt in (0, 1):
            buf = self.ensure_mmap(offset + ENTRY_HEADER_SIZE)
            if buf is None:
                return None
            try:
                entry, _ = read_entry(buf, offset, len(buf), registry)
            except TruncatedEntry:
                if attempt:
                    return None
                # The map may predate an append that completed this
                # entry: remap once and retry.
                self.close_mmap()
                continue
            except CorruptEntry:
                return None
            if entry is None:
                return None
            return entry, buf
        return None  # pragma: no cover - loop always returns

    # -- scanning ---------------------------------------------------

    def refresh(self, prefer_bin: bool) -> None:
        """Fold in entries appended since the last scan (cheap when none)."""
        bin_size = self.stat_bin()
        jsonl_size = self.stat_jsonl()
        if bin_size < self.scanned_bin or jsonl_size < self.scanned_jsonl:
            # A file vanished or shrank behind our back (clear or
            # compaction in another process): rescan from scratch.
            self.reset()
            bin_size = self.stat_bin()
            jsonl_size = self.stat_jsonl()
        # Scan the losing format first: on key collisions across
        # files, the store's own format wins within one refresh
        # (across refreshes, whichever file grew last wins -- the
        # chronologically newest append).
        if prefer_bin:
            self._scan_jsonl_tail(jsonl_size)
            self._scan_bin_tail(bin_size)
        else:
            self._scan_bin_tail(bin_size)
            self._scan_jsonl_tail(jsonl_size)

    def _scan_bin_tail(self, size: int) -> None:
        if self.scanned_bin == 0 and size > 0 and not self.idx_tried:
            self.idx_tried = True
            hit = self._load_idx(size)
            if self.stats is not None:
                if hit:
                    self.stats.index_hits += 1
                else:
                    self.stats.index_misses += 1
            if telemetry_enabled():
                get_metrics().inc(
                    "store.index_hits" if hit else "store.index_misses"
                )
        if size <= self.scanned_bin:
            return
        try:
            with open(self.bin_path, "rb") as handle:
                handle.seek(self.scanned_bin)
                data = handle.read(size - self.scanned_bin)
        except OSError:
            self.reset()
            return
        base = self.scanned_bin
        entries, scanned = scan_entries(data, 0, len(data), GLOBAL_SHAPES)
        index = self.index
        for entry in entries:
            index[entry.key] = (SRC_BIN, base + entry.offset)
            index.move_to_end(entry.key)
        # A trailing truncated entry (writer mid-append) stays
        # unscanned so the next refresh picks it up once complete.
        self.scanned_bin = base + scanned

    def _scan_jsonl_tail(self, size: int) -> None:
        if size <= self.scanned_jsonl:
            return
        line = b"\n"
        try:
            with open(self.jsonl_path, "rb") as handle:
                handle.seek(self.scanned_jsonl)
                offset = self.scanned_jsonl
                for line in handle:
                    if line.endswith(b"\n"):
                        key = _key_of_line(line)
                        if key is not None:
                            self.index[key] = (SRC_JSONL, offset)
                            self.index.move_to_end(key)
                    offset += len(line)
        except OSError:
            self.reset()
            return
        # A trailing partial line (writer mid-append) stays unscanned.
        self.scanned_jsonl = (
            offset if line_complete(line) else offset - len(line)
        )

    def _load_idx(self, bin_size: int) -> bool:
        """Seed the index from the ``.idx`` sidecar; True on success.

        The sidecar is a *hint*: it must cover a prefix of the
        current data file (size + head-echo check), and every offset
        it names must parse as a record entry in the mapped data
        file.  Anything off falls back to a full scan; per-lookup key
        verification keeps even a maliciously stale sidecar safe.
        """
        try:
            blob = self.idx_path.read_bytes()
        except OSError:
            return False
        if not blob.startswith(IDX_MAGIC):
            return False
        try:
            data_size, head_len, head = _IDX_HEAD.unpack_from(
                blob, len(IDX_MAGIC)
            )
            pos = len(IDX_MAGIC) + _IDX_HEAD.size
            if data_size > bin_size or head_len > 16:
                return False
            buf = self.ensure_mmap(data_size)
            if buf is None or bytes(buf[:head_len]) != head[:head_len]:
                return False
            n_shapes, pos = read_uvarint(blob, pos)
            for _ in range(n_shapes):
                length, pos = read_uvarint(blob, pos)
                GLOBAL_SHAPES.register_block(blob[pos : pos + length])
                pos += length
            n_entries, pos = read_uvarint(blob, pos)
            seeded: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
            offset = 0
            for _ in range(n_entries):
                delta, pos = read_uvarint(blob, pos)
                offset += delta
                entry, _ = read_entry(buf, offset, data_size, GLOBAL_SHAPES)
                if entry is None:
                    return False
                seeded[entry.key] = (SRC_BIN, offset)
        except (CorruptEntry, TruncatedEntry, ValueError, struct.error):
            return False
        self.index.update(seeded)
        self.scanned_bin = data_size
        return True


def line_complete(line: bytes) -> bool:
    return line.endswith(b"\n")


def _key_of_line(line: bytes) -> Optional[str]:
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(payload, dict) and isinstance(payload.get("k"), str):
        return payload["k"]
    return None


def _jsonl_line(key: str, record: Record, stamp: float) -> bytes:
    return (
        json.dumps(
            {"k": key, "r": record, "t": stamp},
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


def count_record_entries(root) -> int:
    """Physical record entries across every data shard file in *root*.

    Counts one per append (newest-wins duplicates included, shape
    definitions and the meta shard excluded) over both formats --
    tests use it to assert how many records actually landed on disk.
    """
    root = Path(root)
    total = 0
    for path in root.glob("shard-*.jsonl"):
        try:
            with open(path, "rb") as handle:
                total += sum(1 for line in handle if line.endswith(b"\n"))
        except OSError:
            continue
    for path in root.glob("shard-*.rbin"):
        try:
            data = path.read_bytes()
        except OSError:
            continue
        entries, _ = scan_entries(data, 0, len(data), ShapeRegistry())
        total += len(entries)
    return total


@dataclass
class ShardedStore:
    """Multi-process-safe sharded record store under one directory.

    Args:
        root: store directory; created on first write.
        shards: number of shard files (fixed at creation; persisted in
            ``store.json`` so every opener agrees).
        max_entries: per-store live-entry cap enforced at compaction
            time (``None`` = unbounded).  Eviction order is this
            process's recency order (append/lookup), oldest first.
        compact_factor: a shard compacts automatically when its file
            holds more than ``compact_factor`` times its live entries
            (dead newest-wins duplicates) and at least ``shards``
            entries.
        record_format: ``"rbin"`` (packed binary, the default) or
            ``"jsonl"`` (legacy line format); ``None`` resolves from
            ``store.json``, then ``REPRO_STORE_FORMAT``, then rbin.
            Either format *reads* both; the format selects what new
            appends and rewrites produce.
    """

    root: Path
    shards: int = DEFAULT_SHARDS
    max_entries: Optional[int] = None
    compact_factor: float = 4.0
    record_format: Optional[str] = None
    stats: StoreStats = field(default_factory=StoreStats)
    _shards: List[_Shard] = field(default_factory=list, repr=False)
    _lines: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.root = Path(self.root)
        meta = self.root / "store.json"
        persisted_format: Optional[str] = None
        if meta.is_file():
            try:
                persisted = json.loads(meta.read_text())
                self.shards = int(persisted.get("shards", self.shards))
                fmt = persisted.get("format")
                if isinstance(fmt, str):
                    persisted_format = fmt
            except (ValueError, OSError):
                pass
        self.record_format = resolve_format(
            self.record_format, persisted_format
        )
        # An explicit ctor format that contradicts store.json re-points
        # the store durably on first write: later openers must resolve
        # the same format, or cross-format newest-wins inverts.
        self._format_stale = (
            persisted_format is not None
            and self.record_format != persisted_format
        )
        self._shards = [
            _Shard(self.root, f"shard-{i:02d}", stats=self.stats)
            for i in range(self.shards)
        ]
        self._lines = [0] * self.shards

    @property
    def format(self) -> str:
        """The resolved record format new appends use."""
        return self.record_format or FORMAT_RBIN

    @property
    def _prefer_bin(self) -> bool:
        return self.record_format != FORMAT_JSONL

    # -- layout helpers ---------------------------------------------

    def _ensure_root(self) -> None:
        if not self.root.is_dir():
            self.root.mkdir(parents=True, exist_ok=True)
        meta = self.root / "store.json"
        if not meta.is_file() or self._format_stale:
            self._write_store_json()
            self._format_stale = False

    def _write_store_json(self) -> None:
        meta = self.root / "store.json"
        tmp = meta.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "version": 2,
                    "shards": self.shards,
                    "format": self.format,
                }
            )
            + "\n"
        )
        os.replace(tmp, meta)

    def _lock(self, shard_id: int):
        """Exclusive lock for one data shard (see :meth:`_lock_named`)."""
        return self._lock_named(f"shard-{shard_id:02d}")

    @contextmanager
    def _lock_named(self, name: str):
        """Exclusive named lock: ``flock`` on POSIX, else O_EXCL file.

        The fallback spins on atomically creating ``.mutex``; a mutex
        older than 30s is presumed leaked by a dead process and
        broken.  Multi-writer appends are therefore serialized on
        every platform, matching the rename-atomicity the per-entry
        JSON layout used to provide.
        """
        self._ensure_root()
        lock_path = self.root / f"{name}.lock"
        if fcntl is not None:
            handle = open(lock_path, "a+b")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                handle.close()
            return
        mutex = lock_path.with_suffix(".mutex")  # pragma: no cover
        deadline = time.monotonic() + 30.0
        while True:
            try:
                fd = os.open(str(mutex), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                break
            except FileExistsError:
                try:
                    if mutex.stat().st_mtime + 30.0 < time.time():
                        mutex.unlink()  # break a leaked lock
                        continue
                except OSError:
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not acquire store lock {mutex}"
                    ) from None
                time.sleep(0.005)
        try:
            yield
        finally:
            try:
                mutex.unlink()
            except OSError:
                pass

    # -- store API --------------------------------------------------

    def get(self, key: str) -> Optional[Record]:
        """Return the newest record stored under *key*, or ``None``."""
        self.stats.lookups += 1
        shard = self._shards[shard_of_key(key, self.shards)]
        shard.refresh(self._prefer_bin)
        record = self._read_indexed(shard, key)
        if record is None and key in shard.index:
            # The offset was stale (another process rewrote the shard
            # without shrinking it below our scan pointer): rebuild
            # the index from scratch and retry once.
            shard.reset()
            shard.refresh(self._prefer_bin)
            record = self._read_indexed(shard, key)
        if record is None:
            return None
        shard.index.move_to_end(key)  # recency for LRU compaction
        self.stats.hits += 1
        return record

    def get_raw(self, key: str) -> Optional[bytes]:
        """The stored binary payload for *key*, or ``None``.

        Only binary-sourced entries have payload bytes; a key living
        in a legacy ``.jsonl`` shard returns ``None`` and the caller
        falls back to :meth:`get` + re-encode.  Workers use this to
        ship cache hits over the wire without a decode/encode cycle.
        """
        self.stats.lookups += 1
        shard = self._shards[shard_of_key(key, self.shards)]
        shard.refresh(self._prefer_bin)
        payload = self._read_indexed(shard, key, raw=True)
        if payload is None and key in shard.index:
            shard.reset()
            shard.refresh(self._prefer_bin)
            payload = self._read_indexed(shard, key, raw=True)
        if payload is None:
            return None
        shard.index.move_to_end(key)
        self.stats.hits += 1
        return payload

    def _read_indexed(
        self, shard: _Shard, key: str, raw: bool = False
    ) -> Optional[object]:
        entry = shard.index.get(key)
        if entry is None:
            return None
        src, offset = entry
        if src == SRC_JSONL:
            record = self._jsonl_record_at(shard, offset, key)
            if record is None or not raw:
                return record
            return None  # raw bytes only exist for binary entries
        return self._bin_record_at(shard, offset, key, raw=raw)

    @staticmethod
    def _jsonl_record_at(
        shard: _Shard, offset: int, key: str
    ) -> Optional[Record]:
        """Read *key*'s JSON line at its indexed offset; None if stale."""
        try:
            with open(shard.jsonl_path, "rb") as handle:
                handle.seek(offset)
                line = handle.readline()
            payload = json.loads(line)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("k") != key:
            # The line at this offset belongs to a different key: the
            # file was rewritten behind our back.  Never serve it.
            return None
        record = payload.get("r")
        return record if isinstance(record, dict) else None

    @staticmethod
    def _bin_record_at(
        shard: _Shard, offset: int, key: str, raw: bool = False
    ) -> Optional[object]:
        """Read *key*'s payload at its indexed binary offset."""
        hit = shard.bin_entry_at(offset, GLOBAL_SHAPES)
        if hit is None:
            return None
        entry, buf = hit
        if entry.key != key:
            # Entry at this offset belongs to a different key: the
            # file was rewritten behind our back.  Never serve it.
            return None
        start, end = entry.payload_slice
        payload = buf[start:end]
        if raw:
            return payload
        try:
            return decode_record(payload)
        except (UnknownShapeError, CorruptEntry, TruncatedEntry):
            # Shape definitions live earlier in the file; the reset +
            # full rescan the caller performs registers them.
            return None

    def put(self, key: str, record: Record) -> None:
        """Append *record* under *key* (newest-wins on repeated keys).

        Each entry is stamped with the append wall-clock time, which
        is what :meth:`gc` ages entries by.
        """
        shard_id = shard_of_key(key, self.shards)
        shard = self._shards[shard_id]
        stamp = round(_now(), 3)
        if self._prefer_bin:
            payload, shape = encode_record(record)
            self._append_bin(shard, shard_id, key, stamp, payload, shape)
        else:
            self._append_jsonl(shard, shard_id, key, record, stamp)
        self.stats.appends += 1
        if telemetry_enabled():
            get_metrics().inc("store.appends")
        self._maybe_compact(shard_id)

    def put_raw(self, key: str, payload: bytes) -> None:
        """Append an already-encoded payload without re-encoding.

        The zero-copy ingest path: bytes received from a worker (or
        read from another store) land verbatim.  The payload's shape
        must already be registered (wire frames and shard scans both
        register definitions before any payload referencing them).
        On a legacy-format store this degrades to decode + JSON
        append, keeping the store uniform for legacy readers.
        """
        shape = shape_of_payload(payload)
        if shape is None:
            raise UnknownShapeError(bytes(payload[:8]).hex())
        shard_id = shard_of_key(key, self.shards)
        shard = self._shards[shard_id]
        stamp = round(_now(), 3)
        if self._prefer_bin:
            self._append_bin(shard, shard_id, key, stamp, payload, shape)
        else:
            self._append_jsonl(
                shard, shard_id, key, decode_record(payload), stamp
            )
        self.stats.appends += 1
        if telemetry_enabled():
            get_metrics().inc("store.appends")
            get_metrics().inc("store.raw_appends")
        self._maybe_compact(shard_id)

    def _append_bin(
        self,
        shard: _Shard,
        shard_id: int,
        key: str,
        stamp: float,
        payload: bytes,
        shape,
    ) -> None:
        entry = pack_record_entry(key, stamp, payload)
        with self._lock(shard_id):
            with open(shard.bin_path, "ab") as handle:
                offset = handle.tell()
                if offset < shard.bin_end:
                    # Another process rewrote the file since our last
                    # append: our record of which shape definitions it
                    # holds is void.  (Rewrites only ever shrink.)
                    shard.shapes_written.clear()
                if offset not in (shard.bin_end, shard.scanned_bin):
                    # Bytes we have never validated precede our append
                    # point (another writer, a rewrite, or a crashed
                    # writer's torn tail).  Absorb them now, while the
                    # exclusive lock guarantees they are stable: a torn
                    # tail MUST be neutralized before we append, or its
                    # intact header would claim the start of our entry
                    # as the rest of its body on the next scan.
                    self._absorb_unscanned(shard, offset)
                prefix = b""
                if shape.shape_id not in shard.shapes_written:
                    prefix = pack_shape_entry(shape.block)
                handle.write(prefix + entry)
                shard.bin_end = offset + len(prefix) + len(entry)
        shard.shapes_written.add(shape.shape_id)
        shard.bin_absent = False
        record_offset = shard.bin_end - len(entry)
        shard.index[key] = (SRC_BIN, record_offset)
        shard.index.move_to_end(key)
        # Our scan pointer advances past our own entry only when no
        # other writer interleaved; otherwise the next refresh re-reads
        # the gap (idempotent).
        if offset == shard.scanned_bin:
            shard.scanned_bin = shard.bin_end

    def _absorb_unscanned(self, shard: _Shard, size: int) -> None:
        """Validate the bytes in ``[scanned_bin, size)`` (lock held).

        Entries other writers appended merge into the index; shape
        definitions register as a side effect.  The load-bearing part:
        a torn tail left by a crashed writer gets its first byte
        zeroed, so the half-written entry reads as corrupt (resync
        skips it) instead of as a complete entry whose body happens to
        end inside whatever is appended next -- without this, a
        fixed-column record appended right after a crash could decode
        to silently wrong values.
        """
        start = shard.scanned_bin
        if start > size or size < shard.bin_end:
            start = 0  # the file was rewritten (shrunk) under us
        with open(shard.bin_path, "rb") as reader:
            reader.seek(start)
            gap = reader.read(size - start)
        entries, scanned = scan_entries(gap, 0, len(gap), GLOBAL_SHAPES)
        for entry in entries:
            shard.index[entry.key] = (SRC_BIN, start + entry.offset)
            shard.index.move_to_end(entry.key)
        if start + scanned < size:
            with open(shard.bin_path, "r+b") as patcher:
                patcher.seek(start + scanned)
                patcher.write(b"\x00")  # kill the torn entry's magic
        shard.scanned_bin = start + scanned

    def _append_jsonl(
        self,
        shard: _Shard,
        shard_id: int,
        key: str,
        record: Record,
        stamp: float,
    ) -> None:
        line = _jsonl_line(key, record, stamp)
        with self._lock(shard_id):
            with open(shard.jsonl_path, "ab") as handle:
                offset = handle.tell()
                handle.write(line)
        shard.jsonl_absent = False
        shard.index[key] = (SRC_JSONL, offset)
        shard.index.move_to_end(key)
        if offset == shard.scanned_jsonl:
            shard.scanned_jsonl = offset + len(line)

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            shard.refresh(self._prefer_bin)
            total += len(shard.index)
        return total

    def keys(self) -> Iterator[str]:
        for shard in self._shards:
            shard.refresh(self._prefer_bin)
            yield from list(shard.index)

    # -- compaction / eviction --------------------------------------

    def _live_cap_per_shard(self) -> Optional[int]:
        if self.max_entries is None:
            return None
        return max(1, self.max_entries // self.shards)

    def _maybe_compact(self, shard_id: int) -> None:
        shard = self._shards[shard_id]
        live = max(1, len(shard.index))
        cap = self._live_cap_per_shard()
        over_cap = cap is not None and len(shard.index) > cap
        # Estimate dead weight from append counts since the last
        # rewrite: compact when the file is mostly dead or over cap.
        self._lines[shard_id] += 1
        if over_cap or (
            self._lines[shard_id] >= live * self.compact_factor
            and self._lines[shard_id] >= 2 * self.shards
        ):
            self.compact(shard_id)

    def compact(self, shard_id: Optional[int] = None) -> ClearReport:
        """Rewrite shards newest-wins, evicting beyond ``max_entries``.

        Returns a :class:`ClearReport` of entries evicted (cap
        overflow only -- deduplicated stale entries are not
        "entries") and total bytes reclaimed.  Rewrites splice entry
        bytes for binary sources and convert legacy JSONL lines into
        the store format, so compaction doubles as incremental
        migration; the ``.idx`` sidecar is refreshed afterwards.
        """
        report = ClearReport()
        ids = range(self.shards) if shard_id is None else (shard_id,)
        cap = self._live_cap_per_shard()
        for sid in ids:
            shard = self._shards[sid]
            with self._lock(sid):
                shard.refresh(self._prefer_bin)
                old_size = shard.stat_bin() + shard.stat_jsonl()
                if not shard.index and old_size == 0:
                    self._lines[sid] = 0
                    continue
                keep = list(shard.index.items())  # oldest -> newest
                evicted = 0
                if cap is not None and len(keep) > cap:
                    evicted = len(keep) - cap
                    for key, _entry in keep[:evicted]:
                        del shard.index[key]
                    keep = keep[evicted:]
                new_size = self._rewrite_shard(shard, keep)
                self._lines[sid] = len(shard.index)
                self.stats.compactions += 1
                self.stats.evicted_entries += evicted
                reclaimed = max(0, old_size - new_size)
                self.stats.bytes_reclaimed += reclaimed
                report += ClearReport(evicted, reclaimed)
        if telemetry_enabled():
            metrics = get_metrics()
            metrics.inc("store.compactions")
            metrics.inc("store.evicted_entries", report.entries_removed)
            metrics.inc("store.bytes_reclaimed", report.bytes_reclaimed)
        return report

    # -- garbage collection -----------------------------------------

    def _scan_live(
        self, shard: _Shard
    ) -> "OrderedDict[str, Tuple[int, int, int, float, int]]":
        """Newest-wins scan of one shard's data files.

        Returns ``key -> (src, offset, length, timestamp,
        payload_start)`` for every complete entry, later entries
        overriding earlier ones (the store's own format winning ties
        across files).  Binary entries are parsed header-only -- no
        payload decode; ``payload_start`` is the absolute file offset
        of the entry's packed payload (``-1`` for JSONL sources), so
        a rewrite can splice entry bytes without re-parsing them.
        Entries without a timestamp (pre-GC stores) age as epoch 0,
        so a TTL pass retires them first.
        """
        live: "OrderedDict[str, Tuple[int, int, int, float, int]]" = (
            OrderedDict()
        )
        if self._prefer_bin:
            self._scan_live_jsonl(shard, live)
            self._scan_live_bin(shard, live)
        else:
            self._scan_live_bin(shard, live)
            self._scan_live_jsonl(shard, live)
        return live

    @staticmethod
    def _scan_live_bin(
        shard: _Shard,
        live: "OrderedDict[str, Tuple[int, int, int, float, int]]",
    ) -> None:
        try:
            data = shard.bin_path.read_bytes()
        except OSError:
            return
        entries, _ = scan_entries(data, 0, len(data), GLOBAL_SHAPES)
        for entry in entries:
            live[entry.key] = (
                SRC_BIN,
                entry.offset,
                entry.length,
                entry.stamp,
                entry.payload_slice[0],
            )
            live.move_to_end(entry.key)

    @staticmethod
    def _scan_live_jsonl(
        shard: _Shard,
        live: "OrderedDict[str, Tuple[int, int, int, float, int]]",
    ) -> None:
        try:
            with open(shard.jsonl_path, "rb") as handle:
                offset = 0
                for line in handle:
                    if line_complete(line):
                        try:
                            payload = json.loads(line)
                        except (ValueError, UnicodeDecodeError):
                            payload = None
                        if isinstance(payload, dict) and isinstance(
                            payload.get("k"), str
                        ):
                            stamp = payload.get("t")
                            live[payload["k"]] = (
                                SRC_JSONL,
                                offset,
                                len(line),
                                float(stamp)
                                if isinstance(stamp, (int, float))
                                else 0.0,
                                -1,
                            )
                            live.move_to_end(payload["k"])
                    offset += len(line)
        except OSError:
            return

    def gc(
        self,
        ttl: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
        grace: float = 60.0,
    ) -> GCReport:
        """Expire old entries and shrink the store to a byte budget.

        Args:
            ttl: drop entries whose newest entry is older than this
                many seconds (``None`` = no age limit).
            max_bytes: keep only the newest entries whose on-disk
                bytes fit in this budget store-wide, newest-first by
                timestamp (``None`` = no size limit).
            now: reference wall-clock (defaults to ``time.time()``;
                injectable for tests).
            grace: entries stamped within this many seconds of the
                snapshot are never collected.  This is the
                concurrent-writer guard across *hosts*: a fleet
                worker whose clock trails the collector's by less
                than the grace can re-put a condemned key mid-GC
                without losing the fresh record.

        Entries appended *while* the GC runs (newer stamp than the
        snapshot, a key the snapshot never saw, or anything inside
        the grace window) are always retained, so concurrent writers
        never lose fresh records.  With both limits ``None`` this
        degenerates to a full newest-wins compaction.  The metadata
        shard is exempt from TTL/size limits (cost history outlives
        result TTLs) but is deduplicated newest-wins on every GC so
        it cannot grow without bound either.

        Returns a :class:`GCReport`; the removal counters also land
        in ``stats.evicted_entries`` / ``stats.bytes_reclaimed``.
        """
        snapshot_now = _now() if now is None else now
        keep_floor = snapshot_now - max(0.0, grace)
        ttl_cut = (snapshot_now - ttl) if ttl is not None else None
        # Phase 1: snapshot live entries across all shards and decide
        # which keys survive.  (sid, key) -> timestamp/length.
        survivors: Dict[Tuple[int, str], float] = {}
        candidates: List[Tuple[float, int, int, str]] = []
        seen: List[set] = [set() for _ in range(self.shards)]
        expired = 0
        for sid in range(self.shards):
            for key, (_src, _offset, length, stamp, _pay) in self._scan_live(
                self._shards[sid]
            ).items():
                seen[sid].add(key)
                if ttl_cut is not None and stamp < ttl_cut:
                    expired += 1
                    continue
                candidates.append((stamp, sid, length, key))
        evicted_by_size = 0
        if max_bytes is not None:
            # Newest-wins retention: keep newest-first until the byte
            # budget is spent.  Deterministic given the timestamps
            # (ties broken by shard id, then key).
            candidates.sort(key=lambda item: (-item[0], item[1], item[3]))
            budget = max_bytes
            for stamp, sid, length, key in candidates:
                if budget - length >= 0:
                    budget -= length
                    survivors[(sid, key)] = stamp
                else:
                    evicted_by_size += 1
        else:
            for stamp, sid, length, key in candidates:
                survivors[(sid, key)] = stamp
        # Phase 2: rewrite each shard under its lock.  A fresh rescan
        # folds in entries appended since the snapshot; anything
        # stamped after the snapshot is kept unconditionally.
        report = GCReport(
            expired_entries=expired, evicted_entries=evicted_by_size
        )
        for sid in range(self.shards):
            shard = self._shards[sid]
            with self._lock(sid):
                live = self._scan_live(shard)
                if not live:
                    self._drop_shard_files(shard, sid, report)
                    continue
                old_size = shard.stat_bin() + shard.stat_jsonl()
                # Keep: phase-1 survivors, anything stamped after the
                # grace floor (covers appends during the GC, timestamp
                # rounding, and cross-host clock skew up to *grace*),
                # and keys phase 1 never saw.
                keep = []
                kept_bytes = 0
                for key, ref in live.items():
                    stamp = ref[3]
                    if (
                        (sid, key) in survivors
                        or stamp > keep_floor
                        or key not in seen[sid]
                    ):
                        keep.append((key, ref))
                        kept_bytes += ref[2]
                removed = len(live) - len(keep)
                new_size = self._rewrite_shard(shard, keep)
                self._lines[sid] = len(shard.index)
                # bytes_kept counts record-entry bytes (what the
                # max_bytes budget is spent on); shape-definition
                # entries are amortized overhead outside the budget.
                report += GCReport(
                    entries_removed=removed,
                    bytes_reclaimed=max(0, old_size - new_size),
                    entries_kept=len(shard.index),
                    bytes_kept=kept_bytes,
                )
        report += self._compact_meta()
        self.stats.compactions += 1
        self.stats.evicted_entries += report.entries_removed
        self.stats.bytes_reclaimed += report.bytes_reclaimed
        if telemetry_enabled():
            metrics = get_metrics()
            metrics.inc("store.gc_runs")
            metrics.inc("store.gc_entries_removed", report.entries_removed)
            metrics.inc("store.bytes_reclaimed", report.bytes_reclaimed)
        return report

    def _compact_meta(self) -> GCReport:
        """Deduplicate the metadata shard newest-wins (no TTL, no cap).

        Meta cells are read-modify-write records (the scheduler's
        cost table), so the file accumulates one dead entry per
        update; every GC rewrites it down to its live entries so the
        meta shard cannot grow without bound either.
        """
        meta = self._meta
        with self._lock_named(META_SHARD):
            live = self._scan_live(meta)
            if not live:
                return GCReport()
            old_size = meta.stat_bin() + meta.stat_jsonl()
            keep = list(live.items())
            new_size = self._rewrite_shard(meta, keep)
            return GCReport(bytes_reclaimed=max(0, old_size - new_size))

    def _drop_shard_files(
        self, shard: _Shard, sid: int, report: GCReport
    ) -> None:
        """Remove an all-dead shard's files during GC (caller locks)."""
        size = 0
        for path in (shard.bin_path, shard.jsonl_path):
            try:
                file_size = path.stat().st_size
                path.unlink()
                size += file_size
            except OSError:
                continue
        try:
            shard.idx_path.unlink()
        except OSError:
            pass
        shard.reset()
        shard.bin_end = 0
        shard.shapes_written.clear()
        self._lines[sid] = 0
        if size:
            report += GCReport(bytes_reclaimed=size)

    # -- shard rewriting --------------------------------------------

    def _rewrite_shard(
        self, shard: _Shard, keep: List[Tuple[str, Tuple]]
    ) -> int:
        """Rewrite *shard* to exactly the ``(key, source ref)``
        entries, in the store's own format.

        A source ref is ``(src, offset)`` (from the append index) or
        the full :meth:`_scan_live` 5-tuple, whose length and payload
        offset let binary entries splice with no per-entry re-parse.

        The shared tail of :meth:`compact`, :meth:`gc`, and
        :meth:`migrate` (caller holds the shard lock): binary sources
        are spliced byte-for-byte (shape-packed payloads are position
        independent), JSONL lines are converted, shape definitions
        are written ahead of their first use, and the result
        atomically replaces the shard -- the other format's file and
        a stale ``.idx`` are removed once their live entries are
        absorbed.  Unreadable source entries are dropped (they were
        unreadable in place too).  Adopts the new index/scan state on
        *shard* and returns the new data size.
        """
        if self._prefer_bin:
            return self._rewrite_shard_bin(shard, keep)
        return self._rewrite_shard_jsonl(shard, keep)

    @staticmethod
    def _read_bin_source(
        shard: _Shard, keep: List[Tuple[str, Tuple]]
    ) -> Optional[bytes]:
        """The shard's binary file, read once, when any keep needs it."""
        if not any(ref[0] == SRC_BIN for _key, ref in keep):
            return None
        try:
            return shard.bin_path.read_bytes()
        except OSError:
            return None

    def _read_source_entry(
        self,
        shard: _Shard,
        ref: Tuple,
        bin_data: Optional[bytes],
    ) -> Optional[Tuple[bytes, float, Optional[bytes]]]:
        """Fetch one rewrite source: ``(entry_bytes, stamp, payload)``.

        Binary sources are spliced out of *bin_data* -- the shard
        file read into memory once per rewrite, so a compaction costs
        one read per shard instead of two seeks per entry.  A full
        scan ref (length + payload offset, produced by
        :meth:`_scan_live` under the same lock) slices the entry out
        directly; a bare ``(src, offset)`` ref re-parses it.
        ``payload`` is ``None`` for JSONL sources (``entry_bytes`` is
        then the raw line); unreadable sources return ``None``.
        """
        src, offset = ref[0], ref[1]
        if src == SRC_JSONL:
            try:
                with open(shard.jsonl_path, "rb") as handle:
                    handle.seek(offset)
                    line = handle.readline()
            except OSError:
                return None
            return line, 0.0, None
        if bin_data is None:
            return None
        if len(ref) == 5:
            end = offset + ref[2]
            if end <= len(bin_data) and ref[4] >= 0:
                return (
                    bin_data[offset:end],
                    ref[3],
                    bin_data[ref[4] : end],
                )
        try:
            entry, _ = read_entry(
                bin_data, offset, len(bin_data), GLOBAL_SHAPES
            )
        except (CorruptEntry, TruncatedEntry):
            return None
        if entry is None:
            return None
        start, end = entry.payload_slice
        return (
            bin_data[offset : offset + entry.length],
            entry.stamp,
            bin_data[start:end],
        )

    def _rewrite_shard_bin(
        self, shard: _Shard, keep: List[Tuple[str, Tuple]]
    ) -> int:
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        new_index: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
        shapes_written: set = set()
        shape_blocks: List[bytes] = []
        offset_out = 0
        bin_data = self._read_bin_source(shard, keep)
        try:
            with os.fdopen(fd, "wb") as dst:
                for key, ref in keep:
                    source = self._read_source_entry(shard, ref, bin_data)
                    if source is None:
                        continue
                    entry_bytes, stamp, payload = source
                    if payload is None:
                        converted = self._convert_jsonl_line(key, entry_bytes)
                        if converted is None:
                            continue
                        entry_bytes, payload, stamp = converted
                    shape_id = bytes(payload[:8])
                    if shape_id not in shapes_written:
                        shape = GLOBAL_SHAPES.get(shape_id)
                        if shape is None:
                            continue  # definition lost; entry unreadable
                        block_entry = pack_shape_entry(shape.block)
                        dst.write(block_entry)
                        offset_out += len(block_entry)
                        shapes_written.add(shape_id)
                        shape_blocks.append(shape.block)
                    dst.write(entry_bytes)
                    new_index[key] = (SRC_BIN, offset_out)
                    offset_out += len(entry_bytes)
            os.replace(tmp_name, shard.bin_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        try:
            shard.jsonl_path.unlink()  # live lines absorbed above
        except OSError:
            pass
        self._write_idx(shard, new_index, offset_out, shape_blocks)
        shard.close_mmap()
        shard.index = new_index
        shard.scanned_bin = offset_out
        shard.scanned_jsonl = 0
        shard.bin_absent = False
        shard.jsonl_absent = True
        shard.idx_tried = True
        shard.bin_end = offset_out
        shard.shapes_written = shapes_written
        return offset_out

    def _rewrite_shard_jsonl(
        self, shard: _Shard, keep: List[Tuple[str, Tuple]]
    ) -> int:
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        new_index: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
        offset_out = 0
        bin_data = self._read_bin_source(shard, keep)
        try:
            with os.fdopen(fd, "wb") as dst:
                for key, ref in keep:
                    source = self._read_source_entry(shard, ref, bin_data)
                    if source is None:
                        continue
                    entry_bytes, stamp, payload = source
                    if payload is not None:
                        try:
                            record = decode_record(payload)
                        except (
                            UnknownShapeError,
                            CorruptEntry,
                            TruncatedEntry,
                        ):
                            continue
                        entry_bytes = _jsonl_line(key, record, stamp)
                    dst.write(entry_bytes)
                    new_index[key] = (SRC_JSONL, offset_out)
                    offset_out += len(entry_bytes)
            os.replace(tmp_name, shard.jsonl_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        for path in (shard.bin_path, shard.idx_path):
            try:
                path.unlink()  # live entries absorbed above
            except OSError:
                pass
        shard.close_mmap()
        shard.index = new_index
        shard.scanned_jsonl = offset_out
        shard.scanned_bin = 0
        shard.jsonl_absent = False
        shard.bin_absent = True
        shard.idx_tried = True
        shard.bin_end = 0
        shard.shapes_written = set()
        return offset_out

    @staticmethod
    def _convert_jsonl_line(
        key: str, line: bytes
    ) -> Optional[Tuple[bytes, bytes, float]]:
        """Convert one legacy line into a binary entry (or ``None``)."""
        try:
            parsed = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(parsed, dict) or parsed.get("k") != key:
            return None
        record = parsed.get("r")
        if not isinstance(record, dict):
            return None
        stamp = parsed.get("t")
        stamp = float(stamp) if isinstance(stamp, (int, float)) else 0.0
        payload, _shape = encode_record(record)
        return pack_record_entry(key, stamp, payload), payload, stamp

    def _write_idx(
        self,
        shard: _Shard,
        new_index: "OrderedDict[str, Tuple[int, int]]",
        data_size: int,
        shape_blocks: List[bytes],
    ) -> None:
        """Write the ``.idx`` sidecar for a freshly-rewritten shard.

        Layout: magic+version, the covered data size, a head echo of
        the data file (fast staleness check), the shard's shape
        dictionary, then the live entries' offsets as ascending
        varint deltas.  Keys are *not* duplicated here -- seeding
        reads them from the memory-mapped data file, which keeps the
        sidecar a few bytes per entry.
        """
        if data_size == 0 or not new_index:
            try:
                shard.idx_path.unlink()
            except OSError:
                pass
            return
        try:
            with open(shard.bin_path, "rb") as handle:
                head = handle.read(16)
        except OSError:
            return
        out = bytearray(IDX_MAGIC)
        out += _IDX_HEAD.pack(data_size, len(head), head.ljust(16, b"\x00"))
        write_uvarint(out, len(shape_blocks))
        for block in shape_blocks:
            write_uvarint(out, len(block))
            out += block
        write_uvarint(out, len(new_index))
        previous = 0
        for _key, (_src, offset) in new_index.items():
            write_uvarint(out, offset - previous)
            previous = offset
        tmp = shard.idx_path.with_suffix(".idx.tmp")
        try:
            tmp.write_bytes(out)
            os.replace(tmp, shard.idx_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- usage / dump / migration -----------------------------------

    def usage(self) -> Dict[str, object]:
        """Store-wide usage summary for ``repro-planarity cache stats``.

        Scans every shard (newest-wins): live entry count, live vs
        on-disk bytes (the difference is reclaimable by compaction),
        and the age range of the live entries.  ``index_bytes``
        counts the ``.idx`` sidecars (not part of the data plane).
        """
        entries = 0
        live_bytes = 0
        file_bytes = 0
        index_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for sid in range(self.shards):
            shard = self._shards[sid]
            for path in (shard.bin_path, shard.jsonl_path):
                try:
                    file_bytes += path.stat().st_size
                except OSError:
                    continue
            try:
                index_bytes += shard.idx_path.stat().st_size
            except OSError:
                pass
            for _key, (_src, _offset, length, stamp, _pay) in self._scan_live(
                shard
            ).items():
                entries += 1
                live_bytes += length
                if stamp > 0:
                    oldest = stamp if oldest is None else min(oldest, stamp)
                    newest = stamp if newest is None else max(newest, stamp)
        meta_entries = sum(1 for _ in self.meta_keys())
        meta_bytes = self._meta.stat_bin() + self._meta.stat_jsonl()
        return {
            "root": str(self.root),
            "shards": self.shards,
            "format": self.format,
            "entries": entries,
            "live_bytes": live_bytes,
            "file_bytes": file_bytes,
            "index_bytes": index_bytes,
            "reclaimable_bytes": max(0, file_bytes - live_bytes),
            "oldest_t": oldest,
            "newest_t": newest,
            "meta_entries": meta_entries,
            "meta_bytes": meta_bytes,
        }

    def dump(self) -> Iterator[Tuple[str, float, Record]]:
        """Yield every live ``(key, stamp, record)`` (debug view).

        Powers ``repro-planarity cache dump --json``: a
        format-agnostic, human-readable view of the store contents
        (and the migration round-trip check in CI).
        """
        for sid in range(self.shards):
            shard = self._shards[sid]
            for key, (src, offset, _length, stamp, _pay) in self._scan_live(
                shard
            ).items():
                if src == SRC_JSONL:
                    record = self._jsonl_record_at(shard, offset, key)
                else:
                    record = self._bin_record_at(shard, offset, key)
                if isinstance(record, dict):
                    yield key, stamp, record

    def migrate(self) -> MigrateReport:
        """Rewrite every shard (data + meta) into the resolved format.

        Legacy ``.jsonl`` entries are converted, binary entries are
        spliced, dead duplicates are dropped, sidecar indexes are
        (re)written, and ``store.json`` is upgraded to persist the
        format -- after this, openers resolve the same format without
        needing the environment override.  Safe under concurrent
        readers/writers (per-shard locks, same protocol as
        compaction).
        """
        report = MigrateReport(format=self.format)
        for sid in range(self.shards):
            shard = self._shards[sid]
            with self._lock(sid):
                report.bytes_before += shard.stat_bin() + shard.stat_jsonl()
                live = self._scan_live(shard)
                if not live:
                    continue
                keep = list(live.items())
                report.bytes_after += self._rewrite_shard(shard, keep)
                report.entries += len(shard.index)
                self._lines[sid] = len(shard.index)
        meta = self._meta
        with self._lock_named(META_SHARD):
            report.bytes_before += meta.stat_bin() + meta.stat_jsonl()
            live = self._scan_live(meta)
            if live:
                keep = list(live.items())
                report.bytes_after += self._rewrite_shard(meta, keep)
                report.meta_entries += len(meta.index)
        self._ensure_root()
        self._write_store_json()
        return report

    # -- metadata shard ---------------------------------------------

    @property
    def _meta(self) -> _Shard:
        meta = getattr(self, "_meta_shard", None)
        if meta is None:
            meta = _Shard(self.root, META_SHARD, stats=self.stats)
            self._meta_shard = meta
        return meta

    def put_meta(self, key: str, record: Record) -> None:
        """Append an operational record to the metadata shard.

        Same entry format and lock discipline as data shards;
        excluded from ``len()`` / ``keys()`` / caps / GC.  Used by
        the scheduler for the per-kind/per-n wall-time cost table.
        """
        meta = self._meta
        stamp = round(_now(), 3)
        if self._prefer_bin:
            payload, shape = encode_record(record)
            entry = pack_record_entry(key, stamp, payload)
            with self._lock_named(META_SHARD):
                with open(meta.bin_path, "ab") as handle:
                    offset = handle.tell()
                    if offset < meta.bin_end:
                        meta.shapes_written.clear()
                    prefix = b""
                    if shape.shape_id not in meta.shapes_written:
                        prefix = pack_shape_entry(shape.block)
                    handle.write(prefix + entry)
                    meta.bin_end = offset + len(prefix) + len(entry)
            meta.shapes_written.add(shape.shape_id)
            meta.bin_absent = False
            meta.index[key] = (SRC_BIN, meta.bin_end - len(entry))
            meta.index.move_to_end(key)
            if offset == meta.scanned_bin:
                meta.scanned_bin = meta.bin_end
        else:
            line = _jsonl_line(key, record, stamp)
            with self._lock_named(META_SHARD):
                with open(meta.jsonl_path, "ab") as handle:
                    offset = handle.tell()
                    handle.write(line)
            meta.jsonl_absent = False
            meta.index[key] = (SRC_JSONL, offset)
            meta.index.move_to_end(key)
            if offset == meta.scanned_jsonl:
                meta.scanned_jsonl = offset + len(line)

    def get_meta(self, key: str) -> Optional[Record]:
        """Return the newest metadata record under *key*, or ``None``."""
        meta = self._meta
        meta.refresh(self._prefer_bin)
        record = self._read_indexed(meta, key)
        if record is None and key in meta.index:
            meta.reset()
            meta.refresh(self._prefer_bin)
            record = self._read_indexed(meta, key)
        return record if isinstance(record, dict) else None

    def meta_keys(self) -> Iterator[str]:
        """All keys present in the metadata shard."""
        meta = self._meta
        meta.refresh(self._prefer_bin)
        yield from list(meta.index)

    def clear(self) -> ClearReport:
        """Delete every shard file; report entries and bytes removed."""
        report = ClearReport()
        for sid in range(self.shards):
            shard = self._shards[sid]
            with self._lock(sid):
                shard.refresh(self._prefer_bin)
                entries = len(shard.index)
                size = 0
                for path in (shard.bin_path, shard.jsonl_path):
                    try:
                        file_size = path.stat().st_size
                        path.unlink()
                        size += file_size
                    except OSError:
                        continue
                try:
                    shard.idx_path.unlink()
                except OSError:
                    pass
                shard.reset()
                shard.bin_end = 0
                shard.shapes_written.clear()
                self._lines[sid] = 0
                report += ClearReport(entries, size)
        self.stats.evicted_entries += report.entries_removed
        self.stats.bytes_reclaimed += report.bytes_reclaimed
        return report
