"""Packed binary record codec for the store and wire planes.

The JSONL store and JSON-lines worker protocol paid ``json.dumps`` /
``json.loads`` on fully-parsed objects for every append, lookup,
compaction splice, resume merge, and remote result ship.  This module
replaces that serialization layer with a stdlib-``struct`` binary
codec -- msgpack-style framing with no new dependency -- in three
layers:

* a **generic value codec** (tag byte + payload) covering ``None``,
  bools, arbitrary-precision ints (zigzag varint, so >64-bit values
  survive exactly), IEEE doubles (NaN/inf bit-exact), UTF-8 strings,
  bytes, lists, and string-keyed dicts; 64-char lowercase hex strings
  (cache keys) pack to 32 raw bytes;

* a **shape-packed record codec**: the flat job records the runtime
  stores share a handful of field layouts ("shapes"), so each record
  is encoded as an 8-byte content-addressed shape id plus one
  ``struct.pack`` of its fixed-width columns (int32/int64/float64/
  bool) and a varlen tail for everything else.  Field names are
  stored once per shape, not once per record, and decode is a single
  ``Struct.unpack_from`` plus ``dict(zip(...))`` on the fast path.
  Because shape ids are content hashes, encoded payloads are
  **position-independent**: bytes can be spliced between shard files
  and wire frames without re-encoding, as long as the shape
  definition travels ahead of the first payload that uses it;

* **framing**: length-prefixed store entries (record and
  shape-definition bodies) and length-prefixed wire frames whose body
  is one generic-codec dict.  Both carry a 2-byte magic so readers
  can detect torn writes and resynchronize.

Always-on cheap counters live in :data:`STATS` (tests pin zero-copy
paths on them); byte/nanosecond metrics flow to the telemetry
registry only when tracing is enabled.
"""

from __future__ import annotations

import hashlib
import re
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import telemetry_enabled

Record = Dict[str, object]


class CodecError(ValueError):
    """A value cannot be encoded (unsupported type, non-str dict key)."""


class CorruptEntry(ValueError):
    """Bytes at an entry offset are not a valid store entry."""


class TruncatedEntry(Exception):
    """An entry extends past the end of the buffer (writer mid-append)."""


class UnknownShapeError(KeyError):
    """A payload references a shape id the registry has not seen."""


class WireProtocolError(ValueError):
    """A wire frame failed to parse (bad magic, truncated body)."""


@dataclass
class CodecStats:
    """Always-on process-wide codec counters (cheap ints, no gating).

    Zero-copy tests pin on these: a server that appends worker result
    bytes verbatim must show ``encoded_records == 0`` no matter how
    many results it stores.
    """

    encoded_records: int = 0
    decoded_records: int = 0
    encoded_record_bytes: int = 0
    decoded_record_bytes: int = 0
    encoded_frames: int = 0
    decoded_frames: int = 0
    encoded_frame_bytes: int = 0
    decoded_frame_bytes: int = 0


STATS = CodecStats()


def reset_stats() -> None:
    """Zero the process-wide counters in place (tests only)."""
    for name in vars(STATS):
        setattr(STATS, name, 0)


# -- varints ------------------------------------------------------------------


def write_uvarint(out: bytearray, value: int) -> None:
    """Append *value* (non-negative, unbounded) as a LEB128 varint."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Read a LEB128 varint at *pos*; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    try:
        while True:
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise TruncatedEntry("varint runs past end of buffer") from None


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


# -- generic value codec ------------------------------------------------------

T_NONE = 0x00
T_TRUE = 0x01
T_FALSE = 0x02
T_INT = 0x03  # zigzag LEB128, arbitrary precision
T_FLOAT = 0x04  # IEEE 754 double, little-endian, NaN/inf bit-exact
T_STR = 0x05  # uvarint byte length + UTF-8
T_BYTES = 0x06  # uvarint length + raw bytes
T_LIST = 0x07  # uvarint count + items (tuples decode as lists)
T_DICT = 0x08  # uvarint count + (str key, value) pairs
T_HEX32 = 0x09  # 64-char lowercase hex string packed to 32 raw bytes

_F64 = struct.Struct("<d")
_HEX64 = re.compile(r"[0-9a-f]{64}\Z")


def encode_value(value: object, out: bytearray) -> None:
    """Append the tagged encoding of *value* to *out*.

    Mirrors the JSON value model (so records that round-tripped
    through JSONL shards decode equal): tuples become lists, dict
    keys must be strings, and anything else raises
    :class:`CodecError`.
    """
    if value is None:
        out.append(T_NONE)
    elif isinstance(value, bool):
        out.append(T_TRUE if value else T_FALSE)
    elif isinstance(value, int):
        out.append(T_INT)
        write_uvarint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        if len(value) == 64 and _HEX64.match(value):
            out.append(T_HEX32)
            out += bytes.fromhex(value)
        else:
            raw = value.encode("utf-8")
            out.append(T_STR)
            write_uvarint(out, len(raw))
            out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(T_BYTES)
        write_uvarint(out, len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(T_LIST)
        write_uvarint(out, len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out.append(T_DICT)
        write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key)!r}")
            raw = key.encode("utf-8")
            write_uvarint(out, len(raw))
            out += raw
            encode_value(item, out)
    else:
        raise CodecError(f"cannot encode {type(value)!r}")


def decode_value(buf: bytes, pos: int) -> Tuple[object, int]:
    """Decode one tagged value at *pos*; returns ``(value, next_pos)``."""
    try:
        tag = buf[pos]
    except IndexError:
        raise TruncatedEntry("value tag past end of buffer") from None
    pos += 1
    if tag == T_NONE:
        return None, pos
    if tag == T_TRUE:
        return True, pos
    if tag == T_FALSE:
        return False, pos
    if tag == T_INT:
        raw, pos = read_uvarint(buf, pos)
        return _unzigzag(raw), pos
    if tag == T_FLOAT:
        end = pos + 8
        if end > len(buf):
            raise TruncatedEntry("float body past end of buffer")
        return _F64.unpack_from(buf, pos)[0], end
    if tag == T_STR:
        length, pos = read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise TruncatedEntry("str body past end of buffer")
        return bytes(buf[pos:end]).decode("utf-8"), end
    if tag == T_BYTES:
        length, pos = read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise TruncatedEntry("bytes body past end of buffer")
        return bytes(buf[pos:end]), end
    if tag == T_LIST:
        count, pos = read_uvarint(buf, pos)
        items: List[object] = []
        for _ in range(count):
            item, pos = decode_value(buf, pos)
            items.append(item)
        return items, pos
    if tag == T_DICT:
        count, pos = read_uvarint(buf, pos)
        mapping: Dict[str, object] = {}
        for _ in range(count):
            length, pos = read_uvarint(buf, pos)
            end = pos + length
            if end > len(buf):
                raise TruncatedEntry("dict key past end of buffer")
            key = bytes(buf[pos:end]).decode("utf-8")
            mapping[key], pos = decode_value(buf, end)
        return mapping, pos
    if tag == T_HEX32:
        end = pos + 32
        if end > len(buf):
            raise TruncatedEntry("hex32 body past end of buffer")
        return bytes(buf[pos:end]).hex(), end
    raise CorruptEntry(f"unknown value tag 0x{tag:02x}")


# -- shape-packed record codec ------------------------------------------------

SHAPE_ID_SIZE = 8

# Per-field column codes, chosen per record at encode time:
#   i  int32    q  int64    d  float64    ?  bool
#   N  None (zero bytes)    V  varlen tail (generic codec)
_FIXED_CODES = frozenset("iqd?")
_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _code_of(value: object) -> str:
    if value is None:
        return "N"
    if isinstance(value, bool):
        return "?"
    if isinstance(value, int):
        if _INT32_MIN <= value <= _INT32_MAX:
            return "i"
        if _INT64_MIN <= value <= _INT64_MAX:
            return "q"
        return "V"
    if isinstance(value, float):
        return "d"
    return "V"


class Shape:
    """One record layout: ordered field names + per-field column codes.

    ``shape_id`` is the first 8 bytes of the SHA-256 of the packed
    shape block, so identical layouts hash identically in every
    process -- payloads referencing a shape are portable bytes.  The
    constructor precomputes the decode plan (fixed/None/varlen key
    tuples) so decoding is ``unpack_from`` + ``dict(zip(...))`` plus
    one generic decode per varlen field -- no per-field branching.
    """

    __slots__ = (
        "shape_id",
        "block",
        "keys",
        "codes",
        "fixed_struct",
        "all_fixed",
        "fixed_keys",
        "none_keys",
        "var_keys",
        "var_start",
    )

    def __init__(self, keys: Tuple[str, ...], codes: str):
        if len(keys) != len(codes):
            raise CodecError("shape keys/codes length mismatch")
        self.keys = keys
        self.codes = codes
        self.block = _pack_shape_block(keys, codes)
        self.shape_id = hashlib.sha256(self.block).digest()[:SHAPE_ID_SIZE]
        fmt = "<" + "".join(code for code in codes if code in _FIXED_CODES)
        self.fixed_struct = struct.Struct(fmt)
        self.all_fixed = len(fmt) - 1 == len(keys)
        self.fixed_keys = tuple(
            key for key, code in zip(keys, codes) if code in _FIXED_CODES
        )
        self.none_keys = tuple(
            key for key, code in zip(keys, codes) if code == "N"
        )
        self.var_keys = tuple(
            key for key, code in zip(keys, codes) if code == "V"
        )
        self.var_start = SHAPE_ID_SIZE + self.fixed_struct.size


def _pack_shape_block(keys: Tuple[str, ...], codes: str) -> bytes:
    out = bytearray()
    write_uvarint(out, len(keys))
    for key, code in zip(keys, codes):
        raw = key.encode("utf-8")
        write_uvarint(out, len(raw))
        out += raw
        out.append(ord(code))
    return bytes(out)


def _parse_shape_block(block: bytes) -> Tuple[Tuple[str, ...], str]:
    count, pos = read_uvarint(block, 0)
    keys: List[str] = []
    codes: List[str] = []
    for _ in range(count):
        length, pos = read_uvarint(block, pos)
        end = pos + length
        if end + 1 > len(block):
            raise CorruptEntry("shape block truncated")
        keys.append(bytes(block[pos:end]).decode("utf-8"))
        code = chr(block[end])
        if code not in _FIXED_CODES and code not in ("N", "V"):
            raise CorruptEntry(f"unknown field code {code!r}")
        codes.append(code)
        pos = end + 1
    if pos != len(block):
        raise CorruptEntry("trailing bytes after shape block")
    return tuple(keys), "".join(codes)


class ShapeRegistry:
    """Content-addressed shape table, shared by store and wire layers.

    Registration is idempotent (the id is a content hash), so every
    shard file and every connection can redundantly carry definitions
    without coordination; readers register whatever they see.
    """

    def __init__(self):
        self._by_id: Dict[bytes, Shape] = {}
        self._by_sig: Dict[Tuple[Tuple[str, ...], str], Shape] = {}
        self._lock = threading.Lock()

    def get(self, shape_id: bytes) -> Optional[Shape]:
        return self._by_id.get(bytes(shape_id))

    def shape_for(self, keys: Tuple[str, ...], codes: str) -> Shape:
        """The (memoized) shape for one ``keys``/``codes`` signature."""
        shape = self._by_sig.get((keys, codes))
        if shape is None:
            shape = Shape(keys, codes)
            with self._lock:
                shape = self._by_id.setdefault(shape.shape_id, shape)
                self._by_sig[(keys, codes)] = shape
        return shape

    def register_block(self, block: bytes) -> Shape:
        """Register a shape definition received from a file or frame."""
        shape_id = hashlib.sha256(bytes(block)).digest()[:SHAPE_ID_SIZE]
        shape = self._by_id.get(shape_id)
        if shape is None:
            keys, codes = _parse_shape_block(bytes(block))
            shape = self.shape_for(keys, codes)
        return shape

    def __len__(self) -> int:
        return len(self._by_id)


GLOBAL_SHAPES = ShapeRegistry()
"""Process-global registry; the default for every codec entry point."""


def encode_record(
    record: Record, registry: Optional[ShapeRegistry] = None
) -> Tuple[bytes, Shape]:
    """Encode *record* as ``shape_id + fixed columns + varlen tail``.

    Returns ``(payload, shape)``; the caller owns making sure the
    shape definition (``shape.block``) reaches every container the
    payload is written to before the payload itself.
    """
    timed = telemetry_enabled()
    start = time.perf_counter() if timed else 0.0
    registry = GLOBAL_SHAPES if registry is None else registry
    keys = tuple(record)
    codes = "".join(_code_of(record[key]) for key in keys)
    shape = registry.shape_for(keys, codes)
    out = bytearray(shape.shape_id)
    fixed = [
        record[key]
        for key, code in zip(keys, codes)
        if code in _FIXED_CODES
    ]
    out += shape.fixed_struct.pack(*fixed)
    if not shape.all_fixed:
        for key, code in zip(keys, codes):
            if code == "V":
                encode_value(record[key], out)
    payload = bytes(out)
    STATS.encoded_records += 1
    STATS.encoded_record_bytes += len(payload)
    if timed:
        metrics = get_metrics()
        metrics.inc(
            "codec.encode_ns",
            (time.perf_counter() - start) * 1e9,
        )
        metrics.inc("codec.encoded_records")
        metrics.inc("codec.encoded_record_bytes", len(payload))
    return payload, shape


def decode_record(
    payload: bytes, registry: Optional[ShapeRegistry] = None
) -> Record:
    """Decode a shape-packed payload back into its record dict.

    Raises :class:`UnknownShapeError` when the shape definition has
    not reached *registry* yet (store scans treat that as a stale
    index and rescan; wire peers always ship definitions first).
    """
    timed = telemetry_enabled()
    start = time.perf_counter() if timed else 0.0
    registry = GLOBAL_SHAPES if registry is None else registry
    shape = registry.get(bytes(payload[:SHAPE_ID_SIZE]))
    if shape is None:
        raise UnknownShapeError(bytes(payload[:SHAPE_ID_SIZE]).hex())
    fixed = shape.fixed_struct.unpack_from(payload, SHAPE_ID_SIZE)
    if shape.all_fixed:
        record: Record = dict(zip(shape.keys, fixed))
    else:
        # Decoded field order follows the precomputed plan, not the
        # encoded order; records are plain dicts, so only membership
        # and values matter for equality.
        record = dict(zip(shape.fixed_keys, fixed))
        for key in shape.none_keys:
            record[key] = None
        pos = shape.var_start
        for key in shape.var_keys:
            record[key], pos = decode_value(payload, pos)
    STATS.decoded_records += 1
    STATS.decoded_record_bytes += len(payload)
    if timed:
        metrics = get_metrics()
        metrics.inc(
            "codec.decode_ns",
            (time.perf_counter() - start) * 1e9,
        )
        metrics.inc("codec.decoded_records")
        metrics.inc("codec.decoded_record_bytes", len(payload))
    return record


def shape_of_payload(
    payload: bytes, registry: Optional[ShapeRegistry] = None
) -> Optional[Shape]:
    """The registered shape a payload references, if known."""
    registry = GLOBAL_SHAPES if registry is None else registry
    return registry.get(bytes(payload[:SHAPE_ID_SIZE]))


# -- store entry framing ------------------------------------------------------

ENTRY_MAGIC = b"\xa7R"
_ENTRY_HEADER = struct.Struct("<2sIB")
ENTRY_HEADER_SIZE = _ENTRY_HEADER.size


def _header_check(body_len: int) -> int:
    """1-byte checksum over the length field.

    A 2-byte magic alone has a ~1/65k false-positive rate per scanned
    byte during :func:`resync`; requiring the 4 length bytes to
    checksum correctly (and the body kind to validate) makes a stray
    match vanishingly unlikely to derail a torn-tail recovery.
    """
    return (
        0xA5
        ^ (body_len & 0xFF)
        ^ ((body_len >> 8) & 0xFF)
        ^ ((body_len >> 16) & 0xFF)
        ^ ((body_len >> 24) & 0xFF)
    )

BODY_RECORD = 0x01
BODY_SHAPE = 0x02

_KEY_UTF8 = 0x00  # uvarint length + UTF-8 bytes
_KEY_HEX32 = 0x01  # 64-char lowercase hex key packed to 32 bytes
_KEY_COORD = 0x02  # "coord:" + 64-char hex key packed to 32 bytes

_COORD_PREFIX = "coord:"


def _pack_key(out: bytearray, key: str) -> None:
    if len(key) == 64 and _HEX64.match(key):
        out.append(_KEY_HEX32)
        out += bytes.fromhex(key)
    elif (
        len(key) == 70
        and key.startswith(_COORD_PREFIX)
        and _HEX64.match(key[6:])
    ):
        out.append(_KEY_COORD)
        out += bytes.fromhex(key[6:])
    else:
        raw = key.encode("utf-8")
        out.append(_KEY_UTF8)
        write_uvarint(out, len(raw))
        out += raw


def _read_key(buf: bytes, pos: int) -> Tuple[str, int]:
    try:
        flag = buf[pos]
    except IndexError:
        raise TruncatedEntry("key flag past end of buffer") from None
    pos += 1
    if flag == _KEY_HEX32 or flag == _KEY_COORD:
        end = pos + 32
        if end > len(buf):
            raise TruncatedEntry("packed key past end of buffer")
        key = bytes(buf[pos:end]).hex()
        if flag == _KEY_COORD:
            key = _COORD_PREFIX + key
        return key, end
    if flag == _KEY_UTF8:
        length, pos = read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise TruncatedEntry("key bytes past end of buffer")
        return bytes(buf[pos:end]).decode("utf-8"), end
    raise CorruptEntry(f"unknown key flag 0x{flag:02x}")


def pack_record_entry(key: str, stamp: float, payload: bytes) -> bytes:
    """Frame one record payload as a store entry."""
    body = bytearray((BODY_RECORD,))
    _pack_key(body, key)
    body += _F64.pack(stamp)
    body += payload
    header = _ENTRY_HEADER.pack(
        ENTRY_MAGIC, len(body), _header_check(len(body))
    )
    return header + bytes(body)


def pack_shape_entry(block: bytes) -> bytes:
    """Frame one shape definition as a store entry."""
    body = bytes((BODY_SHAPE,)) + bytes(block)
    header = _ENTRY_HEADER.pack(
        ENTRY_MAGIC, len(body), _header_check(len(body))
    )
    return header + body


class RecordEntry:
    """Parsed header of one record entry (payload *not* decoded)."""

    __slots__ = ("key", "stamp", "offset", "length", "payload_slice")

    def __init__(
        self,
        key: str,
        stamp: float,
        offset: int,
        length: int,
        payload_slice: Tuple[int, int],
    ):
        self.key = key
        self.stamp = stamp
        self.offset = offset
        self.length = length
        self.payload_slice = payload_slice


def read_entry(
    buf: bytes,
    offset: int,
    end: int,
    registry: Optional[ShapeRegistry] = None,
) -> Tuple[Optional[RecordEntry], int]:
    """Parse the store entry starting at *offset* in ``buf[:end]``.

    Returns ``(entry, next_offset)``; *entry* is ``None`` for a shape
    definition (registered into *registry* as a side effect).  Raises
    :class:`TruncatedEntry` when the entry runs past *end* (a writer
    mid-append -- stop scanning and retry later) and
    :class:`CorruptEntry` on bad bytes (resynchronize via
    :func:`resync`).
    """
    if offset + ENTRY_HEADER_SIZE > end:
        raise TruncatedEntry("entry header past end of buffer")
    magic, body_len, check = _ENTRY_HEADER.unpack_from(buf, offset)
    if magic != ENTRY_MAGIC:
        raise CorruptEntry(f"bad entry magic {magic!r} at {offset}")
    if check != _header_check(body_len):
        raise CorruptEntry(f"entry header checksum mismatch at {offset}")
    body_start = offset + ENTRY_HEADER_SIZE
    body_end = body_start + body_len
    if body_end > end:
        raise TruncatedEntry("entry body past end of buffer")
    if body_len < 1:
        raise CorruptEntry("empty entry body")
    kind = buf[body_start]
    if kind == BODY_SHAPE:
        registry = GLOBAL_SHAPES if registry is None else registry
        registry.register_block(bytes(buf[body_start + 1 : body_end]))
        return None, body_end
    if kind != BODY_RECORD:
        raise CorruptEntry(f"unknown entry kind 0x{kind:02x}")
    key, pos = _read_key(buf, body_start + 1)
    if pos + 8 > body_end:
        raise CorruptEntry("record entry too short for timestamp")
    stamp = _F64.unpack_from(buf, pos)[0]
    pos += 8
    if body_end - pos < SHAPE_ID_SIZE:
        raise CorruptEntry("record entry too short for payload")
    entry = RecordEntry(
        key, stamp, offset, body_end - offset, (pos, body_end)
    )
    return entry, body_end


def scan_entries(
    buf: bytes,
    start: int,
    end: int,
    registry: Optional[ShapeRegistry] = None,
) -> Tuple[List[RecordEntry], int]:
    """Parse every entry in ``buf[start:end]``, resyncing over garbage.

    Shape definitions are registered into *registry* as a side
    effect; record entries are returned in file order.  The second
    return value is how far the scan validated: a truncated tail
    entry (writer mid-append) stays unscanned so a later pass can
    finish it once complete.
    """
    entries: List[RecordEntry] = []
    offset = start
    while offset < end:
        try:
            entry, next_offset = read_entry(buf, offset, end, registry)
        except TruncatedEntry:
            break
        except CorruptEntry:
            found = resync(buf, offset + 1, end)
            if found is None:
                offset = end
                break
            offset = found
            continue
        if entry is not None:
            entries.append(entry)
        offset = next_offset
    return entries, offset


def resync(buf: bytes, offset: int, end: int) -> Optional[int]:
    """Find the next plausible entry start at or after *offset*.

    Scans for the entry magic and validates that a parseable entry
    (or a truncated tail, which a later scan will finish) starts
    there.  Returns ``None`` when no candidate exists before *end*.
    Recovers the bytes appended after a torn write from a crashed
    writer, the binary analogue of JSONL's newline resync.
    """
    while True:
        found = buf.find(ENTRY_MAGIC, offset, end)
        if found < 0:
            return None
        try:
            read_entry(buf, found, end)
        except CorruptEntry:
            offset = found + 1
            continue
        except TruncatedEntry:
            return found
        return found


# -- wire frames --------------------------------------------------------------

FRAME_MAGIC = b"\xa6R"
_FRAME_HEADER = struct.Struct("<2sI")
FRAME_HEADER_SIZE = _FRAME_HEADER.size

MAX_FRAME_BODY = 64 * 1024 * 1024
"""Sanity bound on one frame body; anything larger is a protocol error."""


def encode_wire_frame(frame: Dict[str, object]) -> bytes:
    """Frame one message dict as ``magic + u32 length + body``."""
    body = bytearray()
    encode_value(frame, body)
    STATS.encoded_frames += 1
    STATS.encoded_frame_bytes += FRAME_HEADER_SIZE + len(body)
    if telemetry_enabled():
        metrics = get_metrics()
        metrics.inc("wire.frames_out")
        metrics.inc("wire.bytes_out", FRAME_HEADER_SIZE + len(body))
    return _FRAME_HEADER.pack(FRAME_MAGIC, len(body)) + bytes(body)


def decode_wire_body(body: bytes) -> Dict[str, object]:
    """Decode one frame body back into its message dict."""
    try:
        frame, pos = decode_value(body, 0)
    except (CorruptEntry, TruncatedEntry) as exc:
        raise WireProtocolError(f"bad frame body: {exc}") from exc
    if not isinstance(frame, dict) or pos != len(body):
        raise WireProtocolError("frame body is not a single dict")
    STATS.decoded_frames += 1
    STATS.decoded_frame_bytes += FRAME_HEADER_SIZE + len(body)
    if telemetry_enabled():
        metrics = get_metrics()
        metrics.inc("wire.frames_in")
        metrics.inc("wire.bytes_in", FRAME_HEADER_SIZE + len(body))
    return frame


def parse_frame_header(header: bytes) -> int:
    """Validate a 6-byte frame header; returns the body length."""
    if len(header) != FRAME_HEADER_SIZE:
        raise WireProtocolError("short frame header")
    magic, body_len = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise WireProtocolError(f"bad frame magic {magic!r}")
    if body_len > MAX_FRAME_BODY:
        raise WireProtocolError(f"oversized frame body ({body_len} bytes)")
    return body_len


def read_wire_frame(stream) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking binary *stream* (file-like).

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`WireProtocolError` on torn or malformed frames.
    """
    header = _read_exact(stream, FRAME_HEADER_SIZE)
    if header is None:
        return None
    body_len = parse_frame_header(header)
    body = _read_exact(stream, body_len)
    if body is None:
        raise WireProtocolError("stream closed mid-frame")
    return decode_wire_body(body)


def _read_exact(stream, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; ``None`` on EOF before the first."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise WireProtocolError("stream closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def frame_shapes(
    payloads: Iterator[bytes],
    sent: set,
    registry: Optional[ShapeRegistry] = None,
) -> List[bytes]:
    """Shape blocks that must precede *payloads* on a stream.

    Collects the definitions of every referenced shape not yet in
    *sent* (a per-connection set of shape ids, updated in place).
    """
    registry = GLOBAL_SHAPES if registry is None else registry
    blocks: List[bytes] = []
    for payload in payloads:
        shape_id = bytes(payload[:SHAPE_ID_SIZE])
        if shape_id in sent:
            continue
        shape = registry.get(shape_id)
        if shape is not None:
            blocks.append(shape.block)
            sent.add(shape_id)
    return blocks
