"""Asyncio execution backend: subprocess workers + streaming delivery.

The process-pool backend barriers: ``pool.map`` hands records back in
input order, so one slow job at the front blocks everything behind it.
The async backend instead runs an asyncio event loop over ``W`` worker
subprocesses (see :mod:`repro.runtime.worker` for the wire protocol)
and **streams** ``(index, record)`` pairs back the moment each job
lands, in completion order.  ``run_jobs`` consumes the stream to store
fresh records into the cache eagerly; ``iter_jobs`` exposes it to
callers that want progressive delivery (dashboards, early aborts).

Because the protocol is length-prefixed binary frames over pipes
(:mod:`repro.runtime.codec`) rather than pickle over a
``ProcessPoolExecutor``, workers can also consult the shared sharded
store *themselves* (``store_dir``): concurrent orchestrators with
overlapping grids then exchange results through the fcntl-locked
on-disk index mid-flight -- cross-process cache sharing, not just
cross-invocation persistence.  Specs and records travel as
shape-packed codec payloads, so a worker's freshly-encoded record
bytes land in the store and on the pipe without a re-encode.

The event loop runs on a dedicated thread so the public surface stays
synchronous and generator-shaped, interchangeable with the serial and
process backends (same records, same order guarantees in
:func:`~repro.runtime.executor.run_jobs`).
"""

from __future__ import annotations

import asyncio
import os
import queue
import sys
import threading
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from .codec import (
    FRAME_HEADER_SIZE,
    GLOBAL_SHAPES,
    WireProtocolError,
    decode_record,
    decode_wire_body,
    encode_record,
    encode_wire_frame,
    frame_shapes,
    parse_frame_header,
)
from .jobs import JobSpec, Record

_SENTINEL = object()


class AsyncWorkerError(RuntimeError):
    """A worker subprocess reported a job failure or died."""


def _worker_env() -> dict:
    """Environment for workers: inherit, but guarantee repro importable.

    The parent may run from a source checkout without an installed
    package; prepending the package's parent directory to PYTHONPATH
    makes ``python -m repro.runtime.worker`` resolve either way.
    """
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class AsyncBackend:
    """Fans jobs over asyncio-managed worker subprocesses.

    Args:
        max_workers: worker subprocess count; defaults to
            ``os.cpu_count()`` capped at the number of jobs.
        store_dir: optional sharded-store directory workers consult
            before executing (and append fresh records to), enabling
            cache sharing across concurrent orchestrator processes.
    """

    name = "async"
    # Workers regenerate graphs from specs, like the process pool.
    wants_graph_hints = False
    # run_stream wants the cache keys so workers can hit the shared store.
    wants_keys = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        store_dir: Optional[str] = None,
    ):
        self.max_workers = max_workers
        self.store_dir = str(store_dir) if store_dir else None

    # -- public API -----------------------------------------------------------

    def run(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
        keys: Optional[Sequence[str]] = None,
    ) -> List[Record]:
        """Execute *specs*, returning records in input order."""
        records: List[Optional[Record]] = [None] * len(specs)
        for index, record, _seconds in self.run_stream(
            specs, graphs=graphs, keys=keys
        ):
            records[index] = record
        return [r for r in records if r is not None]

    def run_stream(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
        keys: Optional[Sequence[str]] = None,
    ) -> Iterator[Tuple[int, Record, Optional[float]]]:
        """Yield ``(index, record, seconds)`` triples in completion order.

        *graphs* is accepted for backend-interface parity and ignored
        (workers regenerate inputs from specs).  *keys* are the cache
        keys ``run_jobs`` already derived; they ride along so workers
        can consult the shared store.  ``seconds`` is the worker-side
        wall-time of an executed job (``None`` for store hits).
        """
        specs = list(specs)
        if not specs:
            return
        out: "queue.Queue" = queue.Queue()
        worker_count = self.max_workers or min(
            len(specs), os.cpu_count() or 1
        )
        worker_count = max(1, min(worker_count, len(specs)))

        def pump():
            try:
                asyncio.run(
                    self._serve(specs, keys, worker_count, out)
                )
            except BaseException as exc:  # surfaced by the consumer
                out.put(exc)
            finally:
                out.put(_SENTINEL)

        thread = threading.Thread(
            target=pump, name="repro-async-backend", daemon=True
        )
        thread.start()
        try:
            while True:
                item = out.get()
                if item is _SENTINEL:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            thread.join()

    # -- event loop internals -------------------------------------------------

    async def _serve(
        self,
        specs: List[JobSpec],
        keys: Optional[Sequence[str]],
        worker_count: int,
        out: "queue.Queue",
    ) -> None:
        pending: "asyncio.Queue" = asyncio.Queue()
        for index, spec in enumerate(specs):
            key = keys[index] if keys is not None else None
            pending.put_nowait((index, spec, key))
        for _ in range(worker_count):
            pending.put_nowait(None)  # one stop token per worker
        tasks = [
            asyncio.create_task(self._worker_loop(pending, out))
            for _ in range(worker_count)
        ]
        try:
            await asyncio.gather(*tasks)
        finally:
            for task in tasks:
                task.cancel()

    async def _worker_loop(
        self, pending: "asyncio.Queue", out: "queue.Queue"
    ) -> None:
        argv = [sys.executable, "-u", "-m", "repro.runtime.worker"]
        if self.store_dir:
            argv += ["--store", self.store_dir]
        proc = await asyncio.create_subprocess_exec(
            *argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=_worker_env(),
        )
        sent_shapes: set = set()
        try:
            while True:
                item = await pending.get()
                if item is None:
                    break
                index, spec, key = item
                spec_pkd, _shape = encode_record(spec.to_payload())
                request = {
                    "id": index,
                    "spec_pkd": spec_pkd,
                    "key": key,
                    "shapes": frame_shapes(iter((spec_pkd,)), sent_shapes),
                }
                proc.stdin.write(encode_wire_frame(request))
                await proc.stdin.drain()
                response = await self._read_response(proc, index, spec)
                if "error" in response:
                    detail = response.get("traceback") or response["error"]
                    raise AsyncWorkerError(
                        f"job #{index} ({spec.kind}) failed in worker: "
                        f"{detail}"
                    )
                for block in response.get("shapes") or ():
                    GLOBAL_SHAPES.register_block(block)
                out.put(
                    (
                        response["id"],
                        decode_record(bytes(response["record_pkd"])),
                        response.get("seconds"),
                    )
                )
        finally:
            if proc.returncode is None:
                try:
                    proc.stdin.write(encode_wire_frame({"op": "exit"}))
                    await proc.stdin.drain()
                    proc.stdin.close()
                    await asyncio.wait_for(proc.wait(), timeout=5)
                except (OSError, asyncio.TimeoutError, ConnectionError):
                    proc.kill()
                    await proc.wait()

    @staticmethod
    async def _read_response(proc, index: int, spec: JobSpec) -> dict:
        """Read one binary result frame from a worker subprocess."""
        try:
            header = await proc.stdout.readexactly(FRAME_HEADER_SIZE)
            body = await proc.stdout.readexactly(parse_frame_header(header))
        except (asyncio.IncompleteReadError, WireProtocolError):
            stderr = (await proc.stderr.read()).decode(errors="replace")
            raise AsyncWorkerError(
                f"worker died while running spec #{index} "
                f"({spec.kind}): {stderr.strip()[-2000:]}"
            ) from None
        return decode_wire_body(body)
