"""Planarity testing as a service: the persistent sweep server.

The per-batch :class:`~repro.runtime.remote.RemoteBackend` owns its
fleet for the lifetime of one ``run_stream`` call; this module lifts
the same binary frame protocol (:mod:`repro.runtime.codec`) into a
**long-lived server** (``repro-planarity serve --listen host:port``)
that many clients submit sweeps to concurrently while sharing one
worker fleet and one sharded store.  Workers connect exactly as they
do to a batch server (same ``hello``/``welcome`` handshake, same
``job``/``result``/``ping``/``pong`` frames -- see
:func:`~repro.runtime.remote.welcome_worker`); clients open with a
``submit`` frame, which is how the server tells the two peer types
apart from the first frame.

Client-side ops (layered next to the worker ops):

=============  =========================================================
frame          fields
=============  =========================================================
``submit``     client -> server: ``protocol``, ``client`` (display
               name), ``sweep_json`` (JSON of
               :meth:`SweepSpec.to_payload`)
``progress``   server -> client: ``done``, ``total``, ``queued``,
               ``inflight``, ``workers`` -- sent on acceptance and
               whenever the fleet changes shape
``record``     server -> client: ``index`` (position in the sweep's
               canonical expansion), ``record_pkd``, ``shapes``,
               ``hit``, ``seconds``, plus running ``done``/``total``
``verdict``    server -> client, once, last: ``ok``, ``jobs``,
               ``executed``, ``hits``, ``speculated``, ``cancelled``,
               optional ``error``
``cancel``     client -> server: drop my queued jobs (in-flight jobs
               finish into the store); answered with a ``verdict``
``reject``     server -> client: admission or protocol failure
=============  =========================================================

Scheduling: one round-robin pointer walks the connected clients'
queues, so two clients fair-share the fleet no matter how unequal
their sweeps are; a worker only receives jobs whose kind it
registered at handshake.  Admission control bounds the server
(``max_clients`` sessions, ``max_pending`` queued jobs across all of
them); overload is an explicit ``reject``, never an unbounded queue.

Stragglers: jobs carry a :class:`~repro.runtime.scheduler.CostModel`
prediction from the store's cost history, and a periodic scan
re-dispatches any job whose elapsed time exceeds
:class:`~repro.runtime.scheduler.SpeculationPolicy`'s straggler
threshold to a second worker.  First result wins; the loser's result
is dropped on arrival.  Job frames carry ``nostore: True`` so workers
never append speculated results themselves -- the service persists
the winning copy's bytes exactly once, keeping the store one line
per job no matter how many twins raced.

Identical jobs submitted by different clients coalesce: the second
client becomes a *waiter* on the first client's in-flight job instead
of queueing a duplicate, and both receive the one record.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import get_tracer, telemetry_enabled
from .cache import KeyDeriver
from .codec import (
    GLOBAL_SHAPES,
    TruncatedEntry,
    WireProtocolError,
    encode_record,
    encode_wire_frame,
    frame_shapes,
)
from .jobs import JobSpec
from .remote import (
    PROTOCOL_VERSION,
    _Connection,
    read_bframe,
    read_first_frame,
    reject_peer,
    welcome_worker,
)
from .scheduler import CostBook, CostModel, SpeculationPolicy
from .store import ShardedStore
from .sweeps import SweepSpec
from .worker import _store_payload

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"


class _Job:
    """One unit of submitted work, shared by every client waiting on it."""

    __slots__ = (
        "uid", "spec", "key", "state", "waiters", "copies", "inflight",
        "dispatched_at", "predicted", "conns", "speculated",
    )

    def __init__(self, uid: int, spec: JobSpec, key: str):
        self.uid = uid
        self.spec = spec
        self.key = key
        self.state = _QUEUED
        # (session, index) pairs to notify on completion; the first
        # waiter's session owns the queue slot (fairness accounting).
        self.waiters: List[Tuple["_ClientSession", int]] = []
        self.copies = 0  # dispatches so far (1 = primary only)
        self.inflight = 0  # dispatches not yet resolved
        self.dispatched_at: Optional[float] = None  # first dispatch
        self.predicted: Optional[float] = None  # CostModel seconds
        self.conns: Set[_Connection] = set()  # workers running a copy
        self.speculated = False


class _ClientSession:
    """Server-side state for one connected submit client."""

    __slots__ = (
        "uid", "name", "reader", "writer", "lock", "sent_shapes",
        "queue", "total", "remaining", "hits", "executed", "speculated",
        "cancelled", "failed", "finished", "dead",
    )

    def __init__(self, uid: int, name: str, reader, writer):
        self.uid = uid
        self.name = name
        self.reader = reader
        self.writer = writer
        # Record/progress/verdict frames interleave from worker loops
        # and the client loop; one lock per session keeps them whole.
        self.lock = asyncio.Lock()
        self.sent_shapes: set = set()
        self.queue: Deque[_Job] = deque()
        self.total = 0
        self.remaining = 0
        self.hits = 0
        self.executed = 0
        self.speculated = 0
        self.cancelled = False
        self.failed: Optional[str] = None
        self.finished = asyncio.Event()
        self.dead = False  # write failed: stop talking to it

    async def send(self, frame: dict) -> bool:
        """Send one frame; ``False`` marks the session unreachable."""
        if self.dead:
            return False
        async with self.lock:
            try:
                self.writer.write(encode_wire_frame(frame))
                await self.writer.drain()
                return True
            except (OSError, ConnectionError):
                self.dead = True
                return False

    async def send_record(
        self,
        index: int,
        payload: bytes,
        hit: bool,
        seconds: Optional[float],
    ) -> bool:
        return await self.send({
            "op": "record",
            "index": index,
            "record_pkd": payload,
            "shapes": frame_shapes(iter((payload,)), self.sent_shapes),
            "hit": hit,
            "seconds": seconds,
            "done": self.total - self.remaining,
            "total": self.total,
        })


class SweepService:
    """Persistent sweep server: many clients, one fleet, one store.

    Args:
        host / port: listen endpoint; port ``0`` binds an ephemeral
            port (read :attr:`bound_port` after :meth:`bind`).
        store_dir: shared sharded-store directory.  Submissions are
            answered from it where possible (store hits stream back
            without dispatch), and every executed job's record bytes
            are appended exactly once.
        heartbeat: idle-worker ping interval in seconds.
        max_clients: admission bound on concurrent client sessions.
        max_pending: admission bound on queued jobs across all
            sessions; a submit that would exceed it is rejected.
        speculation: a :class:`~repro.runtime.scheduler.SpeculationPolicy`
            enabling straggler re-dispatch (``None`` disables it).
        speculation_interval: seconds between straggler scans.

    Use as a context manager (``with SweepService(...) as svc:``) or
    via :meth:`start` / :meth:`stop`; :meth:`serve_forever` blocks for
    CLI use.  Thread-safe from the caller's side: the whole server
    runs on one background asyncio loop.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_dir: Optional[str] = None,
        heartbeat: float = 10.0,
        max_clients: int = 16,
        max_pending: int = 100_000,
        speculation: Optional[SpeculationPolicy] = None,
        speculation_interval: float = 1.0,
    ):
        self.host = host
        self.port = port
        self.store_dir = str(store_dir) if store_dir else None
        self.heartbeat = heartbeat
        self.max_clients = max_clients
        self.max_pending = max_pending
        self.speculation = speculation
        self.speculation_interval = speculation_interval
        self.bound_port: Optional[int] = None
        # Test/introspection hooks: primary dispatches as (client name,
        # sweep index) in dispatch order, and twin dispatches likewise.
        self.dispatch_log: List[Tuple[str, int]] = []
        self.speculation_log: List[Tuple[str, int]] = []
        self._socket: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._dispatch: Optional[asyncio.Event] = None
        self._store: Optional[ShardedStore] = None
        self._cost_book: Optional[CostBook] = None
        self._sessions: List[_ClientSession] = []
        self._workers: Set[_Connection] = set()
        self._pending_keys: Dict[str, _Job] = {}
        self._spec_queue: Deque[_Job] = deque()
        self._rr = 0
        self._session_seq = 0
        self._job_seq = 0

    # -- sync facade ----------------------------------------------------------

    @property
    def endpoint(self) -> str:
        """The ``host:port`` string clients and workers dial."""
        return f"{self.host}:{self.bound_port or self.port}"

    @property
    def active_workers(self) -> int:
        return len(self._workers)

    @property
    def active_clients(self) -> int:
        return len(self._sessions)

    def bind(self) -> int:
        """Bind the listen socket now; returns the bound port."""
        if self._socket is None:
            sock = socket.create_server((self.host, self.port))
            sock.setblocking(False)
            self._socket = sock
            self.bound_port = sock.getsockname()[1]
        return self.bound_port

    def start(self) -> "SweepService":
        """Bind and serve on a background thread; returns self."""
        if self._thread is not None:
            return self
        self.bind()
        self._ready.clear()
        self._done.clear()
        self._error = None
        self._thread = threading.Thread(
            target=self._pump, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error
        return self

    def _pump(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._error = exc
        finally:
            self._ready.set()
            self._done.set()

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            # Wait on the explicit done event, not Thread.join: a
            # KeyboardInterrupt delivered inside an earlier join
            # (serve_forever's wait loop) can leave the thread object
            # claiming it already stopped, and trusting that would let
            # the process exit -- killing the daemon loop thread before
            # it sends workers their ``exit`` frames.
            self._done.wait(timeout=30.0)
        self._thread = None
        self._loop = None

    def serve_forever(self) -> None:
        """Blocking variant for the CLI: serve until interrupted."""
        self.start()
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=1.0)
        finally:
            self.stop()
        if self._error is not None:
            raise self._error

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- event loop internals -------------------------------------------------

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._dispatch = asyncio.Event()
        if self.store_dir and self._store is None:
            self._store = ShardedStore(self.store_dir)
            # Materialize store.json now: worker-side store adoption
            # checks for it before the first append happens.
            self._store._ensure_root()
        self._cost_book = CostBook(self._store)
        server = await asyncio.start_server(self._handle, sock=self._socket)
        scan_task = None
        if self.speculation is not None:
            scan_task = asyncio.ensure_future(self._speculation_scan())
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            if scan_task is not None:
                scan_task.cancel()
            server.close()
            for conn in list(self._workers):
                try:
                    conn.writer.write(encode_wire_frame({"op": "exit"}))
                    await conn.writer.drain()
                except (OSError, ConnectionError):
                    pass
            await server.wait_closed()
            self._cost_book.flush()
            self._socket = None
            self.bound_port = None

    def _pulse(self) -> None:
        """Wake every worker waiting for dispatchable work."""
        event, self._dispatch = self._dispatch, asyncio.Event()
        event.set()

    async def _handle(self, reader, writer) -> None:
        """Route a fresh connection: worker (``hello``) or client
        (``submit``), told apart by the opening frame."""
        try:
            try:
                first = await asyncio.wait_for(
                    read_first_frame(reader),
                    timeout=max(self.heartbeat, 10.0),
                )
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ValueError,  # covers WireProtocolError
            ):
                writer.close()
                return
            op = first.get("op")
            if first.get("legacy") or op == "hello":
                conn = await welcome_worker(
                    reader,
                    writer,
                    kinds_needed=None,  # admit all; filter at dispatch
                    store_dir=self.store_dir,
                    hello=first,
                )
                if conn is not None:
                    await self._worker_loop(conn)
            elif op == "submit":
                await self._client_loop(first, reader, writer)
            else:
                await reject_peer(writer, f"expected hello or submit, got {op!r}")
        except asyncio.CancelledError:
            pass

    # -- client sessions ------------------------------------------------------

    async def _client_loop(self, submit: dict, reader, writer) -> None:
        if submit.get("protocol") != PROTOCOL_VERSION:
            await reject_peer(
                writer,
                f"protocol mismatch: server speaks {PROTOCOL_VERSION}, "
                f"client speaks {submit.get('protocol')!r}",
            )
            return
        if len(self._sessions) >= self.max_clients:
            await reject_peer(
                writer,
                f"admission: {self.max_clients} clients already connected",
            )
            return
        try:
            sweep = SweepSpec.from_payload(json.loads(submit["sweep_json"]))
            specs = sweep.expand()
        except (KeyError, TypeError, ValueError) as exc:
            await reject_peer(writer, f"bad submit frame: {exc}")
            return
        queued_total = sum(len(s.queue) for s in self._sessions)
        if queued_total + len(specs) > self.max_pending:
            await reject_peer(
                writer,
                f"admission: {queued_total} jobs queued, submitting "
                f"{len(specs)} would exceed max_pending={self.max_pending}",
            )
            return
        self._session_seq += 1
        name = str(submit.get("client") or f"client-{self._session_seq}")
        session = _ClientSession(self._session_seq, name, reader, writer)
        await self._enqueue_sweep(session, specs)
        self._sessions.append(session)
        self._note_session_gauges(session)
        get_tracer().event(
            "service.submit", client=name, jobs=session.total,
            hits=session.hits,
        )
        await session.send(self._progress_frame(session))
        if session.remaining == 0:
            await self._finish_session(session)
        else:
            self._pulse()
        try:
            await self._client_read_loop(session)
        finally:
            if session in self._sessions:
                self._sessions.remove(session)
            if not session.finished.is_set():
                # Client vanished mid-sweep: drop its queued jobs; any
                # in-flight jobs finish into the store for next time.
                self._drop_queued(session)
            self._note_session_gauges(session, depth=0)
            get_tracer().event("service.disconnect", client=name)
            writer.close()

    async def _enqueue_sweep(
        self, session: _ClientSession, specs: List[JobSpec]
    ) -> None:
        """Answer store hits immediately; queue or adopt the misses."""
        deriver = KeyDeriver()
        model = CostModel.from_store(self._store)
        session.total = len(specs)
        session.remaining = len(specs)
        for index, spec in enumerate(specs):
            key = deriver.key_for(spec)
            payload = (
                _store_payload(self._store, key)
                if self._store is not None
                else None
            )
            if payload is not None:
                # Store reads registered the payload's shapes already,
                # so the bytes forward without a decode.
                session.hits += 1
                session.remaining -= 1
                await session.send_record(index, payload, True, None)
                continue
            job = self._pending_keys.get(key)
            if job is not None and job.state in (_QUEUED, _RUNNING):
                # Another client already wants this exact job: wait on
                # it instead of queueing (and executing) a duplicate.
                job.waiters.append((session, index))
                continue
            self._job_seq += 1
            job = _Job(self._job_seq, spec, key)
            job.waiters.append((session, index))
            job.predicted = model.predict(spec.kind, spec.n)
            self._pending_keys[key] = job
            session.queue.append(job)

    async def _client_read_loop(self, session: _ClientSession) -> None:
        """Service cancel frames and disconnects until the verdict."""
        while True:
            frame_task = asyncio.ensure_future(read_bframe(session.reader))
            fin_task = asyncio.ensure_future(session.finished.wait())
            done, _ = await asyncio.wait(
                {frame_task, fin_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            fin_task.cancel()
            if frame_task not in done:
                frame_task.cancel()
                return  # verdict sent; session complete
            try:
                frame = frame_task.result()
            except (WireProtocolError, OSError):
                frame = None
            if frame is None:
                return  # EOF: caller drops queued jobs
            if frame.get("op") == "cancel":
                await self._cancel_session(session)
                return

    def _drop_queued(self, session: _ClientSession) -> None:
        """Remove *session* from its queued jobs; re-home shared ones."""
        for job in list(session.queue):
            job.waiters = [(s, i) for s, i in job.waiters if s is not session]
            if not job.waiters:
                job.state = _CANCELLED
                self._pending_keys.pop(job.key, None)
            else:
                # Another client still waits on this job: move it to
                # that client's queue so it keeps a fairness slot.
                job.waiters[0][0].queue.append(job)
        session.queue.clear()
        session.cancelled = True

    async def _cancel_session(self, session: _ClientSession) -> None:
        """Client-requested cancel: drop queued jobs, send the verdict."""
        dropped = len(session.queue)
        self._drop_queued(session)
        session.remaining = 0
        get_tracer().event(
            "service.cancel", client=session.name, dropped=dropped
        )
        await self._finish_session(session)

    async def _finish_session(self, session: _ClientSession) -> None:
        if session.finished.is_set():
            return
        verdict = {
            "op": "verdict",
            "ok": session.failed is None and not session.cancelled,
            "jobs": session.total,
            "executed": session.executed,
            "hits": session.hits,
            "speculated": session.speculated,
            "cancelled": session.cancelled,
        }
        if session.failed is not None:
            verdict["error"] = session.failed
        await session.send(verdict)
        session.finished.set()

    def _progress_frame(self, session: _ClientSession) -> dict:
        inflight = sum(
            1
            for job in self._pending_keys.values()
            if job.state == _RUNNING
            and any(s is session for s, _i in job.waiters)
        )
        return {
            "op": "progress",
            "done": session.total - session.remaining,
            "total": session.total,
            "queued": len(session.queue),
            "inflight": inflight,
            "workers": len(self._workers),
        }

    def _note_session_gauges(
        self, session: _ClientSession, depth: Optional[int] = None
    ) -> None:
        if not telemetry_enabled():
            return
        metrics = get_metrics()
        metrics.gauge("service.clients", len(self._sessions))
        metrics.gauge(
            f"service.client.{session.name}.queue_depth",
            len(session.queue) if depth is None else depth,
        )

    # -- worker loops ---------------------------------------------------------

    async def _worker_loop(self, conn: _Connection) -> None:
        """Feed one worker jobs until shutdown or it dies."""
        self._workers.add(conn)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "service.worker_connect",
                worker=conn.name,
                workers=len(self._workers),
            )
            get_metrics().gauge("service.workers", len(self._workers))
        loop = asyncio.get_event_loop()
        last_ping = loop.time()
        try:
            while not self._stop.is_set():
                picked = self._next_job_for(conn)
                if picked is None:
                    waiter = asyncio.ensure_future(self._dispatch.wait())
                    stop_task = asyncio.ensure_future(self._stop.wait())
                    frame_task = conn.next_frame_task()
                    done, _ = await asyncio.wait(
                        {waiter, stop_task, frame_task},
                        timeout=self.heartbeat,
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    waiter.cancel()
                    stop_task.cancel()
                    if self._stop.is_set():
                        return
                    if frame_task in done:
                        try:
                            frame = frame_task.result()
                        except (WireProtocolError, OSError):
                            return  # torn frame or reset: drop worker
                        conn.read_task = None
                        if frame is None:
                            return  # EOF between jobs
                        if frame.get("op") != "pong":
                            return  # unexpected chatter
                        continue
                    if waiter not in done:
                        # Idle heartbeat window elapsed: ping.
                        if loop.time() - last_ping >= self.heartbeat:
                            try:
                                conn.writer.write(
                                    encode_wire_frame({"op": "ping"})
                                )
                                await conn.writer.drain()
                                last_ping = loop.time()
                                conn.ping_sent = time.monotonic()
                            except (OSError, ConnectionError):
                                return
                    continue
                job, speculative = picked
                ok = await self._run_job(conn, job, speculative)
                last_ping = loop.time()
                if not ok:
                    return
        finally:
            self._workers.discard(conn)
            if self._stop.is_set():
                # Tell the worker this is a clean end, not a drop: a
                # --reconnect fleet worker would otherwise redial a
                # server that is going away on purpose.
                try:
                    conn.writer.write(encode_wire_frame({"op": "exit"}))
                    await conn.writer.drain()
                except (OSError, ConnectionError):
                    pass
            if tracer.enabled:
                tracer.event(
                    "service.worker_disconnect",
                    worker=conn.name,
                    jobs_done=conn.jobs_done,
                    workers=len(self._workers),
                )
                get_metrics().gauge("service.workers", len(self._workers))
            conn.writer.close()

    def _next_job_for(
        self, conn: _Connection
    ) -> Optional[Tuple[_Job, bool]]:
        """Round-robin pick over client queues; twins only when idle."""
        sessions = self._sessions
        if sessions:
            n = len(sessions)
            start = self._rr % n
            for offset in range(n):
                session = sessions[(start + offset) % n]
                for i, job in enumerate(session.queue):
                    if job.state != _QUEUED:
                        continue  # stale entry (cancelled elsewhere)
                    if job.spec.kind not in conn.kinds:
                        continue
                    del session.queue[i]
                    self._rr = (start + offset + 1) % n
                    self._note_session_gauges(session)
                    return job, False
        # No primary work anywhere: consider speculative twins.
        picked: Optional[_Job] = None
        keep: Deque[_Job] = deque()
        policy = self.speculation
        while self._spec_queue:
            job = self._spec_queue.popleft()
            if job.state != _RUNNING or (
                policy is not None and job.copies >= policy.max_copies
            ):
                continue  # stale: already done, cancelled, or maxed out
            if (
                picked is None
                and conn not in job.conns
                and job.spec.kind in conn.kinds
            ):
                picked = job
            else:
                keep.append(job)
        self._spec_queue = keep
        if picked is None:
            return None
        return picked, True

    async def _run_job(
        self, conn: _Connection, job: _Job, speculative: bool
    ) -> bool:
        """Dispatch one copy of *job*; ``False`` drops the worker."""
        owner = job.waiters[0][0] if job.waiters else None
        owner_name = owner.name if owner is not None else "?"
        first_index = job.waiters[0][1] if job.waiters else -1
        job.state = _RUNNING
        job.copies += 1
        job.inflight += 1
        job.conns.add(conn)
        if job.dispatched_at is None:
            job.dispatched_at = time.monotonic()
        if speculative:
            job.speculated = True
            self.speculation_log.append((owner_name, first_index))
            if owner is not None:
                owner.speculated += 1
            if telemetry_enabled():
                get_metrics().inc("service.speculations")
            get_tracer().event(
                "service.speculate",
                client=owner_name,
                index=first_index,
                kind=job.spec.kind,
                copies=job.copies,
            )
        else:
            self.dispatch_log.append((owner_name, first_index))
        spec_pkd, _shape = encode_record(job.spec.to_payload())
        request = {
            "op": "job",
            "id": job.uid,
            "spec_pkd": spec_pkd,
            "key": job.key,
            # The service persists the winning copy itself (exactly
            # once); workers must not race their own appends.
            "nostore": True,
            "shapes": frame_shapes(iter((spec_pkd,)), conn.sent_shapes),
        }
        try:
            conn.writer.write(encode_wire_frame(request))
            await conn.writer.drain()
        except (OSError, ConnectionError):
            self._dispatch_failed(conn, job)
            return False
        dispatched = time.perf_counter()
        while True:
            try:
                frame = await conn.next_frame_task()
            except (WireProtocolError, OSError):
                frame = None
            conn.read_task = None
            if frame is None:
                self._dispatch_failed(conn, job, dispatched)
                return False
            op = frame.get("op")
            if op == "pong":
                continue
            if op != "result" or frame.get("id") != job.uid:
                self._dispatch_failed(conn, job, dispatched)
                return False
            break
        job.inflight -= 1
        job.conns.discard(conn)
        if "error" in frame:
            await self._job_errored(job, frame, conn)
            return True  # the job is at fault, not the worker
        record_pkd = frame.get("record_pkd")
        if not isinstance(record_pkd, (bytes, bytearray)):
            self._dispatch_failed(conn, job, dispatched)
            return False
        if job.state != _RUNNING:
            # A twin won the race (or every waiter cancelled): drop
            # this copy -- the store row was already written once.
            if telemetry_enabled():
                get_metrics().inc("service.speculate_drops")
            return True
        try:
            for block in frame.get("shapes") or ():
                GLOBAL_SHAPES.register_block(block)
            payload = bytes(record_pkd)
            if self._store is not None and not frame.get("hit"):
                self._store.put_raw(job.key, payload)
        except (KeyError, ValueError, TruncatedEntry, struct.error):
            self._dispatch_failed(conn, job, dispatched)
            return False
        job.state = _DONE
        self._pending_keys.pop(job.key, None)
        seconds = frame.get("seconds")
        hit = bool(frame.get("hit"))
        conn.jobs_done += 1
        if isinstance(seconds, (int, float)):
            conn.busy_s += max(seconds, 0.0)
            if self._cost_book is not None:
                self._cost_book.observe(job.spec.kind, job.spec.n, seconds)
        for session, index in job.waiters:
            if session.cancelled or session.dead:
                continue
            if hit:
                session.hits += 1
            else:
                session.executed += 1
            session.remaining -= 1
            await session.send_record(index, payload, hit, seconds)
            if session.remaining == 0:
                await self._finish_session(session)
        return True

    async def _job_errored(
        self, job: _Job, frame: dict, conn: _Connection
    ) -> None:
        """Deterministic job failure: fail every waiting session's sweep.

        Retrying elsewhere would fail again (specs carry all their
        randomness), so the sweep aborts -- mirroring the batch
        backend's :class:`~repro.runtime.remote.RemoteWorkerError`.
        """
        detail = frame.get("traceback") or frame.get("error")
        job.state = _DONE
        self._pending_keys.pop(job.key, None)
        get_tracer().event(
            "service.job_error",
            worker=conn.name,
            kind=job.spec.kind,
            error=str(frame.get("error")),
        )
        for session, _index in job.waiters:
            if session.cancelled or session.dead or session.finished.is_set():
                continue
            session.failed = (
                f"job {job.spec.kind!r} failed on {conn.name}: {detail}"
            )
            self._drop_queued(session)
            session.cancelled = False  # failed, not client-cancelled
            await self._finish_session(session)

    def _dispatch_failed(
        self,
        conn: _Connection,
        job: _Job,
        dispatched: Optional[float] = None,
    ) -> None:
        """A copy of *job* died with its worker: requeue if it was the
        last live copy, and feed the partial elapsed time to the cost
        book (a death ``t`` seconds in still bounds the job's cost)."""
        job.inflight -= 1
        job.conns.discard(conn)
        if dispatched is not None and self._cost_book is not None:
            elapsed = max(0.0, time.perf_counter() - dispatched)
            self._cost_book.observe(job.spec.kind, job.spec.n, elapsed)
        if job.state != _RUNNING or job.inflight > 0:
            return  # a twin is still running it, or it already resolved
        live = [(s, i) for s, i in job.waiters if not s.cancelled]
        if not live:
            job.state = _CANCELLED
            self._pending_keys.pop(job.key, None)
            return
        job.state = _QUEUED
        job.dispatched_at = None
        live[0][0].queue.appendleft(job)
        get_tracer().event(
            "service.requeue",
            worker=conn.name,
            client=live[0][0].name,
            kind=job.spec.kind,
        )
        self._pulse()

    async def _speculation_scan(self) -> None:
        """Periodically flag stragglers for re-dispatch."""
        policy = self.speculation
        while True:
            await asyncio.sleep(self.speculation_interval)
            now = time.monotonic()
            flagged = False
            for job in list(self._pending_keys.values()):
                if job.state != _RUNNING or job.dispatched_at is None:
                    continue
                if job in self._spec_queue:
                    continue
                if policy.should_speculate(
                    job.predicted, now - job.dispatched_at, job.copies
                ):
                    self._spec_queue.append(job)
                    flagged = True
            if flagged:
                self._pulse()
