"""Cost-balanced shard scheduling from measured job wall-times.

Hash-sharding (:func:`repro.runtime.sweeps.job_shard`) splits a grid
into equal *counts*, but grid points are not equal *work*: one
``n=2000`` tester job costs as much as dozens of ``n=64`` ones, so a
fleet of hash-balanced shards finishes whenever its unluckiest member
does.  This module closes the loop:

1. every backend reports per-job wall-times (see
   :func:`~repro.runtime.jobs.run_job_timed`); :class:`CostBook`
   aggregates them per ``(kind, n)`` and flushes into the sharded
   store's **metadata shard** (``cost:<kind>:<n>`` records that
   accumulate count/total across runs and processes);
2. :class:`CostModel` loads that history and predicts a cost for any
   spec -- exact mean where the ``(kind, n)`` cell was measured, a
   power-law fit ``a * n**b`` per kind otherwise (experiment grids
   sweep ``n``, so unmeasured sizes interpolate sensibly);
3. :func:`assign_shards` replaces hash placement with an LPT greedy
   (longest processing time first): sort specs by predicted cost,
   assign each to the least-loaded shard.  The assignment is a pure
   function of (specs, shard count, cost table), so every orchestrator
   holding the same history partitions a grid identically -- and when
   there is **no history it degrades to exactly the hash split**, so
   ``balance="cost"`` is always safe to request.

Sharding only affects *who runs what*: cache keys are independent of
shard placement, so mixed assignments (one leg hash-split, another
cost-split) at worst overlap (cache hits) or leave gaps that a final
``--resume`` run fills.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import telemetry_enabled
from .jobs import JobSpec
from .store import ShardedStore

COST_META_PREFIX = "cost:"


def cost_meta_key(kind: str, n: int) -> str:
    """Metadata-shard key of one ``(kind, n)`` cost cell."""
    return f"{COST_META_PREFIX}{kind}:{int(n)}"


@dataclass
class CostBook:
    """Accumulates per-``(kind, n)`` wall-times and flushes them to a store.

    Observations are aggregated in memory (``observe``) and merged
    into the store's metadata shard on ``flush``: each cell is a
    read-modify-write of its ``cost:<kind>:<n>`` record.  Concurrent
    orchestrators can race on a cell; the loser's increment is lost,
    which is acceptable for an advisory cost table.

    ``observe`` is thread-safe: the remote backend logs requeued jobs'
    partial elapsed time from its pump thread while ``iter_jobs``
    observes completed jobs from the consumer thread.  When telemetry
    is enabled and a :class:`CostModel` is attached (``model``), every
    observation also feeds the ``scheduler.cost_rel_error`` histogram
    with ``|actual - predicted| / predicted`` -- the model-quality
    signal the sweep dashboard's ETA depends on.
    """

    store: Optional[ShardedStore] = None
    model: Optional["CostModel"] = None
    _pending: Dict[Tuple[str, int], List[float]] = field(
        default_factory=dict, repr=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def observe(self, kind: str, n: int, seconds: float) -> None:
        """Record one executed job's wall-time."""
        if seconds is None or seconds < 0:
            return
        with self._lock:
            cell = self._pending.setdefault((kind, int(n)), [0.0, 0.0])
            cell[0] += 1
            cell[1] += float(seconds)
        if self.model is not None and telemetry_enabled():
            predicted = self.model.predict(kind, n)
            if predicted:
                get_metrics().observe(
                    "scheduler.cost_rel_error",
                    abs(float(seconds) - predicted) / predicted,
                )

    @property
    def observations(self) -> int:
        """Jobs observed since the last flush."""
        with self._lock:
            return int(
                sum(count for count, _total in self._pending.values())
            )

    def flush(self) -> int:
        """Merge pending observations into the store's metadata shard.

        Returns the number of ``(kind, n)`` cells updated.  A book
        without a store keeps aggregating in memory (``flush`` is a
        no-op returning 0) so cache-less runs stay cheap.
        """
        with self._lock:
            if self.store is None or not self._pending:
                return 0
            pending, self._pending = self._pending, {}
        updated = 0
        for (kind, n), (count, total) in sorted(pending.items()):
            key = cost_meta_key(kind, n)
            existing = self.store.get_meta(key) or {}
            merged_count = float(existing.get("count", 0)) + count
            merged_total = float(existing.get("total_s", 0.0)) + total
            self.store.put_meta(
                key,
                {
                    "kind": kind,
                    "n": int(n),
                    "count": merged_count,
                    "total_s": round(merged_total, 6),
                    "mean_s": round(merged_total / merged_count, 6),
                },
            )
            updated += 1
        return updated


@dataclass
class CostModel:
    """Predicts per-spec wall-times from the store's cost history.

    ``samples[kind][n]`` is the measured mean seconds for that cell;
    ``fits[kind]`` is the per-kind power law ``(a, b)`` with
    ``cost(n) = a * n**b``, least-squares in log-log space over the
    kind's measured sizes (needs >= 2 distinct ``n``).
    """

    samples: Dict[str, Dict[int, float]] = field(default_factory=dict)
    fits: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self):
        for kind, by_n in self.samples.items():
            fit = _fit_power_law(by_n)
            if fit is not None:
                self.fits[kind] = fit

    @property
    def empty(self) -> bool:
        return not self.samples

    @classmethod
    def from_store(cls, store: Optional[ShardedStore]) -> "CostModel":
        """Load every ``cost:*`` record from the store's meta shard."""
        samples: Dict[str, Dict[int, float]] = {}
        if store is not None:
            for key in store.meta_keys():
                if not key.startswith(COST_META_PREFIX):
                    continue
                record = store.get_meta(key)
                if not isinstance(record, dict):
                    continue
                kind = record.get("kind")
                n = record.get("n")
                mean = record.get("mean_s")
                if (
                    isinstance(kind, str)
                    and isinstance(n, (int, float))
                    and isinstance(mean, (int, float))
                    and mean > 0
                ):
                    samples.setdefault(kind, {})[int(n)] = float(mean)
        return cls(samples=samples)

    def predict(self, kind: str, n: int) -> Optional[float]:
        """Predicted seconds for one ``(kind, n)``; ``None`` = no history.

        Exact measured mean when available; the kind's power-law fit
        otherwise; with a single measured size, linear scaling in
        ``n`` from that anchor (round cost is near-linear in ``n`` for
        every workload in the repo).
        """
        by_n = self.samples.get(kind)
        if not by_n:
            return None
        exact = by_n.get(int(n))
        if exact is not None:
            return exact
        fit = self.fits.get(kind)
        if fit is not None:
            a, b = fit
            return a * float(n) ** b
        anchor_n, anchor_mean = next(iter(sorted(by_n.items())))
        return anchor_mean * (float(n) / float(anchor_n or 1))


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to re-dispatch an in-flight job to a second worker.

    The service (:mod:`repro.runtime.service`) scans its running jobs
    against this policy: a job whose elapsed time exceeds ``factor``
    times its :class:`CostModel` prediction -- the same multiple the
    telemetry dashboard uses to flag stragglers -- earns a speculative
    twin on another worker.  First result wins; the duplicate's result
    is dropped on arrival, so the store stays one-line-per-job.

    Attributes:
        factor: elapsed / predicted multiple that flags a straggler
            (matches ``telemetry.dashboard.STRAGGLER_FACTOR``).
        min_seconds: never speculate before this much wall-time, no
            matter the prediction -- guards against thrashing on
            sub-millisecond jobs where dispatch overhead dominates.
        no_history_seconds: elapsed threshold for jobs whose ``(kind,
            n)`` has no cost history (prediction ``None``).
        max_copies: total dispatches per job, original + twins
            (2 = at most one speculative copy).
    """

    factor: float = 3.0
    min_seconds: float = 1.0
    no_history_seconds: float = 10.0
    max_copies: int = 2

    def should_speculate(
        self,
        predicted: Optional[float],
        elapsed: float,
        copies: int,
    ) -> bool:
        """Does a job with *copies* dispatches deserve another one?"""
        if copies >= self.max_copies:
            return False
        if elapsed < self.min_seconds:
            return False
        if predicted is None or predicted <= 0:
            return elapsed >= self.no_history_seconds
        return elapsed >= self.factor * predicted


def _fit_power_law(by_n: Dict[int, float]) -> Optional[Tuple[float, float]]:
    """Least-squares ``log(cost) = log(a) + b*log(n)`` over measured cells."""
    points = [
        (math.log(n), math.log(mean))
        for n, mean in sorted(by_n.items())
        if n > 0 and mean > 0
    ]
    if len(points) < 2:
        return None
    count = float(len(points))
    sum_x = sum(x for x, _y in points)
    sum_y = sum(y for _x, y in points)
    sum_xx = sum(x * x for x, _y in points)
    sum_xy = sum(x * y for x, y in points)
    denom = count * sum_xx - sum_x * sum_x
    if abs(denom) < 1e-12:
        return None
    b = (count * sum_xy - sum_x * sum_y) / denom
    a = math.exp((sum_y - b * sum_x) / count)
    return a, b


def assign_shards(
    specs: Sequence[JobSpec],
    shards: int,
    model: Optional[CostModel] = None,
) -> List[int]:
    """LPT cost-balanced shard assignment (hash fallback without history).

    Deterministic given ``(specs, shards, model)``: specs sort by
    predicted cost descending with the canonical encoding as the tie
    break, and each is placed on the least-loaded shard (lowest index
    on ties).  Specs whose kind has no history cost the batch's mean
    predicted cost (so they spread evenly rather than piling onto one
    shard); when *nothing* has history the assignment is exactly
    :func:`~repro.runtime.sweeps.job_shard`'s hash split.
    """
    from .sweeps import job_shard  # local import: sweeps imports us

    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    specs = list(specs)
    costs: List[Optional[float]] = [
        model.predict(spec.kind, spec.n) if model is not None else None
        for spec in specs
    ]
    known = [cost for cost in costs if cost is not None]
    if not known:
        return [job_shard(spec, shards) for spec in specs]
    default = sum(known) / len(known)
    resolved = [cost if cost is not None else default for cost in costs]
    order = sorted(
        range(len(specs)),
        key=lambda i: (-resolved[i], specs[i].canonical()),
    )
    loads = [0.0] * shards
    assignment = [0] * len(specs)
    for i in order:
        target = min(range(shards), key=lambda s: (loads[s], s))
        assignment[i] = target
        loads[target] += resolved[i]
    return assignment
