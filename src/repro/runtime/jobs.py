"""Declarative job specs for every unit of work in the repo.

A :class:`JobSpec` names a *kind* of computation (planarity test,
partition, spanner construction, application tester), the graph it runs
on (family or far-family + size + seed), and a frozen configuration
mapping.  Specs are hashable and canonically serializable, so they can
be deduplicated, dispatched to process pools, and used as cache keys.

Running a spec produces a *record*: a flat ``dict`` of primitives
(numbers, strings, bools) in a deterministic key order.  Records are the
only thing that crosses process boundaries or lands in the cache, which
keeps both pickling and JSON persistence trivial and guarantees that the
serial and process-pool backends produce byte-identical aggregates.

New job kinds register with :func:`register_kind`; the registry maps the
kind name to a module-level runner (module-level so it pickles), making
the runtime extensible from application code without touching this file.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import networkx as nx

from ..graphs.far_from_planar import make_far
from ..graphs.generators import make_planar
from ..telemetry.metrics import get_metrics
from ..telemetry.spans import get_tracer, telemetry_enabled

Record = Dict[str, Any]
Runner = Callable[["JobSpec", nx.Graph], Record]

_RUNNERS: Dict[str, Runner] = {}
_GRAPHLESS: set = set()


def register_kind(kind: str, runner: Runner, needs_graph: bool = True) -> None:
    """Register *runner* for *kind*; overwrites a previous registration.

    Args:
        needs_graph: ``False`` for kinds that build their own input
            (e.g. the lower-bound instance audit): the executor then
            never generates a graph for the spec -- the runner receives
            ``None`` and must fill ``n``/``m`` in its record itself.
            Such specs are always cache-keyed by coordinates.
    """
    _RUNNERS[kind] = runner
    if needs_graph:
        _GRAPHLESS.discard(kind)
    else:
        _GRAPHLESS.add(kind)


def kind_needs_graph(kind: str) -> bool:
    """Whether *kind*'s runner consumes a generated input graph."""
    return kind not in _GRAPHLESS


def spec_needs_graph(spec: "JobSpec") -> bool:
    """Whether *spec* requires its input graph to be generated."""
    return kind_needs_graph(spec.kind)


def job_kinds() -> Tuple[str, ...]:
    """All registered job kinds, sorted."""
    return tuple(sorted(_RUNNERS))


def _freeze(value: Any) -> Any:
    """Recursively convert mappings/sequences to hashable tuples."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_freeze(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return tuple(items)
    return value


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: ``kind`` applied to a generated graph.

    Attributes:
        kind: registered job kind (see :func:`job_kinds`).
        family: planar family name (ignored when *far* is set).
        far: far-from-planar family name, or ``None``.
        n: requested graph size (generators may round).
        seed: master seed for graph generation and algorithm randomness.
        graph_seed: when set, the graph is generated from this seed
            instead of ``seed`` -- so repeated trials (varying ``seed``)
            can replay the *same* graph, sharing its fingerprint, its
            built instance, and its compiled simulator topology.
        config: frozen ``(key, value)`` tuple of kind-specific knobs
            (e.g. ``epsilon``, ``method``, ``delta``); build it with
            :meth:`make`.
    """

    kind: str
    family: str = "delaunay"
    far: Optional[str] = None
    n: int = 500
    seed: int = 0
    config: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    graph_seed: Optional[int] = None

    @classmethod
    def make(
        cls,
        kind: str,
        family: str = "delaunay",
        far: Optional[str] = None,
        n: int = 500,
        seed: int = 0,
        graph_seed: Optional[int] = None,
        **config: Any,
    ) -> "JobSpec":
        """Build a spec with *config* canonically frozen and sorted."""
        if kind not in _RUNNERS:
            raise ValueError(
                f"unknown job kind {kind!r}; registered: {job_kinds()}"
            )
        return cls(
            kind=kind,
            family=family,
            far=far,
            n=n,
            seed=seed,
            graph_seed=graph_seed,
            config=_freeze(config),
        )

    @property
    def params(self) -> Dict[str, Any]:
        """The config as a plain dict."""
        return {k: v for k, v in self.config}

    @property
    def graph_label(self) -> str:
        """Human label for the generated graph."""
        if self.far:
            return f"far:{self.far}"
        return f"planar:{self.family}"

    @property
    def effective_graph_seed(self) -> int:
        """The seed that actually drives graph generation."""
        return self.seed if self.graph_seed is None else self.graph_seed

    @property
    def graph_coordinates(self) -> Tuple[str, int, int]:
        """The triple that identifies this spec's input graph.

        Shared by the cache layer's per-batch graph memo and the
        executor's cache-less graph hints, so both paths agree on which
        specs replay the same graph (and therefore share one built
        instance and one compiled simulator topology).
        """
        return (
            self.far or f"planar/{self.family}",
            self.n,
            self.effective_graph_seed,
        )

    def canonical(self) -> str:
        """A canonical JSON encoding (the basis of the config digest)."""
        payload = {
            "kind": self.kind,
            "family": self.family,
            "far": self.far,
            "n": self.n,
            "seed": self.seed,
            "config": [[k, repr(v)] for k, v in self.config],
        }
        if self.graph_seed is not None:
            # Only emitted when set, so pre-existing specs keep their
            # canonical encoding (and their cache keys) byte-identical.
            payload["graph_seed"] = self.graph_seed
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def build_graph(self) -> nx.Graph:
        """Generate the spec's input graph (deterministic in the spec)."""
        if self.far:
            graph, _farness = make_far(
                self.far, self.n, seed=self.effective_graph_seed
            )
            return graph
        return make_planar(self.family, self.n, seed=self.effective_graph_seed)

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-safe encoding for wire protocols (async workers).

        Round-trips through :meth:`from_payload`; only specs whose
        config values are JSON primitives survive the trip, which every
        registered kind's knobs are by construction.
        """
        return {
            "kind": self.kind,
            "family": self.family,
            "far": self.far,
            "n": self.n,
            "seed": self.seed,
            "graph_seed": self.graph_seed,
            "config": [[k, v] for k, v in self.config],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_payload` output.

        Config values arrive as JSON types; ``_freeze`` restores the
        canonical tuple form, so hashing and cache keys match the
        original spec exactly.
        """
        return cls.make(
            payload["kind"],
            family=payload.get("family", "delaunay"),
            far=payload.get("far"),
            n=int(payload.get("n", 500)),
            seed=int(payload.get("seed", 0)),
            graph_seed=payload.get("graph_seed"),
            **{k: v for k, v in payload.get("config", [])},
        )


def run_job(spec: JobSpec, graph: Optional[nx.Graph] = None) -> Record:
    """Execute *spec* and return its flat record.

    Module-level (and therefore picklable) so process-pool workers can
    receive specs directly.  *graph* lets callers that already built the
    input (e.g. the cache layer, which fingerprints it) avoid a second
    generation.  Graphless kinds (``register_kind(...,
    needs_graph=False)``) skip generation entirely; their runners own
    the ``n``/``m`` record fields.
    """
    try:
        runner = _RUNNERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown job kind {spec.kind!r}; registered: {job_kinds()}"
        ) from None
    if spec.kind in _GRAPHLESS:
        graph = None
        n, m = spec.n, 0
    else:
        if graph is None:
            graph = spec.build_graph()
        n, m = graph.number_of_nodes(), graph.number_of_edges()
    record: Record = {
        "kind": spec.kind,
        "graph": spec.graph_label,
        "family": spec.far or spec.family,
        "n": n,
        "m": m,
        "seed": spec.seed,
    }
    record.update(runner(spec, graph))
    return record


def run_job_timed(
    spec: JobSpec, graph: Optional[nx.Graph] = None
) -> Tuple[Record, float]:
    """Execute *spec* and return ``(record, wall_seconds)``.

    The timing wraps graph generation + the runner -- the cost a
    scheduler actually pays for dispatching the spec cold.  Every
    backend reports these seconds back so the cost-balanced sharder
    (:mod:`repro.runtime.scheduler`) can learn per-kind/per-n costs.

    This is also the telemetry chokepoint: every backend (serial run,
    chunked pool dispatch, async/remote workers) funnels executed jobs
    through here, so one ``job`` span covers them all.  When the
    tracer is on, the record is tagged with its span id and wall-time
    (``trace_span`` / ``trace_s``); when it is off, the record is
    byte-identical to the untraced build.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        start = time.perf_counter()
        record = run_job(spec, graph)
        return record, max(0.0, time.perf_counter() - start)
    with tracer.span(
        "job",
        kind=spec.kind,
        family=spec.far or spec.family,
        n=spec.n,
        seed=spec.seed,
    ) as span:
        start = time.perf_counter()
        record = run_job(spec, graph)
        seconds = max(0.0, time.perf_counter() - start)
    record["trace_span"] = span.id
    record["trace_s"] = round(seconds, 6)
    get_metrics().observe("job.seconds", seconds)
    get_metrics().inc("job.executed")
    return record, seconds


# -- builtin runners ---------------------------------------------------------


def _decay_stats(phases) -> Record:
    """Flat per-run summary of the per-phase cut-decay factors.

    Zero-cut phases are clamped to 1e-6 (the convention benchmark E7
    established for its geometric mean).
    """
    decays = [max(s.decay, 1e-6) for s in phases]
    if not decays:
        return {"decay_min": 1.0, "decay_geomean": 1.0, "decay_max": 1.0}
    from ..analysis import geometric_mean

    return {
        "decay_min": min(decays),
        "decay_geomean": geometric_mean(decays),
        "decay_max": max(decays),
    }


def _run_test_planarity(spec: JobSpec, graph: nx.Graph) -> Record:
    from ..testers.planarity import PlanarityTestConfig, test_planarity

    params = spec.params
    config = PlanarityTestConfig(
        epsilon=params.get("epsilon", 0.1),
        alpha=params.get("alpha", 3),
        sample_constant=params.get("sample_constant", 2.0),
        early_stop=params.get("early_stop", True),
        charge_full_budget=params.get("charge_full_budget", True),
        max_phases=params.get("max_phases"),
        reject_on_embedding_failure=params.get(
            "reject_on_embedding_failure", False
        ),
        collect_exact_violations=params.get("collect_exact_violations", False),
        engine=params.get("engine"),
        native=params.get("native", True),
    )
    result = test_planarity(graph, seed=spec.seed, config=config)
    return {
        "epsilon": config.epsilon,
        "accepted": result.accepted,
        "rejected_stage": result.rejected_stage or "-",
        "rejecting_parts": len(result.rejecting_parts),
        "rounds": result.rounds,
        "stage1_rounds": result.stage1_rounds,
        "stage2_rounds": result.stage2_rounds,
        "phases": len(result.stage1.phases),
        "parts": result.stage1.partition.size,
        "cut": result.stage1.partition.cut_size(),
        "max_part_height": result.stage1.partition.max_height(),
        "violating_exact": result.total_violating_exact,
    }


def _run_partition_stage1(spec: JobSpec, graph: nx.Graph) -> Record:
    from ..partition.stage1 import partition_stage1

    params = spec.params
    epsilon = params.get("epsilon", 0.1)
    target_cut = params.get("target_cut")
    if target_cut == "eps*n":
        # Resolved against the *actual* generated size (families round),
        # which a sweep cannot know at spec-construction time.
        target_cut = epsilon * graph.number_of_nodes()
    result = partition_stage1(
        graph,
        epsilon=epsilon,
        alpha=params.get("alpha", 3),
        target_cut=target_cut,
        max_phases=params.get("max_phases"),
        early_stop=params.get("early_stop", True),
        charge_full_budget=params.get("charge_full_budget", True),
        engine=params.get("engine"),
    )
    record = {
        "epsilon": epsilon,
        "success": result.success,
        "parts": result.partition.size,
        "cut": result.partition.cut_size(),
        "target_cut": result.target_cut,
        "max_height": result.partition.max_height(),
        "max_diameter": result.partition.max_diameter(),
        "phases": len(result.phases),
        "rounds": result.rounds,
    }
    record.update(_decay_stats(result.phases))
    return record


def _run_partition_randomized(spec: JobSpec, graph: nx.Graph) -> Record:
    from ..partition.weighted_selection import partition_randomized

    params = spec.params
    result = partition_randomized(
        graph,
        epsilon=params.get("epsilon", 0.1),
        delta=params.get("delta", 0.1),
        alpha=params.get("alpha", 3),
        target_cut=params.get("target_cut"),
        trials=params.get("trials"),
        max_phases=params.get("max_phases"),
        early_stop=params.get("early_stop", True),
        seed=spec.seed,
        coloring=params.get("coloring", "cole-vishkin"),
        engine=params.get("engine"),
    )
    record = {
        "epsilon": params.get("epsilon", 0.1),
        "delta": result.delta,
        "success": result.success,
        "met_target": result.met_target,
        "parts": result.partition.size,
        "cut": result.partition.cut_size(),
        "target_cut": result.target_cut,
        "max_height": result.partition.max_height(),
        "phases": len(result.phases),
        "trials": result.trials,
        "rounds": result.rounds,
    }
    record.update(_decay_stats(result.phases))
    return record


def _run_spanner(spec: JobSpec, graph: nx.Graph) -> Record:
    from ..applications.spanner import build_spanner, measure_stretch

    params = spec.params
    engine = params.get("engine")
    result = build_spanner(
        graph,
        epsilon=params.get("epsilon", 0.1),
        method=params.get("method", "deterministic"),
        delta=params.get("delta", 0.1),
        alpha=params.get("alpha", 3),
        seed=spec.seed,
        engine=engine,
    )
    stretch = measure_stretch(
        graph,
        result.dense if result.dense is not None else result.spanner,
        sample_nodes=params.get("sample_nodes", 8),
        seed=spec.seed,
        engine=engine,
    )
    n = graph.number_of_nodes()
    return {
        "epsilon": params.get("epsilon", 0.1),
        "method": params.get("method", "deterministic"),
        "spanner_edges": result.size,
        "size_per_n": result.size / max(n, 1),
        "tree_edges": result.tree_edges,
        "connector_edges": result.connector_edges,
        "measured_stretch": stretch,
        "guaranteed_stretch": result.guaranteed_stretch,
        "rounds": result.rounds,
    }


def _application_record(result, epsilon: float) -> Record:
    return {
        "epsilon": epsilon,
        "accepted": result.accepted,
        "rejecting_parts": len(result.rejecting_parts),
        "partition_rounds": result.partition_rounds,
        "verification_rounds": result.verification_rounds,
        "rounds": result.rounds,
    }


def _run_cycle_freeness(spec: JobSpec, graph: nx.Graph) -> Record:
    from ..testers.applications import test_cycle_freeness

    params = spec.params
    epsilon = params.get("epsilon", 0.1)
    result = test_cycle_freeness(
        graph,
        epsilon=epsilon,
        alpha=params.get("alpha", 3),
        method=params.get("method", "deterministic"),
        delta=params.get("delta", 0.1),
        seed=spec.seed,
        engine=params.get("engine"),
    )
    return _application_record(result, epsilon)


def _run_bipartiteness(spec: JobSpec, graph: nx.Graph) -> Record:
    from ..testers.applications import test_bipartiteness

    params = spec.params
    epsilon = params.get("epsilon", 0.1)
    result = test_bipartiteness(
        graph,
        epsilon=epsilon,
        alpha=params.get("alpha", 3),
        method=params.get("method", "deterministic"),
        delta=params.get("delta", 0.1),
        seed=spec.seed,
        engine=params.get("engine"),
    )
    return _application_record(result, epsilon)


def _run_simulate_program(spec: JobSpec, graph: nx.Graph) -> Record:
    """Run one bundled CONGEST protocol on the simulator.

    This is the runtime's door into the simulator layer: the graph the
    executor hands over (the same object for every trial of a sweep,
    thanks to the ``graphs`` hint) reaches ``CongestNetwork`` directly,
    so its :class:`~repro.congest.topology.CompiledTopology` is compiled
    exactly once per process and reused across all trials.

    Config knobs: ``program`` (``bfs`` | ``flood`` | ``forest`` |
    ``cv`` | ``storm``), ``profile`` (instrumentation profile name;
    defaults to the ``REPRO_SIM_PROFILE`` environment knob), plus
    per-program parameters (``alpha`` for forest, ``storm_rounds`` for
    storm; ``cv`` colors the canonical min-smaller-neighbor forest).

    When telemetry is on, the network's per-round profile hook
    collects ``(round, active nodes, messages, bits)`` deltas and the
    record carries them as a compact ``round_profile`` JSON string --
    the per-phase round/message accounting that doubles as a fidelity
    check on the paper's complexity claims.  Untraced records are
    unchanged.
    """
    from ..congest import CongestNetwork
    from ..congest.programs import (
        BFSTreeProgram,
        BarenboimElkinProgram,
        BroadcastStormProgram,
        FloodProgram,
    )
    from ..congest.programs.forest_decomposition import (
        barenboim_elkin_round_budget,
    )

    params = spec.params
    program = params.get("program", "bfs")
    profile = params.get("profile")
    network = CongestNetwork(graph, seed=spec.seed)
    root = min(graph.nodes())
    round_rows: list = []
    round_hook = None
    if telemetry_enabled():
        # One list append per executed round (never per message): the
        # deltas against the profile's running totals give per-round
        # message/bit counts under both faithful and fast profiles.
        def round_hook(round_index, active, prof, _rows=round_rows):
            _rows.append(
                (round_index, active, prof.total_messages, prof.total_bits)
            )
    if program == "bfs":
        result = network.run(
            BFSTreeProgram,
            max_rounds=network.n + 2,
            config={"root": root},
            strict_bandwidth=True,
            profile=profile,
            round_hook=round_hook,
        )
    elif program == "flood":
        result = network.run(
            FloodProgram,
            max_rounds=network.n + 2,
            config={"root": root},
            strict_bandwidth=True,
            profile=profile,
            round_hook=round_hook,
        )
    elif program == "forest":
        budget = barenboim_elkin_round_budget(network.n)
        result = network.run(
            BarenboimElkinProgram,
            max_rounds=budget + 3,
            config={"alpha": params.get("alpha", 3), "budget": budget},
            strict_bandwidth=True,
            profile=profile,
            round_hook=round_hook,
        )
    elif program == "cv":
        from ..congest.programs.cole_vishkin import (
            ColeVishkinProgram,
            cv_schedule,
            min_neighbor_parents,
        )

        schedule = cv_schedule(max(graph.nodes(), default=1))
        result = network.run(
            ColeVishkinProgram,
            max_rounds=len(schedule) + 3,
            config={
                "parents": min_neighbor_parents(graph),
                "schedule": schedule,
            },
            strict_bandwidth=True,
            profile=profile,
            round_hook=round_hook,
        )
    elif program == "storm":
        rounds = int(params.get("storm_rounds", 8))
        result = network.run(
            BroadcastStormProgram,
            max_rounds=rounds + 2,
            config={"storm_rounds": rounds},
            profile=profile,
            round_hook=round_hook,
        )
    else:
        raise ValueError(f"unknown simulator program {program!r}")
    record = {
        "program": program,
        "profile": result.profile,
        "rounds": result.rounds,
        "halted": result.halted,
        "messages": result.total_messages,
        "bits": result.total_bits,
        "max_message_bits": result.max_message_bits,
        "over_budget": result.over_budget_messages,
    }
    if round_rows:
        # Per-round deltas as one compact JSON string: records stay
        # flat primitive dicts, and untraced runs never pay for this.
        deltas = []
        prev_messages = prev_bits = 0
        for round_index, active, messages, bits in round_rows:
            deltas.append(
                [
                    round_index,
                    active,
                    messages - prev_messages,
                    bits - prev_bits,
                ]
            )
            prev_messages, prev_bits = messages, bits
        record["round_profile"] = json.dumps(deltas, separators=(",", ":"))
    return record


def _run_simulate_batch(spec: JobSpec, graph: Optional[nx.Graph]) -> Record:
    """Run a coalesced group of simulator trials as one array program.

    The spec carries the member trial seeds in its ``seeds`` config
    knob (everything else -- program, profile, graph coordinates --
    is shared by construction, see
    :func:`repro.runtime.batching.make_batch_spec`).  Graphs are built
    here, once per distinct ``graph_coordinates`` (a graph-seed-pinned
    sweep shares a single compiled topology across the whole batch; an
    unpinned one becomes a ragged batch of per-trial graphs), and all
    trials run in lockstep on the batched tensor plane.  Ragged
    batches are split through :func:`~repro.congest.batch.pad_groups`
    first, so no trial pads beyond the resolved waste bound
    (``REPRO_SIM_BATCH_WASTE``); a pinned batch is one group by
    construction.

    The record packs one scalar-identical ``simulate_program`` record
    per trial into a compact ``trials`` JSON string; the executor
    re-expands them so downstream consumers never see the batch shape.
    A registered graphless kind: the executor never generates a graph
    for it (*graph* is always ``None``).
    """
    from ..congest.batch import pad_groups, run_batched
    from ..congest.topology import compile_topology

    params = dict(spec.params)
    seeds = params.pop("seeds", None)
    if not seeds:
        raise ValueError("simulate_batch spec carries no member seeds")
    if params.get("profile") != "fast":
        raise ValueError(
            "simulate_batch requires the explicit 'fast' profile; got "
            f"{params.get('profile')!r}"
        )
    program = params.get("program", "bfs")
    trial_specs = [
        JobSpec.make(
            "simulate_program",
            family=spec.family,
            far=spec.far,
            n=spec.n,
            seed=int(trial_seed),
            graph_seed=spec.graph_seed,
            **params,
        )
        for trial_seed in seeds
    ]
    graphs: Dict[Tuple[str, int, int], nx.Graph] = {}
    trial_graphs = []
    for trial_spec in trial_specs:
        coordinates = trial_spec.graph_coordinates
        built = graphs.get(coordinates)
        if built is None:
            built = graphs[coordinates] = trial_spec.build_graph()
        trial_graphs.append(built)
    topologies = [compile_topology(g) for g in trial_graphs]
    results: list = [None] * len(topologies)
    for group in pad_groups(topologies, limit=len(topologies)):
        group_results = run_batched(
            program, [topologies[i] for i in group], params=params
        )
        for member, result in zip(group, group_results):
            results[member] = result
    trials = []
    for trial_spec, built, result in zip(trial_specs, trial_graphs, results):
        trials.append(
            {
                "kind": "simulate_program",
                "graph": trial_spec.graph_label,
                "family": trial_spec.far or trial_spec.family,
                "n": built.number_of_nodes(),
                "m": built.number_of_edges(),
                "seed": trial_spec.seed,
                "program": program,
                "profile": result.profile,
                "rounds": result.rounds,
                "halted": result.halted,
                "messages": result.total_messages,
                "bits": result.total_bits,
                "max_message_bits": result.max_message_bits,
                "over_budget": result.over_budget_messages,
            }
        )
    return {
        "program": program,
        "profile": "fast",
        "trials_n": len(trials),
        "trials": json.dumps(trials, separators=(",", ":")),
    }


register_kind("test_planarity", _run_test_planarity)
register_kind("partition_stage1", _run_partition_stage1)
register_kind("partition_randomized", _run_partition_randomized)
register_kind("spanner", _run_spanner)
register_kind("cycle_freeness", _run_cycle_freeness)
register_kind("bipartiteness", _run_bipartiteness)
register_kind("simulate_program", _run_simulate_program)
register_kind("simulate_batch", _run_simulate_batch, needs_graph=False)
