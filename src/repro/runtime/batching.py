"""Coalescing simulator trials into graph-batched ``simulate_batch`` jobs.

A sweep cell expands into many ``simulate_program`` specs that differ
only in ``seed``.  When batching is enabled (``run_sweep(batch=B)``,
``repro-planarity sweep --batch B``, or ``REPRO_SIM_BATCH``), the
executor routes its miss list through :func:`coalesce`, which folds
each group of same-``(graph, n, config)`` trials into one
``simulate_batch`` spec carrying the member seeds.  The batch job runs
all trials in one array program on the batched tensor plane
(:mod:`repro.congest.batch`) and returns the per-trial records; the
executor re-expands them, so callers, caches, and every backend
(serial / process / async / remote) observe exactly the records a
scalar run would have produced -- batching is transparent end to end.

Only the vectorized protocols under the ``fast`` profile on the dense
plane are eligible; anything else (faithful profile, telemetry runs,
custom programs, dict plane) passes through untouched.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .jobs import JobSpec, Record

BATCH_ENV_VAR = "REPRO_SIM_BATCH"

BATCHABLE_PROGRAMS = frozenset({"bfs", "cv", "flood", "forest", "storm"})
"""Programs with a registered batch kernel (kept in sync by tests)."""

AUTO_BATCH_DEFAULT = 32
"""``--batch auto`` without cost history: a fixed, safe middle ground."""

AUTO_TARGET_SECONDS = 0.5
"""``--batch auto`` sizes one batch job to about this much wall-time."""

AUTO_BATCH_MAX = 256
"""Upper bound on an auto-sized batch (bounds worker memory)."""


def resolve_batch(batch=None) -> int:
    """Resolve the batch limit (arg, then ``REPRO_SIM_BATCH``, then 1).

    Accepts ints, numeric strings, and ``"auto"``.  ``"auto"`` here
    resolves to :data:`AUTO_BATCH_DEFAULT` -- the cost-aware sizing
    lives in :func:`~repro.runtime.sweeps.run_sweep`, which knows the
    store holding the wall-time history and resolves ``auto`` *before*
    the limit reaches this function.
    """
    if batch is None:
        batch = os.environ.get(BATCH_ENV_VAR) or 1
    if isinstance(batch, str):
        if batch.strip().lower() == "auto":
            return AUTO_BATCH_DEFAULT
        batch = int(batch)
    return max(1, int(batch))


def auto_batch_size(cost_model, specs: Sequence[JobSpec]) -> int:
    """Size batches so one ``simulate_batch`` job is ~0.5 s of work.

    Uses the scheduler's learned per-``(kind, n)`` wall-times (see
    :class:`~repro.runtime.scheduler.CostModel`): with a measured mean
    per-trial cost ``c``, a batch of ``AUTO_TARGET_SECONDS / c`` trials
    keeps jobs long enough to amortize dispatch overhead and short
    enough to stream progress and balance shards.  Without history (or
    without any batchable spec to size against) the answer is the fixed
    :data:`AUTO_BATCH_DEFAULT`; the result is always clamped to
    ``[1, AUTO_BATCH_MAX]``.
    """
    candidates = [spec for spec in specs if batchable(spec)]
    if not candidates:
        return AUTO_BATCH_DEFAULT
    costs = []
    if cost_model is not None:
        for spec in candidates:
            predicted = cost_model.predict(spec.kind, spec.n)
            if predicted and predicted > 0:
                costs.append(predicted)
    if not costs:
        return AUTO_BATCH_DEFAULT
    mean = sum(costs) / len(costs)
    return max(1, min(AUTO_BATCH_MAX, int(AUTO_TARGET_SECONDS / mean)))


def batching_available() -> bool:
    """Whether the configured array backend can be imported."""
    from ..congest.xp import xp_available

    return xp_available()


def batchable(spec: JobSpec) -> bool:
    """Whether *spec* may join a ``simulate_batch`` group.

    Requires bit-identical batched semantics: a vectorized program,
    the explicit ``fast`` profile (the CLI always pins one), the dense
    plane, and no telemetry (batch kernels have no per-round hook).
    """
    if spec.kind != "simulate_program":
        return False
    params = spec.params
    if params.get("program", "bfs") not in BATCHABLE_PROGRAMS:
        return False
    if params.get("profile") != "fast":
        return False
    from ..congest.plane import PLANE_ENV_VAR

    if (os.environ.get(PLANE_ENV_VAR) or "dense") != "dense":
        return False
    from ..telemetry.spans import telemetry_enabled

    return not telemetry_enabled()


def _group_key(spec: JobSpec):
    # Everything except the trial seed: members of one batch share the
    # graph coordinates (or, with graph_seed unset, at least the
    # family/n shape) and the full frozen config.
    return (spec.family, spec.far, spec.n, spec.graph_seed, spec.config)


def make_batch_spec(members: Sequence[JobSpec]) -> JobSpec:
    """Fold same-group ``simulate_program`` specs into one batch spec.

    The batch spec inherits the group's coordinates and config and
    carries the member seeds in order; its own ``seed`` is the first
    member's, so graph-seed-pinned groups keep their coordinates
    stable.
    """
    first = members[0]
    return JobSpec.make(
        "simulate_batch",
        family=first.family,
        far=first.far,
        n=first.n,
        seed=first.seed,
        graph_seed=first.graph_seed,
        seeds=tuple(m.seed for m in members),
        **first.params,
    )


def coalesce(
    specs: Sequence[JobSpec],
    batch: Optional[int] = None,
) -> Tuple[List[JobSpec], List[List[int]]]:
    """Group *specs* into dispatchable jobs of at most *batch* trials.

    Returns ``(dispatch, sources)``: ``dispatch[i]`` is either an
    original spec (non-batchable, or a group of one) or a
    ``simulate_batch`` spec, and ``sources[i]`` lists the indices into
    *specs* it covers, in member order.  Every input index appears in
    exactly one source list; dispatch order follows each job's first
    member, so a batch-of-one sweep is dispatched untouched.
    """
    specs = list(specs)
    limit = resolve_batch(batch)
    if limit <= 1 or not batching_available():
        return specs, [[i] for i in range(len(specs))]
    groups: Dict[object, List[int]] = {}
    singles: List[int] = []
    for i, spec in enumerate(specs):
        if batchable(spec):
            groups.setdefault(_group_key(spec), []).append(i)
        else:
            singles.append(i)
    entries: List[Tuple[int, JobSpec, List[int]]] = [
        (i, specs[i], [i]) for i in singles
    ]
    for indices in groups.values():
        for start in range(0, len(indices), limit):
            chunk = indices[start : start + limit]
            if len(chunk) == 1:
                entries.append((chunk[0], specs[chunk[0]], chunk))
            else:
                entries.append(
                    (chunk[0], make_batch_spec([specs[i] for i in chunk]), chunk)
                )
    entries.sort(key=lambda entry: entry[0])
    return [e[1] for e in entries], [e[2] for e in entries]


def expand_batch_record(record: Record) -> List[Record]:
    """Unpack a ``simulate_batch`` record into its per-trial records."""
    return json.loads(record["trials"])
