"""Worker process: the binary-frame job protocol over stdio or TCP.

``python -m repro.runtime.worker`` turns a process into a job server.
Two transports share one request handler:

* **stdio** (the async backend): length-prefixed binary frames (see
  :mod:`repro.runtime.codec`) over stdin/stdout, one worker per
  subprocess, spawned and owned by the orchestrator
  (:mod:`repro.runtime.async_backend`);
* **TCP** (``--connect host:port``, also ``repro-planarity worker``):
  the worker dials a :class:`~repro.runtime.remote.RemoteBackend`
  sweep server, handshakes (protocol version, job-kind registry,
  store dir), then serves jobs until the server says ``exit`` or the
  connection drops.  Connection attempts retry for ``--retry-seconds``
  so workers can be started before the sweep server is listening.

Specs arrive and records leave as **shape-packed codec payloads**
(``spec_pkd`` / ``record_pkd``), the same byte format the sharded
store persists -- so a worker with a store appends its freshly
encoded record *once* and ships the identical bytes over the wire,
and a store hit is forwarded without ever being decoded
(:meth:`~repro.runtime.store.ShardedStore.get_raw`).  Shape
definitions travel at most once per connection, tracked by a
per-connection sent-set on both ends.

When a worker has a sharded store (``--store DIR``, or the directory
adopted from the server's ``welcome`` frame), it consults the shared
:class:`~repro.runtime.store.ShardedStore` *before* executing a job
whose request carries a ``key``, and appends fresh records back --
that is the cross-process cache sharing: concurrent sweeps and fleet
workers with overlapping grids serve each other's results through one
fcntl-locked on-disk index instead of each missing cold.

Everything a record needs to be reproducible travels in the spec
(``seed`` drives all randomness), so a worker is stateless: killing
and respawning one mid-batch loses nothing but the in-flight job
(which the remote server requeues).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
import traceback
from pathlib import Path
from typing import Optional

from .codec import (
    GLOBAL_SHAPES,
    decode_record,
    encode_record,
    encode_wire_frame,
    frame_shapes,
    read_wire_frame,
)
from .jobs import JobSpec, job_kinds, run_job_timed
from .store import ShardedStore


def _store_payload(store: ShardedStore, key: str) -> Optional[bytes]:
    """The stored payload bytes for *key*, or ``None`` on a miss.

    Binary-sourced entries come back verbatim (zero decode); a key
    living in a legacy ``.jsonl`` shard is decoded and re-encoded once
    so it can still ship as packed bytes.
    """
    payload = store.get_raw(key)
    if payload is not None:
        return bytes(payload)
    record = store.get(key)  # legacy .jsonl source, or a plain miss
    if record is None:
        return None
    encoded, _shape = encode_record(record)
    return encoded


def _flush_telemetry() -> None:
    """Snapshot this worker's metrics next to its trace file, if any."""
    from ..telemetry import get_metrics, get_tracer

    tracer = get_tracer()
    if tracer.enabled and tracer.trace_dir is not None:
        get_metrics().flush_to(tracer.trace_dir)


def handle_request(message: dict, store: Optional[ShardedStore]) -> dict:
    """Execute one job request; returns the response fields (sans id).

    The caller has already registered any shape blocks the request
    carried.  Probes *store* first when the request carries a cache
    ``key``; fresh records are appended back (``stored`` reports
    whether that happened, so a server can persist on behalf of
    storeless workers).  The response's ``record_pkd`` holds the
    shape-packed record bytes -- for a store hit they come straight
    from the shard file (zero decode), for a fresh record they are
    encoded exactly once and shared between the local append and the
    wire.
    """
    key = message.get("key")
    # A request flagged ``nostore`` must never append: the service uses
    # it for speculative duplicate dispatches, where it persists the
    # winning copy's bytes itself -- exactly once -- so the store stays
    # one line per job no matter how many twins raced.  Probing for an
    # existing row is still fine (a hit *is* the one row).
    nostore = bool(message.get("nostore"))
    try:
        payload: Optional[bytes] = None
        hit = False
        seconds: Optional[float] = None
        stored = False
        if store is not None and key:
            payload = _store_payload(store, key)
            hit = payload is not None
            stored = hit
        if payload is None:
            spec = JobSpec.from_payload(decode_record(message["spec_pkd"]))
            record, seconds = run_job_timed(spec)
            payload, _shape = encode_record(record)
            if store is not None and key and not nostore:
                store.put_raw(key, payload)
                stored = True
        return {
            "record_pkd": payload,
            "hit": hit,
            "seconds": seconds,
            "stored": stored,
        }
    except Exception as exc:  # report, don't die: the batch goes on
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def _result_frame(message: dict, store: Optional[ShardedStore],
                  sent_shapes: set) -> bytes:
    """One encoded result frame for one job request."""
    for block in message.get("shapes") or ():
        GLOBAL_SHAPES.register_block(block)
    response = {"op": "result", "id": message.get("id")}
    response.update(handle_request(message, store))
    payload = response.get("record_pkd")
    if isinstance(payload, (bytes, bytearray)):
        response["shapes"] = frame_shapes(
            iter((bytes(payload),)), sent_shapes
        )
    return encode_wire_frame(response)


def serve(stdin=None, stdout=None, store_dir: Optional[str] = None) -> int:
    """Serve job frames over binary stdio until EOF or ``exit``."""
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    store = ShardedStore(store_dir) if store_dir else None
    sent_shapes: set = set()
    while True:
        message = read_wire_frame(stdin)
        if message is None or message.get("op") == "exit":
            break
        stdout.write(_result_frame(message, store, sent_shapes))
        stdout.flush()
    _flush_telemetry()
    return 0


RETRY_DELAY_START = 0.1
RETRY_DELAY_CAP = 5.0


def retry_delays():
    """Capped exponential backoff with jitter for server dials.

    Yields sleep durations ``0.1, 0.2, 0.4, ... -> 5.0``, each scaled
    by a uniform jitter in ``[0.5, 1.0)`` so a fleet of workers started
    together does not hammer a recovering service in lockstep.
    """
    import random

    delay = RETRY_DELAY_START
    while True:
        yield delay * (0.5 + 0.5 * random.random())
        delay = min(delay * 2.0, RETRY_DELAY_CAP)


def _connect_with_retry(
    host: str, port: int, retry_seconds: float
) -> socket.socket:
    """Dial the sweep server, retrying while it is not yet listening.

    *retry_seconds* bounds the total time spent retrying
    (``float("inf")`` retries forever -- the ``--reconnect`` fleet
    mode); the last ``OSError`` propagates when the bound is hit.
    """
    deadline = time.monotonic() + retry_seconds
    delays = retry_delays()
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            # Blocking mode from here on: a worker legitimately sits
            # idle for arbitrary stretches (another worker holds the
            # last long job), and the server's heartbeat keeps the
            # connection observable -- a read timeout would kill idle
            # workers instead.
            sock.settimeout(None)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(min(next(delays), max(deadline - time.monotonic(), 0)))


def _adopt_store(store_dir: Optional[str]) -> Optional[ShardedStore]:
    """Open a store the server advertised, if this host can reach *it*.

    Adoption requires the server's already-initialized store
    (``store.json`` written at bind time) to be visible at the path --
    a bare ``mkdir`` succeeding proves nothing on a host without the
    shared filesystem and would silently fork a fresh local store.
    Workers that cannot see the server's store run storeless; the
    server persists their records itself (``stored: false``).
    """
    if not store_dir:
        return None
    try:
        if not (Path(store_dir) / "store.json").is_file():
            return None  # not the server's store: run storeless
        return ShardedStore(store_dir)
    except OSError:
        return None  # different filesystem: run storeless


def _serve_connection(sock: socket.socket, store_dir: Optional[str]) -> str:
    """One server connection's lifetime; the socket is consumed.

    Returns ``"exit"`` (clean ``exit`` frame), ``"eof"`` (the server
    vanished: EOF, reset, torn frame), or ``"rejected"`` (handshake
    refused -- retrying would refuse again).
    """
    from .remote import PROTOCOL_VERSION

    store = ShardedStore(store_dir) if store_dir else None
    try:
        reader = sock.makefile("rb")
        hello = {
            "op": "hello",
            "protocol": PROTOCOL_VERSION,
            "kinds": list(job_kinds()),
            "store": store_dir,
            "pid": os.getpid(),
        }
        sock.sendall(encode_wire_frame(hello))
        welcome = read_wire_frame(reader)
        if welcome is None:
            print("worker: server closed during handshake", file=sys.stderr)
            return "eof"
        if welcome.get("op") != "welcome":
            print(
                f"worker: rejected: {welcome.get('reason', welcome)}",
                file=sys.stderr,
            )
            return "rejected"
        if store is None:
            store = _adopt_store(welcome.get("store"))
        if welcome.get("trace"):
            # The server is tracing: adopt its sink directory and
            # parent span (same-host check inside), so this worker's
            # job spans land in the merged trace under the sweep span.
            from ..telemetry import adopt_trace

            adopt_trace(welcome["trace"])
        sent_shapes: set = set()
        while True:
            frame = read_wire_frame(reader)
            if frame is None:
                return "eof"
            op = frame.get("op")
            if op == "exit":
                return "exit"
            if op == "ping":
                sock.sendall(encode_wire_frame({"op": "pong"}))
                continue
            if op != "job":
                continue
            sock.sendall(_result_frame(frame, store, sent_shapes))
    except (OSError, ValueError):  # reset / torn frame: same as EOF
        return "eof"
    finally:
        _flush_telemetry()
        try:
            sock.close()
        except OSError:
            pass


def serve_remote(
    host: str,
    port: int,
    store_dir: Optional[str] = None,
    retry_seconds: float = 30.0,
    reconnect: bool = False,
) -> int:
    """Join a remote sweep server and serve jobs until it says exit.

    With ``reconnect=False`` (the per-batch default) the worker serves
    one connection: 0 on a clean end (``exit`` frame or server EOF),
    1 when the server rejected the handshake.  With ``reconnect=True``
    (the fleet mode behind ``worker --reconnect``) the worker outlives
    the server: a dropped connection -- service restarting, network
    blip -- sends it back to the capped-backoff dial loop
    (:func:`retry_delays`, retrying indefinitely), and only an explicit
    ``exit`` frame or a handshake rejection ends it.
    """
    while True:
        sock = _connect_with_retry(
            host, port, float("inf") if reconnect else retry_seconds
        )
        outcome = _serve_connection(sock, store_dir)
        if outcome == "rejected":
            return 1
        if outcome == "exit" or not reconnect:
            return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.runtime.worker",
        description=(
            "job worker: binary frames over stdio (async backend) or "
            "TCP (remote backend)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        help="shared sharded-store directory for cross-process cache hits",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="join a remote sweep server instead of serving stdio",
    )
    parser.add_argument(
        "--retry-seconds",
        type=float,
        default=30.0,
        help="how long to retry the initial --connect dial (default 30)",
    )
    parser.add_argument(
        "--reconnect",
        action="store_true",
        help=(
            "fleet mode: redial (capped backoff + jitter, forever) when "
            "the server drops the connection; only an exit frame or a "
            "handshake rejection ends the worker"
        ),
    )
    args = parser.parse_args(argv)
    if args.connect:
        from .remote import parse_endpoint

        host, port = parse_endpoint(args.connect)
        return serve_remote(
            host, port, store_dir=args.store,
            retry_seconds=args.retry_seconds,
            reconnect=args.reconnect,
        )
    return serve(store_dir=args.store)


if __name__ == "__main__":
    sys.exit(main())
