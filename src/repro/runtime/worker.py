"""Subprocess worker protocol for the async backend.

``python -m repro.runtime.worker`` turns a process into a job server
speaking newline-delimited JSON over stdin/stdout:

* request:  ``{"id": <int>, "spec": <JobSpec.to_payload()>,
  "key": <cache key or null>}``
* response: ``{"id": <int>, "record": {...}, "hit": <bool>}`` on
  success, ``{"id": <int>, "error": "<repr>"}`` on failure.

When launched with ``--store DIR``, the worker consults the shared
:class:`~repro.runtime.store.ShardedStore` *before* executing a job
whose request carries a ``key``, and appends fresh records back --
that is the cross-process cache sharing: two concurrent sweeps (or two
shard runs) with overlapping grids serve each other's results through
one fcntl-locked on-disk index instead of each missing cold.

Everything a record needs to be reproducible travels in the spec
(``seed`` drives all randomness), so a worker is stateless: killing and
respawning one mid-batch loses nothing but the in-flight job.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from typing import Optional

from .jobs import JobSpec, run_job
from .store import ShardedStore


def serve(stdin=None, stdout=None, store_dir: Optional[str] = None) -> int:
    """Serve job requests until EOF or an explicit ``{"op": "exit"}``."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    store = ShardedStore(store_dir) if store_dir else None
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except ValueError:
            continue
        if message.get("op") == "exit":
            break
        job_id = message.get("id")
        key = message.get("key")
        try:
            record = None
            hit = False
            if store is not None and key:
                record = store.get(key)
                hit = record is not None
            if record is None:
                spec = JobSpec.from_payload(message["spec"])
                record = run_job(spec)
                if store is not None and key:
                    store.put(key, record)
            response = {"id": job_id, "record": record, "hit": hit}
        except Exception as exc:  # report, don't die: the batch goes on
            response = {
                "id": job_id,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        stdout.write(json.dumps(response, separators=(",", ":")) + "\n")
        stdout.flush()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.runtime.worker",
        description="async-backend job worker (JSON lines over stdio)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="shared sharded-store directory for cross-process cache hits",
    )
    args = parser.parse_args(argv)
    return serve(store_dir=args.store)


if __name__ == "__main__":
    sys.exit(main())
