"""Remote socket backend: the worker protocol lifted onto TCP.

The async backend's JSON-lines worker protocol is transport-agnostic;
this module serves it over sockets so workers can live in other
processes, containers, or machines.  The orchestrator side is
:class:`RemoteBackend` -- an asyncio TCP server that plugs into
``run_jobs``/``iter_jobs`` exactly like the serial/process/async
backends -- and the worker side is ``repro-planarity worker --connect
host:port`` (see :func:`repro.runtime.worker.serve_remote`).

Wire protocol v2: **length-prefixed binary frames** (see
:mod:`repro.runtime.codec` -- 2-byte magic + u32 body length + one
codec-encoded message dict).  Specs and records travel as
*shape-packed codec payloads* (``spec_pkd`` / ``record_pkd`` bytes
fields), with each frame carrying the shape-definition blocks its
payloads need that this connection has not seen yet (``shapes``) --
so a worker's result bytes are appended to the store verbatim
(:meth:`~repro.runtime.store.ShardedStore.put_raw`, zero server-side
re-encode) and a store hit ships without a decode.

=============  =========================================================
frame          fields
=============  =========================================================
``hello``      worker -> server: ``protocol`` (version int), ``kinds``
               (worker's registered job kinds), ``store`` (worker's
               store dir or ``None``), ``pid``
``welcome``    server -> worker: ``protocol``, ``store`` (the
               orchestrator's store dir, for same-host adoption),
               optional ``trace`` (``{"dir", "parent"}`` -- the trace
               sink same-host workers adopt; see
               :func:`repro.telemetry.adopt_trace`)
``reject``     server -> worker on a failed handshake: ``reason``;
               the connection closes immediately after
``job``        server -> worker: ``id``, ``spec_pkd`` (shape-packed
               :meth:`JobSpec.to_payload`), ``key`` (cache key or
               ``None``), ``shapes``
``result``     worker -> server: ``id``, ``record_pkd`` (shape-packed
               record bytes), ``shapes``, ``hit`` (served from the
               worker's store), ``seconds`` (worker-side wall-time,
               ``None`` on hits), ``stored`` (whether the worker
               persisted the record itself) -- or ``error`` +
               ``traceback`` on failure
``ping``       server -> worker heartbeat; worker answers ``pong``
``exit``       server -> worker: batch done, disconnect
=============  =========================================================

Version negotiation: a legacy JSON-lines worker (protocol 1) opens
with ``{"op": "hello", ...}\\n``; the server detects the ``{`` where a
frame magic should be, answers with a newline-delimited JSON
``reject`` (the only dialect that worker can read) whose reason names
the protocol mismatch, and closes.  A v2 hello with the wrong
``protocol`` number is rejected symmetrically in a binary frame.

Fault model: a worker that dies mid-job (socket EOF/reset) has its
in-flight job **requeued** for the next worker, so killing a worker
never loses work -- and the partial elapsed time is observed into the
batch's :class:`~repro.runtime.scheduler.CostBook` (when one is
attached via ``accepts_cost_book``), so requeues still feed the cost
model; a worker whose *job* raises reports an ``error``
frame, which aborts the batch with :class:`RemoteWorkerError` (the
failure is deterministic -- retrying it elsewhere would fail again).
With telemetry enabled (:mod:`repro.telemetry`) the server also emits
``remote.connect`` / ``remote.disconnect`` / ``remote.requeue`` /
``remote.heartbeat`` / ``remote.abort`` events, per-worker utilization
gauges, and advertises its trace sink in the ``welcome`` frame so
same-host workers join the merged trace.
Handshakes reject protocol-version mismatches, workers missing job
kinds the batch needs, and workers pointed at a *different* store
(split-brain caches).  Records stream back in completion order; specs
carry all randomness, so remote records are byte-identical to serial.
"""

from __future__ import annotations

import asyncio
import json
import queue
import socket
import struct
import threading
import time
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import get_tracer
from .codec import (
    FRAME_HEADER_SIZE,
    GLOBAL_SHAPES,
    TruncatedEntry,
    WireProtocolError,
    decode_record,
    decode_wire_body,
    encode_record,
    encode_wire_frame,
    frame_shapes,
    parse_frame_header,
)
from .jobs import JobSpec, Record
from .store import ShardedStore

PROTOCOL_VERSION = 2

_SENTINEL = object()


class RemoteWorkerError(RuntimeError):
    """A remote worker reported a deterministic job failure."""


class RemoteProtocolError(RuntimeError):
    """A peer spoke the wire protocol wrong (bad frame, bad handshake)."""


def encode_frame(payload: dict) -> bytes:
    """One *legacy* (protocol 1) wire frame: compact JSON + newline.

    Kept for handshake negotiation: it is the only dialect a legacy
    worker can read, so protocol-mismatch rejects to such workers are
    sent this way.  All v2 traffic uses
    :func:`~repro.runtime.codec.encode_wire_frame`.
    """
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> dict:
    """Parse one legacy JSON frame; :class:`RemoteProtocolError` on junk."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise RemoteProtocolError(f"undecodable frame: {line[:200]!r}") from exc
    if not isinstance(payload, dict):
        raise RemoteProtocolError(f"frame is not an object: {payload!r}")
    return payload


async def read_bframe(reader) -> Optional[dict]:
    """Read one binary frame from an asyncio stream reader.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`WireProtocolError` on a torn or malformed frame.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError("connection closed mid-frame") from exc
    body_len = parse_frame_header(header)
    try:
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError("connection closed mid-frame") from exc
    return decode_wire_body(body)


def parse_endpoint(raw: str) -> Tuple[str, int]:
    """Parse ``host:port`` (CLI ``--listen`` / ``--connect``)."""
    host, sep, port_text = raw.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {raw!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"expected host:port, got {raw!r}") from None
    return host, port


class _Connection:
    """Server-side state for one connected worker."""

    __slots__ = (
        "reader", "writer", "name", "kinds", "read_task", "sent_shapes",
        "connected_at", "jobs_done", "busy_s", "ping_sent",
    )

    def __init__(self, reader, writer, name: str, kinds: Sequence[str] = ()):
        self.reader = reader
        self.writer = writer
        self.name = name
        # Job kinds the worker registered at handshake; the service
        # uses them to filter dispatch (the batch backend rejects
        # under-equipped workers outright instead).
        self.kinds = frozenset(kinds)
        # The persistent frame-read task: lets the dispatch loop wait
        # on "next frame OR next job" without two readers racing.
        self.read_task: Optional[asyncio.Task] = None
        # Shape-definition ids already sent down this connection (job
        # spec payloads reference them; each def travels at most once).
        self.sent_shapes: set = set()
        # Telemetry bookkeeping: per-worker utilization gauges and
        # heartbeat round-trip measurement.
        self.connected_at = time.monotonic()
        self.jobs_done = 0
        self.busy_s = 0.0
        self.ping_sent: Optional[float] = None

    def utilization(self) -> float:
        """Fraction of this worker's connected time spent on jobs."""
        alive = max(time.monotonic() - self.connected_at, 1e-9)
        return min(self.busy_s / alive, 1.0)

    def next_frame_task(self) -> asyncio.Task:
        if self.read_task is None or self.read_task.done():
            self.read_task = asyncio.ensure_future(read_bframe(self.reader))
        return self.read_task


class RemoteBackend:
    """Fans jobs over workers connected via TCP (``--backend remote``).

    Args:
        host / port: listen endpoint; port ``0`` binds an ephemeral
            port (read it from :attr:`bound_port` after :meth:`bind`).
        store_dir: the shared sharded-store directory.  Workers are
            told it at handshake (same-host workers adopt it and probe
            /append directly); results a worker could *not* persist are
            appended server-side, so the store always converges to one
            line per executed job.
        heartbeat: idle-connection ping interval in seconds.

    The server accepts workers for the lifetime of one ``run_stream``
    call: workers may join late, leave, or die mid-job (the job is
    requeued).  The batch finishes when every record has landed, then
    connected workers receive ``exit``.
    """

    name = "remote"
    wants_graph_hints = False
    wants_keys = True
    # run_jobs/iter_jobs attach their CostBook here for the duration of
    # a batch: the backend observes *partial* elapsed time for jobs
    # whose worker died mid-flight (the stream only reports completed
    # jobs, so requeue costs would otherwise be dropped on the floor).
    accepts_cost_book = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_dir: Optional[str] = None,
        heartbeat: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.store_dir = str(store_dir) if store_dir else None
        self.heartbeat = heartbeat
        self.bound_port: Optional[int] = None
        self.ready = threading.Event()
        self.cost_book = None
        self._socket: Optional[socket.socket] = None
        self._store: Optional[ShardedStore] = None
        self._abort_loop = None
        self._abort_event = None
        self._connections: Set[_Connection] = set()

    @property
    def active_workers(self) -> int:
        """Live worker connections (the ``--progress`` dashboard reads
        this from the consumer thread; a plain ``len`` is safe)."""
        return len(self._connections)

    # -- public API -----------------------------------------------------------

    def bind(self) -> int:
        """Bind the listen socket now; returns the bound port.

        Called implicitly by :meth:`run_stream`; call it explicitly to
        learn an ephemeral port before starting workers (the CLI also
        uses it to print the endpoint before dispatch blocks).
        """
        if self._socket is None:
            sock = socket.create_server(
                (self.host, self.port), reuse_port=False
            )
            sock.setblocking(False)
            self._socket = sock
            self.bound_port = sock.getsockname()[1]
            self.ready.set()
        return self.bound_port

    def run(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
        keys: Optional[Sequence[str]] = None,
    ) -> List[Record]:
        """Execute *specs*, returning records in input order."""
        records: List[Optional[Record]] = [None] * len(specs)
        for index, record, _seconds in self.run_stream(
            specs, graphs=graphs, keys=keys
        ):
            records[index] = record
        return [r for r in records if r is not None]

    def run_stream(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
        keys: Optional[Sequence[str]] = None,
    ) -> Iterator[Tuple[int, Record, Optional[float]]]:
        """Yield ``(index, record, seconds)`` in completion order.

        Blocks until every job has a record; jobs wait in the queue
        while no worker is connected, so starting workers late (or
        replacing dead ones) is fine.
        """
        specs = list(specs)
        if not specs:
            return
        self.bind()
        out: "queue.Queue" = queue.Queue()

        def pump():
            try:
                asyncio.run(self._serve(specs, keys, out))
            except BaseException as exc:  # surfaced by the consumer
                out.put(exc)
            finally:
                out.put(_SENTINEL)

        thread = threading.Thread(
            target=pump, name="repro-remote-backend", daemon=True
        )
        thread.start()
        try:
            while True:
                item = out.get()
                if item is _SENTINEL:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            # A consumer abandoning the generator mid-batch
            # (KeyboardInterrupt, an exception downstream) must not
            # hang on a pump thread that is still awaiting results:
            # wake the server loop so it shuts down cleanly.
            self._request_abort()
            thread.join()

    def _request_abort(self) -> None:
        """Ask a live serve loop to finish now (thread-safe, idempotent)."""
        loop, event = self._abort_loop, self._abort_event
        if loop is None or event is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # loop already shut down between the check and the call

    # -- event loop internals -------------------------------------------------

    async def _serve(
        self,
        specs: List[JobSpec],
        keys: Optional[Sequence[str]],
        out: "queue.Queue",
    ) -> None:
        pending: "asyncio.Queue" = asyncio.Queue()
        for index, spec in enumerate(specs):
            key = keys[index] if keys is not None else None
            pending.put_nowait((index, spec, key))
        state = {
            "remaining": len(specs),
            "failed": None,  # first RemoteWorkerError, aborts the batch
        }
        finished = asyncio.Event()
        kinds_needed = sorted({spec.kind for spec in specs})
        connections = self._connections
        connections.clear()
        if self.store_dir and self._store is None:
            self._store = ShardedStore(self.store_dir)
        if self._store is not None:
            # Materialize store.json now: worker-side store adoption
            # checks for it, so it must exist before the first worker
            # handshakes (not merely after the first append).
            self._store._ensure_root()
        self._abort_loop = asyncio.get_running_loop()
        self._abort_event = finished

        async def handle(reader, writer):
            # Swallow cancellation: server teardown cancels handlers
            # whose workers are idle; that is a clean exit, not an
            # error worth the event loop's exception logger.
            try:
                conn = await self._handshake(reader, writer, kinds_needed)
                if conn is None:
                    return
                connections.add(conn)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "remote.connect",
                        worker=conn.name,
                        workers=len(connections),
                    )
                    get_metrics().gauge("remote.workers", len(connections))
                try:
                    await self._dispatch_loop(
                        conn, pending, out, state, finished
                    )
                finally:
                    connections.discard(conn)
                    if tracer.enabled:
                        tracer.event(
                            "remote.disconnect",
                            worker=conn.name,
                            jobs_done=conn.jobs_done,
                            busy_s=round(conn.busy_s, 6),
                            workers=len(connections),
                        )
                        get_metrics().gauge(
                            "remote.workers", len(connections)
                        )
                    conn.writer.close()
            except asyncio.CancelledError:
                pass

        server = await asyncio.start_server(handle, sock=self._socket)
        try:
            await finished.wait()
        finally:
            server.close()
            for conn in list(connections):
                try:
                    conn.writer.write(encode_wire_frame({"op": "exit"}))
                    await conn.writer.drain()
                except (OSError, ConnectionError):
                    pass
            await server.wait_closed()
            self._socket = None
            self.bound_port = None
            self.ready.clear()
            self._abort_loop = None
            self._abort_event = None
        if state["failed"] is not None:
            raise state["failed"]

    async def _handshake(
        self, reader, writer, kinds_needed: List[str]
    ) -> Optional[_Connection]:
        """Validate a connecting worker; ``None`` means rejected."""
        return await welcome_worker(
            reader,
            writer,
            kinds_needed=kinds_needed,
            store_dir=self.store_dir,
            timeout=max(self.heartbeat, 10.0),
        )

    async def _dispatch_loop(
        self,
        conn: _Connection,
        pending: "asyncio.Queue",
        out: "queue.Queue",
        state: dict,
        finished: asyncio.Event,
    ) -> None:
        """Feed one worker jobs until the batch completes or it dies."""
        loop = asyncio.get_event_loop()
        last_ping = loop.time()
        while not finished.is_set():
            getter = asyncio.ensure_future(pending.get())
            frame_task = conn.next_frame_task()
            finish_task = asyncio.ensure_future(finished.wait())
            done, _ = await asyncio.wait(
                {getter, frame_task, finish_task},
                timeout=self.heartbeat,
                return_when=asyncio.FIRST_COMPLETED,
            )
            finish_task.cancel()
            if finished.is_set():
                await _requeue_cancelled(getter, pending)
                try:
                    conn.writer.write(encode_wire_frame({"op": "exit"}))
                    await conn.writer.drain()
                except (OSError, ConnectionError):
                    pass
                return
            if frame_task in done:
                # Unsolicited frame while idle: pong (fine) or EOF
                # (worker died between jobs).
                await _requeue_cancelled(getter, pending)
                try:
                    frame = frame_task.result()
                except (WireProtocolError, OSError):
                    return  # torn frame or reset: drop the worker
                if frame is None:
                    return  # EOF: nothing in flight, nothing to requeue
                if frame.get("op") not in ("pong",):
                    # Unexpected chatter; drop the worker.
                    return
                self._note_pong(conn)
                continue
            if getter not in done:
                # Idle heartbeat window elapsed: ping the worker (a
                # dead one fails the write or EOFs the read task).
                await _requeue_cancelled(getter, pending)
                if loop.time() - last_ping >= self.heartbeat:
                    try:
                        conn.writer.write(encode_wire_frame({"op": "ping"}))
                        await conn.writer.drain()
                        last_ping = loop.time()
                        conn.ping_sent = time.monotonic()
                    except (OSError, ConnectionError):
                        return
                continue
            item = getter.result()
            ok = await self._run_one(conn, item, pending, out, state)
            last_ping = loop.time()
            if state["remaining"] == 0 or state["failed"] is not None:
                finished.set()
            if not ok:
                return

    async def _run_one(
        self,
        conn: _Connection,
        item: Tuple[int, JobSpec, Optional[str]],
        pending: "asyncio.Queue",
        out: "queue.Queue",
        state: dict,
    ) -> bool:
        """Send one job; collect its result.  ``False`` = drop worker."""
        index, spec, key = item
        spec_pkd, _shape = encode_record(spec.to_payload())
        request = {
            "op": "job",
            "id": index,
            "spec_pkd": spec_pkd,
            "key": key,
            "shapes": frame_shapes(iter((spec_pkd,)), conn.sent_shapes),
        }
        try:
            conn.writer.write(encode_wire_frame(request))
            await conn.writer.drain()
        except (OSError, ConnectionError):
            pending.put_nowait(item)  # never dispatched: requeue
            return False
        dispatched = time.perf_counter()
        while True:
            try:
                frame = await conn.next_frame_task()
            except (WireProtocolError, OSError):
                frame = None  # torn frame: same as a dead worker
            conn.read_task = None
            if frame is None:
                # Worker died mid-job: requeue for the next worker.
                self._requeue_inflight(conn, item, pending, dispatched)
                return False
            op = frame.get("op")
            if op == "pong":
                self._note_pong(conn)
                continue
            if op != "result" or frame.get("id") != index:
                self._requeue_inflight(conn, item, pending, dispatched)
                return False
            break
        if "error" in frame:
            detail = frame.get("traceback") or frame["error"]
            state["failed"] = RemoteWorkerError(
                f"job #{index} ({spec.kind}) failed on {conn.name}: {detail}"
            )
            get_tracer().event(
                "remote.abort", worker=conn.name, index=index, kind=spec.kind
            )
            return False
        record_pkd = frame.get("record_pkd")
        if not isinstance(record_pkd, (bytes, bytearray)):
            self._requeue_inflight(conn, item, pending, dispatched)
            return False
        try:
            for block in frame.get("shapes") or ():
                GLOBAL_SHAPES.register_block(block)
            if (
                key
                and self._store is not None
                and not frame.get("stored", False)
            ):
                # Storeless workers (no shared filesystem) cannot
                # persist; the orchestrator appends the worker's result
                # *bytes* on their behalf -- no decode/re-encode -- so
                # resume runs still find every record on disk.
                self._store.put_raw(key, bytes(record_pkd))
            # One decode per record, for the consumer stream; the
            # store append above never parses it.
            record = decode_record(bytes(record_pkd))
        except (KeyError, ValueError, TruncatedEntry, struct.error):
            # Undecodable payload (missing shape def, corrupt bytes):
            # treat like any other protocol violation -- requeue the
            # job and drop the worker.
            self._requeue_inflight(conn, item, pending, dispatched)
            return False
        state["remaining"] -= 1
        seconds = frame.get("seconds")
        conn.jobs_done += 1
        if isinstance(seconds, (int, float)):
            conn.busy_s += max(seconds, 0.0)
        tracer = get_tracer()
        if tracer.enabled:
            metrics = get_metrics()
            metrics.gauge("remote.queue_depth", pending.qsize())
            metrics.gauge(f"remote.worker.{conn.name}.jobs_done", conn.jobs_done)
            metrics.gauge(
                f"remote.worker.{conn.name}.busy_s", round(conn.busy_s, 6)
            )
            metrics.gauge(
                f"remote.worker.{conn.name}.utilization",
                round(conn.utilization(), 4),
            )
        out.put((index, record, seconds))
        return True

    def _requeue_inflight(
        self,
        conn: _Connection,
        item: Tuple[int, JobSpec, Optional[str]],
        pending: "asyncio.Queue",
        dispatched: float,
    ) -> None:
        """Requeue a dispatched job whose worker died or spoke junk.

        The partial elapsed time is *observed into the cost book*: a
        worker that died ``elapsed`` seconds into a job still bounds
        that job's cost from below, and silently dropping the sample
        starved the CostModel of exactly the slow-job evidence that
        matters most for shard balancing.
        """
        index, spec, key = item
        pending.put_nowait(item)
        elapsed = max(0.0, time.perf_counter() - dispatched)
        if self.cost_book is not None:
            self.cost_book.observe(spec.kind, spec.n, elapsed)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "remote.requeue",
                worker=conn.name,
                index=index,
                kind=spec.kind,
                n=spec.n,
                elapsed_s=round(elapsed, 6),
            )
            get_metrics().inc("remote.requeues")

    def _note_pong(self, conn: _Connection) -> None:
        """Record the heartbeat round-trip for a pong just received."""
        if conn.ping_sent is None:
            return
        rtt = max(0.0, time.monotonic() - conn.ping_sent)
        conn.ping_sent = None
        tracer = get_tracer()
        if tracer.enabled:
            get_metrics().observe("remote.heartbeat_rtt_s", rtt)
            tracer.event(
                "remote.heartbeat",
                worker=conn.name,
                rtt_s=round(rtt, 6),
            )


async def read_first_frame(reader) -> dict:
    """Read a connection's opening frame, detecting legacy JSON peers.

    A v2 peer opens with a binary frame (magic ``\\xa6R``); a legacy
    JSON-lines worker opens with ``{"op": "hello", ...}\\n``.  The
    first byte tells them apart, so old workers get a readable
    rejection instead of a silent disconnect.  Legacy frames come back
    with ``"legacy": True`` added.
    """
    first = await reader.readexactly(1)
    if first == b"{":
        line = first + await reader.readline()
        try:
            hello = decode_frame(line)
        except RemoteProtocolError:
            hello = {}
        hello["legacy"] = True
        return hello
    rest = await reader.readexactly(FRAME_HEADER_SIZE - 1)
    body_len = parse_frame_header(first + rest)
    body = await reader.readexactly(body_len)
    return decode_wire_body(body)


async def reject_peer(writer, reason: str, legacy: bool = False) -> None:
    """Send a ``reject`` frame (legacy JSON for protocol-1 peers) and close."""
    get_tracer().event("remote.reject", reason=reason)
    frame = {"op": "reject", "reason": reason}
    try:
        # A legacy JSON-lines worker cannot parse a binary frame; the
        # reject is the one message still sent in its dialect so it
        # can report *why* it was dropped.
        writer.write(encode_frame(frame) if legacy else encode_wire_frame(frame))
        await writer.drain()
    except (OSError, ConnectionError):
        pass
    writer.close()


async def validate_worker_hello(
    hello: dict,
    writer,
    kinds_needed: Optional[Sequence[str]],
    store_dir: Optional[str],
) -> bool:
    """Check a worker ``hello`` against this server; reject + ``False`` on
    mismatch.

    *kinds_needed* is the batch's required job kinds -- ``None`` skips
    the check (the long-lived service admits any worker and instead
    filters dispatch per connection, since future submissions may need
    kinds no current worker has).
    """
    if hello.get("legacy"):
        await reject_peer(
            writer,
            f"protocol mismatch: server speaks {PROTOCOL_VERSION} "
            f"(binary frames), worker speaks legacy JSON "
            f"({hello.get('protocol', 1)!r})",
            legacy=True,
        )
        return False
    if hello.get("op") != "hello":
        await reject_peer(writer, "expected hello frame")
        return False
    if hello.get("protocol") != PROTOCOL_VERSION:
        await reject_peer(
            writer,
            f"protocol mismatch: server speaks {PROTOCOL_VERSION}, "
            f"worker speaks {hello.get('protocol')!r}",
        )
        return False
    if kinds_needed is not None:
        worker_kinds = set(hello.get("kinds") or ())
        missing = [k for k in kinds_needed if k not in worker_kinds]
        if missing:
            await reject_peer(
                writer, f"worker is missing job kinds: {missing}"
            )
            return False
    worker_store = hello.get("store")
    if (
        worker_store
        and store_dir
        and not _same_path(worker_store, store_dir)
    ):
        await reject_peer(
            writer,
            f"store mismatch: server uses {store_dir}, "
            f"worker uses {worker_store}",
        )
        return False
    return True


async def welcome_worker(
    reader,
    writer,
    kinds_needed: Optional[Sequence[str]] = None,
    store_dir: Optional[str] = None,
    timeout: float = 10.0,
    hello: Optional[dict] = None,
) -> Optional[_Connection]:
    """Run the server side of the worker handshake; ``None`` = rejected.

    Shared by the per-batch :class:`RemoteBackend` and the persistent
    :class:`~repro.runtime.service.SweepService` (which has already
    read the opening frame to tell workers from clients apart and
    passes it as *hello*).
    """
    if hello is None:
        try:
            hello = await asyncio.wait_for(
                read_first_frame(reader), timeout=timeout
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,  # covers WireProtocolError
        ):
            writer.close()
            return None
    if not await validate_worker_hello(hello, writer, kinds_needed, store_dir):
        return None
    welcome = {
        "op": "welcome",
        "protocol": PROTOCOL_VERSION,
        "store": store_dir,
    }
    tracer = get_tracer()
    if tracer.enabled and tracer.trace_dir is not None:
        # Advertise the trace context: same-host workers adopt the
        # sink directory and parent span, so their job spans land
        # in the merged trace under the orchestrator's sweep span.
        # The directory must exist *before* the worker's visibility
        # probe runs -- the tracer only creates it on first write,
        # and an early-joining worker would lose that race and
        # silently decline adoption.
        try:
            tracer.trace_dir.mkdir(parents=True, exist_ok=True)
            welcome["trace"] = {
                "dir": str(tracer.trace_dir),
                "parent": tracer.current_span_id(),
            }
        except OSError:
            pass  # unwritable sink: workers run untraced
    writer.write(encode_wire_frame(welcome))
    await writer.drain()
    name = f"worker-pid{hello.get('pid', '?')}"
    return _Connection(reader, writer, name, kinds=hello.get("kinds") or ())


async def _requeue_cancelled(getter: "asyncio.Task", pending) -> None:
    """Cancel a queue getter, requeueing an item it may have grabbed."""
    if getter.done():
        if not getter.cancelled():
            pending.put_nowait(getter.result())
        return
    getter.cancel()
    try:
        item = await getter
    except asyncio.CancelledError:
        return
    pending.put_nowait(item)


def _same_path(left: str, right: str) -> bool:
    from pathlib import Path

    try:
        return Path(left).resolve() == Path(right).resolve()
    except OSError:
        return left == right
