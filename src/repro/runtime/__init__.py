"""Parallel batch-execution engine with result caching.

The runtime turns every computation in the repo -- planarity tests,
partitions, spanners, application testers -- into a declarative,
hashable :class:`JobSpec`, executes batches of them on pluggable
backends (in-process or a chunked process pool), and memoizes records in
a content-addressed cache keyed by graph fingerprint + config digest.

Typical use::

    from repro.runtime import JobSpec, ResultCache, run_jobs

    specs = [
        JobSpec.make("test_planarity", family="grid", n=n, epsilon=0.25)
        for n in (128, 256, 512)
    ]
    cache = ResultCache()
    batch = run_jobs(specs, backend="process", cache=cache)
    for record in batch:
        print(record["n"], record["rounds"])

Grid sweeps (the benchmark/CLI entry point) layer on top::

    from repro.runtime import SweepSpec, run_sweep

    sweep = SweepSpec.make(
        "test_planarity", families=["grid"], ns=[128, 256],
        epsilon=[0.5, 0.25], seeds=[0, 1],
    )
    result = run_sweep(sweep, backend="serial", cache=cache)
    result.to_table("rounds vs n").print()
"""

from .cache import (
    COORD_KEYS_ENV_VAR,
    CacheStats,
    ResultCache,
    cache_key,
    config_digest,
    coord_keys_enabled,
    coordinate_fingerprint,
    graph_fingerprint,
)
from .executor import (
    BACKENDS,
    BatchResult,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    run_jobs,
)
from .jobs import JobSpec, Record, job_kinds, register_kind, run_job
from .seeding import derive_rng, derive_seed
from .sweeps import SweepResult, SweepSpec, run_sweep

__all__ = [
    "BACKENDS",
    "BatchResult",
    "CacheStats",
    "COORD_KEYS_ENV_VAR",
    "coord_keys_enabled",
    "coordinate_fingerprint",
    "JobSpec",
    "ProcessPoolBackend",
    "Record",
    "ResultCache",
    "SerialBackend",
    "SweepResult",
    "SweepSpec",
    "cache_key",
    "config_digest",
    "derive_rng",
    "derive_seed",
    "graph_fingerprint",
    "job_kinds",
    "make_backend",
    "register_kind",
    "run_job",
    "run_jobs",
    "run_sweep",
]
