"""Fleet orchestrator: sharded batch execution with a shared result store.

The runtime turns every computation in the repo -- planarity tests,
partitions, spanners, application testers, claim audits -- into a
declarative, hashable :class:`JobSpec`, executes batches of them on
pluggable backends (in-process, a chunked process pool,
asyncio-managed worker subprocesses, or remote TCP workers that join a
``sweep --backend remote`` server and may die mid-job without losing
work), and memoizes records in a cache keyed by graph coordinates
(default) or content fingerprint + config digest, persisted in a
sharded multi-writer on-disk store that concurrent processes share
(with timestamps, TTL/byte-budget GC, and a metadata shard holding the
scheduler's measured cost table).  Sweeps split into deterministic
shards (``ShardedSweep`` / ``repro-planarity sweep --shard i/k``) --
by key-hash or cost-balanced LPT (``--balance cost``) -- and resume
from whatever the store already holds.

Typical use::

    from repro.runtime import JobSpec, ResultCache, run_jobs

    specs = [
        JobSpec.make("test_planarity", family="grid", n=n, epsilon=0.25)
        for n in (128, 256, 512)
    ]
    cache = ResultCache()
    batch = run_jobs(specs, backend="process", cache=cache)
    for record in batch:
        print(record["n"], record["rounds"])

Grid sweeps (the benchmark/CLI entry point) layer on top::

    from repro.runtime import SweepSpec, run_sweep

    sweep = SweepSpec.make(
        "test_planarity", families=["grid"], ns=[128, 256],
        epsilon=[0.5, 0.25], seeds=[0, 1],
    )
    result = run_sweep(sweep, backend="serial", cache=cache)
    result.to_table("rounds vs n").print()
"""

from .async_backend import AsyncBackend, AsyncWorkerError
from .batching import (
    AUTO_BATCH_DEFAULT,
    AUTO_BATCH_MAX,
    AUTO_TARGET_SECONDS,
    BATCH_ENV_VAR,
    BATCHABLE_PROGRAMS,
    auto_batch_size,
    batchable,
    batching_available,
    coalesce,
    expand_batch_record,
    make_batch_spec,
    resolve_batch,
)
from .codec import (
    GLOBAL_SHAPES,
    CodecError,
    ShapeRegistry,
    WireProtocolError,
    decode_record,
    encode_record,
    encode_wire_frame,
    read_wire_frame,
)
from .remote import (
    PROTOCOL_VERSION,
    RemoteBackend,
    RemoteProtocolError,
    RemoteWorkerError,
)
from .scheduler import CostBook, CostModel, assign_shards
from .cache import (
    COORD_KEYS_ENV_VAR,
    CacheStats,
    ResultCache,
    cache_key,
    config_digest,
    coord_keys_enabled,
    coordinate_fingerprint,
    graph_fingerprint,
)
from .executor import (
    BACKENDS,
    BatchResult,
    ProcessPoolBackend,
    SerialBackend,
    iter_jobs,
    make_backend,
    run_jobs,
)
from .jobs import (
    JobSpec,
    Record,
    job_kinds,
    kind_needs_graph,
    register_kind,
    run_job,
    run_job_timed,
    spec_needs_graph,
)
from .seeding import derive_rng, derive_seed
from .store import (
    ClearReport,
    GCReport,
    ShardedStore,
    StoreStats,
    shard_of_key,
)
from .sweeps import (
    ShardedSweep,
    SweepResult,
    SweepSpec,
    job_shard,
    run_sweep,
)

from . import audit as _audit_kinds  # noqa: F401  (registers E08-E14 kinds)

__all__ = [
    "AsyncBackend",
    "AsyncWorkerError",
    "BACKENDS",
    "AUTO_BATCH_DEFAULT",
    "AUTO_BATCH_MAX",
    "AUTO_TARGET_SECONDS",
    "BATCHABLE_PROGRAMS",
    "BATCH_ENV_VAR",
    "BatchResult",
    "CacheStats",
    "ClearReport",
    "CodecError",
    "COORD_KEYS_ENV_VAR",
    "CostBook",
    "CostModel",
    "GCReport",
    "GLOBAL_SHAPES",
    "JobSpec",
    "PROTOCOL_VERSION",
    "ProcessPoolBackend",
    "Record",
    "RemoteBackend",
    "RemoteProtocolError",
    "RemoteWorkerError",
    "ResultCache",
    "SerialBackend",
    "ShapeRegistry",
    "ShardedStore",
    "ShardedSweep",
    "StoreStats",
    "SweepResult",
    "SweepSpec",
    "WireProtocolError",
    "assign_shards",
    "auto_batch_size",
    "batchable",
    "batching_available",
    "cache_key",
    "coalesce",
    "config_digest",
    "coord_keys_enabled",
    "coordinate_fingerprint",
    "derive_rng",
    "derive_seed",
    "expand_batch_record",
    "graph_fingerprint",
    "iter_jobs",
    "job_kinds",
    "job_shard",
    "kind_needs_graph",
    "make_backend",
    "make_batch_spec",
    "decode_record",
    "encode_record",
    "encode_wire_frame",
    "read_wire_frame",
    "register_kind",
    "resolve_batch",
    "run_job",
    "run_job_timed",
    "run_jobs",
    "run_sweep",
    "shard_of_key",
    "spec_needs_graph",
]
