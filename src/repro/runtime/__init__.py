"""Fleet orchestrator: sharded batch execution with a shared result store.

The runtime turns every computation in the repo -- planarity tests,
partitions, spanners, application testers, claim audits -- into a
declarative, hashable :class:`JobSpec`, executes batches of them on
pluggable backends (in-process, a chunked process pool,
asyncio-managed worker subprocesses, or remote TCP workers that join a
``sweep --backend remote`` server and may die mid-job without losing
work), and memoizes records in a cache keyed by graph coordinates
(default) or content fingerprint + config digest, persisted in a
sharded multi-writer on-disk store that concurrent processes share
(with timestamps, TTL/byte-budget GC, and a metadata shard holding the
scheduler's measured cost table).  Sweeps split into deterministic
shards (``ShardedSweep`` / ``repro-planarity sweep --shard i/k``) --
by key-hash or cost-balanced LPT (``--balance cost``) -- and resume
from whatever the store already holds.

Typical use -- the :class:`Client` facade, which runs the same
``submit(SweepSpec)`` against the in-process serial path, any local
backend, or a live ``repro-planarity serve`` endpoint::

    from repro.runtime import Client, RunConfig, SweepSpec

    sweep = SweepSpec.make(
        "test", families=["grid"], ns=[128, 256],
        epsilon=[0.5, 0.25], seeds=[0, 1],
    )
    client = Client(backend="serial", cache_dir="/tmp/repro-cache",
                    config=RunConfig(sim_batch="auto"))
    for record in client.submit(sweep):       # canonical expansion order
        print(record["n"], record["accepted"])

    remote = Client(endpoint="127.0.0.1:7077")  # same call, live fleet
    records = remote.run(sweep)               # byte-identical records

Batch-level control (the layer the facade sits on) stays available::

    from repro.runtime import JobSpec, ResultCache, run_jobs

    specs = [
        JobSpec.make("test_planarity", family="grid", n=n, epsilon=0.25)
        for n in (128, 256, 512)
    ]
    batch = run_jobs(specs, backend="process", cache=ResultCache())

The public surface splits in two: ``STABLE_API`` names are the
supported library API (semver-stable); everything else in ``__all__``
is internal machinery re-exported for the CLI, benchmarks, and tests,
and may change between PRs without notice.
"""

from .async_backend import AsyncBackend, AsyncWorkerError
from .batching import (
    AUTO_BATCH_DEFAULT,
    AUTO_BATCH_MAX,
    AUTO_TARGET_SECONDS,
    BATCH_ENV_VAR,
    BATCHABLE_PROGRAMS,
    auto_batch_size,
    batchable,
    batching_available,
    coalesce,
    expand_batch_record,
    make_batch_spec,
    resolve_batch,
)
from .codec import (
    GLOBAL_SHAPES,
    CodecError,
    ShapeRegistry,
    WireProtocolError,
    decode_record,
    encode_record,
    encode_wire_frame,
    read_wire_frame,
)
from .client import Client, ServiceError
from .config import RunConfig
from .remote import (
    PROTOCOL_VERSION,
    RemoteBackend,
    RemoteProtocolError,
    RemoteWorkerError,
)
from .scheduler import CostBook, CostModel, SpeculationPolicy, assign_shards
from .service import SweepService
from .cache import (
    COORD_KEYS_ENV_VAR,
    CacheStats,
    ResultCache,
    cache_key,
    config_digest,
    coord_keys_enabled,
    coordinate_fingerprint,
    graph_fingerprint,
)
from .executor import (
    BACKENDS,
    BatchResult,
    ProcessPoolBackend,
    SerialBackend,
    iter_jobs,
    make_backend,
    run_jobs,
)
from .jobs import (
    JobSpec,
    Record,
    job_kinds,
    kind_needs_graph,
    register_kind,
    run_job,
    run_job_timed,
    spec_needs_graph,
)
from .seeding import derive_rng, derive_seed
from .store import (
    ClearReport,
    GCReport,
    ShardedStore,
    StoreStats,
    shard_of_key,
)
from .sweeps import (
    ShardedSweep,
    SweepResult,
    SweepSpec,
    job_shard,
    run_sweep,
)

from . import audit as _audit_kinds  # noqa: F401  (registers E08-E14 kinds)

STABLE_API = [
    # The supported library surface: one facade, its spec/config
    # inputs, the batch entry points it wraps, and the cache handle.
    "Client",
    "JobSpec",
    "SweepSpec",
    "RunConfig",
    "run_jobs",
    "run_sweep",
    "iter_jobs",
    "ResultCache",
    "SweepService",
    "ServiceError",
    "BatchResult",
    "SweepResult",
    "Record",
]

_INTERNAL_API = [
    # Machinery re-exported for the CLI, benchmarks, and tests; may
    # change between PRs without notice.
    "AsyncBackend",
    "AsyncWorkerError",
    "BACKENDS",
    "AUTO_BATCH_DEFAULT",
    "AUTO_BATCH_MAX",
    "AUTO_TARGET_SECONDS",
    "BATCHABLE_PROGRAMS",
    "BATCH_ENV_VAR",
    "CacheStats",
    "ClearReport",
    "CodecError",
    "COORD_KEYS_ENV_VAR",
    "CostBook",
    "CostModel",
    "GCReport",
    "GLOBAL_SHAPES",
    "PROTOCOL_VERSION",
    "ProcessPoolBackend",
    "RemoteBackend",
    "RemoteProtocolError",
    "RemoteWorkerError",
    "SerialBackend",
    "ShapeRegistry",
    "ShardedStore",
    "ShardedSweep",
    "SpeculationPolicy",
    "StoreStats",
    "WireProtocolError",
    "assign_shards",
    "auto_batch_size",
    "batchable",
    "batching_available",
    "cache_key",
    "coalesce",
    "config_digest",
    "coord_keys_enabled",
    "coordinate_fingerprint",
    "derive_rng",
    "derive_seed",
    "expand_batch_record",
    "graph_fingerprint",
    "job_kinds",
    "job_shard",
    "kind_needs_graph",
    "make_backend",
    "make_batch_spec",
    "decode_record",
    "encode_record",
    "encode_wire_frame",
    "read_wire_frame",
    "register_kind",
    "resolve_batch",
    "run_job",
    "run_job_timed",
    "shard_of_key",
    "spec_needs_graph",
]

__all__ = STABLE_API + _INTERNAL_API
