"""One place for the runtime's configuration knobs: :class:`RunConfig`.

The runtime grew one environment variable per feature -- batch size,
array backend, store format, partition engine, padding waste, cache
key mode -- and every entry point (``run_jobs``, ``run_sweep``, the
CLI, worker processes) consulted them ad hoc.  :class:`RunConfig`
consolidates them behind one dataclass with a documented precedence:

    **constructor argument  >  environment variable  >  built-in default**

A field left as ``None`` defers to its environment variable (and then
the default); a field set explicitly wins outright.  ``resolve(name)``
returns the effective value, and :meth:`RunConfig.export` temporarily
writes every *explicitly set* knob into ``os.environ`` so child
processes -- pool forks, async worker subprocesses, remote workers on
the same host -- resolve the run identically.

=====================  ==========================  =================
field                  environment variable        default
=====================  ==========================  =================
``sim_batch``          ``REPRO_SIM_BATCH``         ``1`` (no batching)
``sim_batch_waste``    ``REPRO_SIM_BATCH_WASTE``   ``4.0``
``sim_xp``             ``REPRO_SIM_XP``            ``"numpy"``
``store_format``       ``REPRO_STORE_FORMAT``      ``"rbin"``
``partition_engine``   ``REPRO_PARTITION_ENGINE``  ``"auto"``
``cache_coord_keys``   ``REPRO_CACHE_COORD_KEYS``  ``True``
=====================  ==========================  =================

``run_jobs(..., config=...)`` / ``run_sweep(..., config=...)`` accept
a config directly; the older per-knob keyword arguments (``batch``,
``batch_waste``) still work but emit :class:`DeprecationWarning` --
new code should write::

    from repro.runtime import RunConfig, run_sweep

    result = run_sweep(sweep, config=RunConfig(sim_batch="auto"))
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Union


def _parse_bool(raw: str) -> bool:
    return raw != "0"


def _parse_batch(raw: str) -> Union[int, str]:
    text = raw.strip().lower()
    return text if text == "auto" else int(raw)


_KNOBS: Dict[str, Tuple[str, Any, Any]] = {
    # field -> (env var, parser for env text, built-in default)
    "sim_batch": ("REPRO_SIM_BATCH", _parse_batch, 1),
    "sim_batch_waste": ("REPRO_SIM_BATCH_WASTE", float, 4.0),
    "sim_xp": ("REPRO_SIM_XP", str, "numpy"),
    "store_format": ("REPRO_STORE_FORMAT", str, "rbin"),
    "partition_engine": ("REPRO_PARTITION_ENGINE", str, "auto"),
    "cache_coord_keys": ("REPRO_CACHE_COORD_KEYS", _parse_bool, True),
}


@dataclass(frozen=True)
class RunConfig:
    """Resolved-on-demand runtime configuration (see module docstring).

    Every field defaults to ``None`` = "not set here": :meth:`resolve`
    then falls back to the knob's environment variable, then to the
    built-in default.  Instances are frozen and hashable, so a config
    can ride inside specs, service submissions, and test parametrize
    lists without defensive copying.
    """

    sim_batch: Union[int, str, None] = None
    sim_batch_waste: Optional[float] = None
    sim_xp: Optional[str] = None
    store_format: Optional[str] = None
    partition_engine: Optional[str] = None
    cache_coord_keys: Optional[bool] = None

    def resolve(self, name: str) -> Any:
        """The effective value of knob *name* (arg > env > default)."""
        if name not in _KNOBS:
            raise KeyError(
                f"unknown runtime knob {name!r}; known: {sorted(_KNOBS)}"
            )
        explicit = getattr(self, name)
        if explicit is not None:
            return explicit
        env_var, parser, default = _KNOBS[name]
        raw = os.environ.get(env_var)
        if raw is not None and raw != "":
            try:
                return parser(raw)
            except (TypeError, ValueError):
                warnings.warn(
                    f"ignoring unparsable {env_var}={raw!r}; "
                    f"using default {default!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return default

    def resolved(self) -> Dict[str, Any]:
        """Every knob's effective value, as a plain dict."""
        return {name: self.resolve(name) for name in _KNOBS}

    def overrides(self) -> Dict[str, Any]:
        """Only the knobs set explicitly on this instance."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    @classmethod
    def env_var(cls, name: str) -> str:
        """The environment variable backing knob *name*."""
        return _KNOBS[name][0]

    @classmethod
    def from_env(cls) -> "RunConfig":
        """A config pinning the *current* environment's effective values.

        Unlike a default instance (which re-reads the environment on
        every ``resolve``), the returned config is frozen to the values
        in force right now -- useful for capturing a run's settings in
        a record or a service submission.
        """
        probe = cls()
        return cls(**probe.resolved())

    @contextmanager
    def export(self):
        """Export every explicitly-set knob to ``os.environ``, scoped.

        Child processes started inside the ``with`` block (pool forks,
        async worker subprocesses, same-host remote workers) inherit
        the exported variables and therefore resolve the same effective
        values; previous values are restored on exit, so nested runs
        with different configs stay coherent.
        """
        saved: Dict[str, Optional[str]] = {}
        try:
            for name, value in self.overrides().items():
                env_var = _KNOBS[name][0]
                saved[env_var] = os.environ.get(env_var)
                if isinstance(value, bool):
                    os.environ[env_var] = "1" if value else "0"
                else:
                    os.environ[env_var] = str(value)
            yield self
        finally:
            for env_var, old in saved.items():
                if old is None:
                    os.environ.pop(env_var, None)
                else:
                    os.environ[env_var] = old


def warn_deprecated_kwarg(api: str, kwarg: str, replacement: str) -> None:
    """One consistent deprecation message for the pre-RunConfig kwargs."""
    warnings.warn(
        f"{api}({kwarg}=...) is deprecated; pass "
        f"config=RunConfig({replacement}=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
