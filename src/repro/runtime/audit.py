"""Audit job kinds: the E08-E14 benchmark workloads as declarative specs.

The first half of the benchmark suite (E01-E07, E15, E16) already runs
through :func:`~repro.runtime.run_jobs`; these kinds move the remaining
experiments -- claim audits, substrate validation, baselines, the
lower-bound construction -- onto the same execution plane, so the whole
suite parallelizes under ``REPRO_BENCH_BACKEND=process`` and shares the
orchestrator's cache, sharding, and resume machinery.

Kinds registered here live in the :mod:`repro.runtime` package (not in
``benchmarks/``) so process-pool and async workers have them available
the moment they import the package.  Heavy algorithm imports stay
inside the runners, keeping ``import repro.runtime`` cheap.

Two conventions:

* kinds that synthesize their own instance (the Theorem 2 lower-bound
  construction, the LR-vs-oracle random sweep, the Cole-Vishkin path
  audit) register with ``needs_graph=False`` -- the executor builds no
  graph and the runner owns the record's ``n``/``m`` fields;
* records stay flat primitive dicts; the one structured payload
  (per-phase stats for the Claim 4 diameter audit) is carried as a
  canonical JSON string column that the benchmark decodes.
"""

from __future__ import annotations

import json

import networkx as nx

from .jobs import JobSpec, Record, register_kind

ABLATION_GUARANTEE = "O(log n / beta)"


# -- E08: Claim 4 diameter-growth audit --------------------------------------


def _run_partition_phase_audit(spec: JobSpec, graph: nx.Graph) -> Record:
    """Stage I partition with the full per-phase trajectory attached."""
    from ..partition.stage1 import partition_stage1

    params = spec.params
    result = partition_stage1(
        graph,
        epsilon=params.get("epsilon", 0.1),
        alpha=params.get("alpha", 3),
        engine=params.get("engine"),
    )
    phases = [
        [stats.phase, stats.max_height_after, stats.parts_after]
        for stats in result.phases
    ]
    return {
        "epsilon": params.get("epsilon", 0.1),
        "success": result.success,
        "parts": result.partition.size,
        "cut": result.partition.cut_size(),
        "phases": len(result.phases),
        "phases_json": json.dumps(phases, separators=(",", ":")),
    }


# -- E09: Corollary 16 application testers with measured farness -------------


def _run_application_audit(spec: JobSpec, graph: nx.Graph) -> Record:
    """Cycle-freeness / bipartiteness tester at a farness-derived epsilon.

    Replicates the E09 protocol: measure the graph's certified farness
    from the property, aim the tester at ``0.8 x`` that distance
    (clamped to ``[0.05, 0.4]``; 0.3 for property-satisfying inputs),
    and record the verdict.
    """
    from ..graphs import bipartiteness_farness_bounds, cycle_freeness_farness
    from ..testers import test_bipartiteness, test_cycle_freeness

    params = spec.params
    prop = params.get("property", "cycle")
    method = params.get("method", "deterministic")
    if prop == "cycle":
        farness = cycle_freeness_farness(graph)
        runner = test_cycle_freeness
    elif prop == "bipartite":
        farness = bipartiteness_farness_bounds(graph)[0]
        runner = test_bipartiteness
    else:
        raise ValueError(f"unknown property {prop!r}")
    epsilon = max(0.05, min(0.4, farness * 0.8)) if farness > 0 else 0.3
    result = runner(
        graph,
        epsilon=epsilon,
        method=method,
        seed=spec.seed,
        engine=params.get("engine"),
    )
    return {
        "property": prop,
        "method": method,
        "farness": farness,
        "epsilon": epsilon,
        "accepted": result.accepted,
        "rejecting_parts": len(result.rejecting_parts),
        "rounds": result.rounds,
    }


# -- E10: spanner baselines (MPX cluster / greedy) ---------------------------


def _run_spanner_baseline(spec: JobSpec, graph: nx.Graph) -> Record:
    """One baseline spanner trial (MPX cluster or sequential greedy).

    Under the dense engine the graph's compiled topology (memoized per
    graph object, so one compilation per sweep cell) is handed to the
    baseline, which returns its spanner as flat edge arrays -- the
    vectorized stretch measurement then never re-converts either graph.
    """
    from ..applications.spanner import measure_stretch
    from ..partition.stage1 import resolve_engine

    params = spec.params
    method = params.get("method", "mpx")
    sample_nodes = params.get("sample_nodes", 8)
    n = graph.number_of_nodes()
    engine = params.get("engine")
    topology = None
    if resolve_engine(engine, graph) == "dense":
        from ..congest.topology import compile_topology

        topology = compile_topology(graph)
    if method == "mpx":
        from ..baselines import cluster_spanner

        beta = params.get("beta", 0.3)
        spanner, mpx = cluster_spanner(
            graph, beta=beta, seed=spec.seed, topology=topology
        )
        guarantee: object = ABLATION_GUARANTEE
        rounds: object = mpx.rounds
        parameter: object = beta
    elif method == "greedy":
        from ..baselines import greedy_spanner

        stretch_bound = params.get("stretch", 5)
        spanner = greedy_spanner(
            graph, stretch=stretch_bound, topology=topology
        )
        guarantee = stretch_bound
        rounds = "(sequential)"
        parameter = "-"
    else:
        raise ValueError(f"unknown baseline method {method!r}")
    stretch = measure_stretch(
        graph, spanner, sample_nodes=sample_nodes, seed=spec.seed,
        engine=engine,
    )
    edges = (
        spanner.edge_count
        if topology is not None
        else spanner.number_of_edges()
    )
    return {
        "method": method,
        "parameter": parameter,
        "spanner_edges": edges,
        "size_per_n": edges / max(n, 1),
        "measured_stretch": stretch,
        "guaranteed_stretch": guarantee,
        "rounds": rounds,
    }


# -- E11: Theorem 2 lower-bound instances (graphless) ------------------------


def _run_lower_bound_audit(spec: JobSpec, _graph) -> Record:
    from ..graphs import all_views_are_trees, lower_bound_instance

    inst = lower_bound_instance(spec.n, seed=spec.seed)
    radius = inst.indistinguishability_radius
    graph = inst.graph
    return {
        "n": spec.n,
        "m": graph.number_of_edges(),
        "girth": inst.girth,
        "target_girth": inst.target_girth,
        "removed_edges": inst.removed_edges,
        "farness_lb": inst.farness_lower_bound,
        "blind_radius": radius,
        "views_are_trees": all_views_are_trees(graph, radius),
    }


# -- E12: MPX-partition ablation inside the tester ---------------------------


def _run_mpx_ablation(spec: JobSpec, graph: nx.Graph) -> Record:
    """Tester rounds when Stage I is replaced by the MPX partition."""
    from ..baselines import mpx_partition
    from ..testers.planarity import stage2_over_partition
    from ..testers.stage2 import Stage2Config

    params = spec.params
    epsilon = params.get("epsilon", 0.1)
    mpx = mpx_partition(graph, beta=epsilon / 2, seed=spec.seed)
    _verdicts, rejecting, stage2_rounds = stage2_over_partition(
        graph, mpx.partition, Stage2Config(epsilon=epsilon), seed=spec.seed
    )
    return {
        "epsilon": epsilon,
        "accepted": not rejecting,
        "rounds": mpx.rounds + stage2_rounds,
        "partition_rounds": mpx.rounds,
        "stage2_rounds": stage2_rounds,
        "max_height": mpx.partition.max_height(),
    }


# -- E13: violating-edge criteria audit --------------------------------------


def _run_violation_audit(spec: JobSpec, _graph) -> Record:
    """Corner vs paper-literal preorder violating-edge counts.

    Planar inputs analyze their LR embedding (completeness: corner
    count must be 0); far inputs analyze the identity rotation and
    carry their construction-certified farness (soundness: corner count
    >= farness * m).  Graphless because the far generators certify
    farness *during* construction: building here keeps one generation
    per job instead of regenerating just for the certificate.
    """
    from ..planarity import check_planarity, identity_rotation
    from ..testers import count_violating
    from ..testers.labels import (
        corner_intervals,
        deterministic_bfs_tree,
        embedding_ranks,
        euler_tour_positions,
        non_tree_intervals,
    )

    if spec.far:
        from ..graphs.far_from_planar import make_far

        graph, certified = make_far(
            spec.far, spec.n, seed=spec.effective_graph_seed
        )
        rotation = identity_rotation(graph)
        planar = False
    else:
        certified = 0.0
        graph = spec.build_graph()
        rotation = check_planarity(graph).embedding
        planar = True
    parents, _depths = deterministic_bfs_tree(graph, 0)
    positions, universe = euler_tour_positions(graph, 0, rotation, parents)
    corner = [
        (a, b) for a, b, _u, _v in corner_intervals(graph, parents, positions)
    ]
    ranks = embedding_ranks(graph, 0, rotation, parents)
    preorder = [
        (a, b) for a, b, _u, _v in non_tree_intervals(graph, parents, ranks)
    ]
    return {
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "planar": planar,
        "certified_farness": certified,
        "non_tree_edges": len(corner),
        "violating_corner": count_violating(corner, universe=universe),
        "violating_preorder": count_violating(
            preorder, universe=graph.number_of_nodes()
        ),
    }


# -- E14: substrate validation kinds -----------------------------------------


def _run_lr_oracle_trial(spec: JobSpec, _graph) -> Record:
    """One LR-vs-networkx-oracle trial on a G(n, p) instance.

    The ``(gnp_n, gnp_p)`` coordinates come from the benchmark's shared
    RNG walk (kept there so the committed table reproduces); the trial
    index seeds the graph itself.
    """
    from ..planarity import check_planarity, verify_planar_embedding

    params = spec.params
    trial = params.get("trial", 0)
    graph = nx.gnp_random_graph(
        params.get("gnp_n", 8), params.get("gnp_p", 0.5), seed=trial
    )
    mine = check_planarity(graph)
    oracle, _cert = nx.check_planarity(graph)
    verified = False
    if mine.is_planar:
        verify_planar_embedding(mine.embedding, graph)
        verified = True
    return {
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "trial": trial,
        "agree": mine.is_planar == oracle,
        "embedding_verified": verified,
    }


def _run_forest_agreement(spec: JobSpec, graph: nx.Graph) -> Record:
    """Simulated vs emulated Barenboim-Elkin forest decomposition."""
    from ..congest.programs import run_forest_decomposition_simulated
    from ..partition import (
        AuxiliaryGraph,
        Partition,
        forest_decomposition_emulated,
    )

    alpha = spec.params.get("alpha", 3)
    sim = run_forest_decomposition_simulated(graph, alpha=alpha, seed=spec.seed)
    emu = forest_decomposition_emulated(
        AuxiliaryGraph(Partition.singletons(graph)), alpha=alpha
    )
    agree = sim.inactive_round == emu.inactive_round and {
        v: set(o) for v, o in sim.out_neighbors.items()
    } == {v: set(o) for v, o in emu.out_edges.items()}
    return {"agree": agree}


def _run_cv_agreement(spec: JobSpec, _graph) -> Record:
    """Simulated vs emulated Cole-Vishkin on a rooted path."""
    from ..congest.programs import cole_vishkin_coloring
    from ..partition import cole_vishkin_emulated

    length = spec.params.get("length", 120)
    graph = nx.path_graph(length)
    parents = {i: i - 1 if i > 0 else None for i in graph.nodes()}
    sim_colors, sim_rounds = cole_vishkin_coloring(
        graph, parents, seed=spec.seed
    )
    emu_colors, emu_super = cole_vishkin_emulated(parents)
    return {
        "n": length,
        "m": length - 1,
        "agree": sim_colors == emu_colors,
        "sim_rounds": sim_rounds,
        "emu_super_rounds": emu_super,
    }


def _run_congest_bandwidth(spec: JobSpec, graph: nx.Graph) -> Record:
    """BFS protocol bandwidth audit on the simulator."""
    from ..congest import CongestNetwork
    from ..congest.programs import BFSTreeProgram

    params = spec.params
    network = CongestNetwork(graph, seed=spec.seed)
    result = network.run(
        BFSTreeProgram,
        max_rounds=graph.number_of_nodes(),
        config={"root": params.get("root", 0)},
        strict_bandwidth=True,
    )
    return {
        "messages": result.total_messages,
        "over_budget": result.over_budget_messages,
        "max_message_bits": result.max_message_bits,
        "bandwidth_bits": result.bandwidth_bits,
    }


def _run_stage2_agreement(spec: JobSpec, graph: nx.Graph) -> Record:
    """Distributed Stage II protocol vs the emulated Euler-tour walk."""
    from ..congest.programs import run_stage2_verification_simulated
    from ..planarity import check_planarity
    from ..testers.labels import deterministic_bfs_tree, euler_tour_positions

    epsilon = spec.params.get("epsilon", 0.2)
    embedding = check_planarity(graph).embedding
    distributed = run_stage2_verification_simulated(
        graph, 0, embedding.to_dict(), epsilon=epsilon, seed=spec.seed
    )
    parents, _depths = deterministic_bfs_tree(graph, 0)
    emulated, _total = euler_tour_positions(graph, 0, embedding, parents)
    return {
        "accepted": distributed.accepted,
        "agree": distributed.accepted and distributed.positions == emulated,
    }


register_kind("partition_phase_audit", _run_partition_phase_audit)
register_kind("application_audit", _run_application_audit)
register_kind("spanner_baseline", _run_spanner_baseline)
register_kind("lower_bound_audit", _run_lower_bound_audit, needs_graph=False)
register_kind("mpx_ablation", _run_mpx_ablation)
register_kind("violation_audit", _run_violation_audit, needs_graph=False)
register_kind("lr_oracle_trial", _run_lr_oracle_trial, needs_graph=False)
register_kind("forest_agreement", _run_forest_agreement)
register_kind("cv_agreement", _run_cv_agreement, needs_graph=False)
register_kind("congest_bandwidth", _run_congest_bandwidth)
register_kind("stage2_agreement", _run_stage2_agreement)
