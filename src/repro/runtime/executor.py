"""Pluggable batch-execution backends behind one ``run_jobs`` API.

``run_jobs(specs)`` is the single entry point the CLI, the sweeps
front-end, and the benchmarks use to execute work:

1. every spec's cache key is derived (coordinate keys by default --
   content fingerprints when ``REPRO_CACHE_COORD_KEYS=0``);
2. cache hits are answered immediately;
3. the misses are dispatched to the chosen backend --
   :class:`SerialBackend` runs them in-process,
   :class:`ProcessPoolBackend` fans them over a
   :class:`concurrent.futures.ProcessPoolExecutor` with chunked
   dispatch, and :class:`~repro.runtime.async_backend.AsyncBackend`
   streams them through asyncio-managed worker subprocesses;
4. fresh records are stored back and the full result list is returned
   in the order of the input specs.

:func:`iter_jobs` is the streaming face of the same machinery: it
yields ``(index, record, from_cache)`` triples as results land
(hits first, then misses in completion order) instead of barriering
the whole batch -- fresh records are cached the moment they arrive, so
a concurrent orchestrator sharing the same on-disk store sees them
mid-flight.

Records are flat primitive dicts (see :mod:`repro.runtime.jobs`), so
backends are interchangeable: the same batch yields byte-identical
aggregates whichever backend ran it.  Per-job randomness is carried
entirely by ``spec.seed`` (workers derive their streams via
:mod:`repro.runtime.seeding`), never by process-global state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..telemetry.metrics import get_metrics
from ..telemetry.spans import telemetry_enabled
from .async_backend import AsyncBackend
from .batching import coalesce, expand_batch_record
from .cache import CacheStats, KeyDeriver, ResultCache
from .config import RunConfig, warn_deprecated_kwarg
from .jobs import JobSpec, Record, run_job, run_job_timed, spec_needs_graph
from .remote import RemoteBackend


class SerialBackend:
    """Runs every job in the calling process, one at a time."""

    name = "serial"
    # In-process execution profits from prebuilt graph objects: every
    # job on the same graph then shares one instance -- and therefore
    # one compiled simulator topology (see repro.congest.topology).
    wants_graph_hints = True

    def run(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
    ) -> List[Record]:
        if graphs is None:
            return [run_job(spec) for spec in specs]
        # Reuse graphs the caller already built (e.g. for fingerprinting).
        return [run_job(spec, graph) for spec, graph in zip(specs, graphs)]

    def run_stream(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
    ) -> Iterator[Tuple[int, Record, float]]:
        """Yield ``(index, record, seconds)`` as each job finishes."""
        if graphs is None:
            graphs = [None] * len(specs)
        for index, (spec, graph) in enumerate(zip(specs, graphs)):
            record, seconds = run_job_timed(spec, graph)
            yield index, record, seconds


def _run_chunk(specs: List[JobSpec]) -> List[Tuple[Record, float]]:
    """Module-level chunk runner (picklable for pool dispatch)."""
    return [run_job_timed(spec) for spec in specs]


class ProcessPoolBackend:
    """Fans jobs over a process pool with chunked dispatch.

    Args:
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of jobs.
        chunksize: jobs handed to a worker per dispatch; ``None`` picks
            ``ceil(len(jobs) / (4 * workers))`` so each worker sees a few
            chunks (amortizing pickling) while keeping the tail balanced.
    """

    name = "process"
    # Workers regenerate graphs from specs; prebuilding in the parent
    # would be wasted work, so run_jobs skips the hint for this backend.
    wants_graph_hints = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ):
        self.max_workers = max_workers
        self.chunksize = chunksize

    def _plan(self, specs: Sequence[JobSpec]) -> Tuple[int, int]:
        workers = self.max_workers or min(len(specs), os.cpu_count() or 1)
        workers = max(1, min(workers, len(specs)))
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(specs) // (4 * workers)))
        return workers, chunksize

    def run(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
    ) -> List[Record]:
        # *graphs* is accepted for interface parity but ignored: workers
        # regenerate inputs from the spec, which is cheaper than pickling
        # whole graphs across the process boundary.
        if not specs:
            return []
        # Lazy import: keep module import cheap and fork-safe contexts
        # selectable by the caller's environment.
        from concurrent.futures import ProcessPoolExecutor

        workers, chunksize = self._plan(specs)
        if workers == 1:
            return SerialBackend().run(specs)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves input order, so cached and fresh records
            # interleave deterministically regardless of worker timing.
            return list(pool.map(run_job, specs, chunksize=chunksize))

    def run_stream(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
    ) -> Iterator[Tuple[int, Record, float]]:
        """Yield ``(index, record, seconds)`` per chunk, as chunks land."""
        if not specs:
            return
        from concurrent.futures import ProcessPoolExecutor, as_completed

        specs = list(specs)
        workers, chunksize = self._plan(specs)
        if workers == 1:
            yield from SerialBackend().run_stream(specs, graphs)
            return
        chunks = [
            list(range(start, min(start + chunksize, len(specs))))
            for start in range(0, len(specs), chunksize)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_chunk, [specs[i] for i in chunk]): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                for index, (record, seconds) in zip(chunk, future.result()):
                    yield index, record, seconds


BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "async": AsyncBackend,
    "remote": RemoteBackend,
}
"""Backend registry used by the CLI's ``--backend`` flag."""


def make_backend(name: str, **kwargs):
    """Instantiate a backend by registry name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)


def _graph_hints(specs: Sequence[JobSpec]) -> List:
    """Build each distinct input graph once and map it onto *specs*.

    Mirrors the cache layer's per-batch graph memo for cache-less runs:
    specs that share graph coordinates (family/far, n, effective graph
    seed) receive the *same* graph object, so downstream consumers --
    most importantly the simulator's per-graph compiled-topology memo --
    only pay the derivation once per distinct topology.  Graphless
    kinds (audit jobs) receive ``None``.
    """
    built: Dict = {}
    hints = []
    for spec in specs:
        if not spec_needs_graph(spec):
            hints.append(None)
            continue
        key = spec.graph_coordinates
        graph = built.get(key)
        if graph is None:
            graph = built[key] = spec.build_graph()
        hints.append(graph)
    return hints


@dataclass
class BatchResult:
    """Outcome of one :func:`run_jobs` call.

    Attributes:
        records: one record per input spec, in input order.
        cache_stats: snapshot of this batch's hits/misses (hits are
            lookups answered from the cache *in this call*).
        backend: name of the backend that ran the misses.
        executed: number of jobs actually executed (= misses).
    """

    records: List[Record]
    cache_stats: CacheStats
    backend: str
    executed: int

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def _backend_stream(
    backend,
    specs: List[JobSpec],
    graphs: Optional[List],
    keys: Optional[List[str]],
) -> Iterator[Tuple[int, Record, Optional[float]]]:
    """Stream ``(position, record, seconds)`` from *backend*.

    Prefers the backend's native ``run_stream`` (completion order);
    falls back to the barriering ``run`` for custom backends that only
    implement the original interface.  *keys* are forwarded to
    backends that declare ``wants_keys`` (the async/remote backends
    hand them to workers for shared-store lookups).  ``seconds`` is
    the job's wall-time where the backend measured one (``None`` for
    legacy two-tuple streams and the ``run`` fallback) -- the cost
    book feeds it to the scheduler's per-kind/per-n cost table.
    """
    kwargs = {}
    if getattr(backend, "wants_keys", False) and keys is not None:
        kwargs["keys"] = keys
    stream = getattr(backend, "run_stream", None)
    if stream is not None:
        for item in stream(specs, graphs=graphs, **kwargs):
            if len(item) == 3:
                yield item
            else:
                position, record = item
                yield position, record, None
        return
    records = backend.run(specs, graphs=graphs, **kwargs)
    for position, record in enumerate(records):
        yield position, record, None


def iter_jobs(
    specs: Sequence[JobSpec],
    backend=None,
    cache: Optional[ResultCache] = None,
    stats: Optional[CacheStats] = None,
    cost_book=None,
    batch: Optional[int] = None,
    config: Optional[RunConfig] = None,
) -> Iterator[Tuple[int, Record, bool]]:
    """Execute *specs*, yielding ``(index, record, from_cache)`` as they land.

    Cache hits stream first (input order); misses follow in the
    backend's completion order.  Fresh records are stored into *cache*
    the moment they arrive, so concurrent orchestrators sharing one
    on-disk store observe them mid-batch.  Duplicate specs within the
    batch execute once; their copies are yielded when the first record
    lands.

    Args:
        specs: job specs to run.
        backend: backend instance or registry name (default serial).
        cache: optional :class:`ResultCache`.
        stats: optional :class:`CacheStats` to fill with this batch's
            hit/miss/store counters (what :func:`run_jobs` reports).
        cost_book: optional :class:`~repro.runtime.scheduler.CostBook`
            fed one ``(kind, n, seconds)`` observation per executed
            job (cache hits are never observed; a coalesced trial is
            observed under its own ``simulate_program`` kind at its
            amortized ``seconds / B`` share).
        batch: coalesce eligible same-cell simulator trials into
            ``simulate_batch`` jobs of at most this many members
            (``None`` consults ``REPRO_SIM_BATCH``; 1 disables).  The
            expansion is transparent: yielded records, cache contents,
            and cost observations are per-trial regardless.
        config: optional :class:`~repro.runtime.config.RunConfig`; when
            *batch* is ``None`` its ``sim_batch`` knob (arg > env >
            default) supplies the coalescing limit.
    """
    if batch is None and config is not None:
        batch = config.resolve("sim_batch")
    if backend is None:
        backend = SerialBackend()
    elif isinstance(backend, str):
        backend = make_backend(backend)
    if getattr(backend, "accepts_cost_book", False):
        # Backends that observe job costs out-of-band (the remote
        # backend logs partial elapsed time for requeued jobs) get the
        # live book for the duration of the batch -- including ``None``,
        # so a reused backend never writes into a stale book.
        backend.cost_book = cost_book
    specs = list(specs)
    batch_stats = stats if stats is not None else CacheStats()
    traced = telemetry_enabled()

    if cache is None:
        # No cache: still deduplicate identical specs within the batch.
        unique: Dict[JobSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            unique.setdefault(spec, []).append(index)
        ordered = list(unique)
        dispatch, sources = coalesce(ordered, batch)
        graphs = (
            _graph_hints(dispatch)
            if getattr(backend, "wants_graph_hints", False)
            else None
        )
        for position, record, seconds in _backend_stream(
            backend, dispatch, graphs, None
        ):
            members = sources[position]
            if dispatch[position].kind == "simulate_batch":
                per_trial = (
                    seconds / len(members) if seconds is not None else None
                )
                expanded = zip(members, expand_batch_record(record))
            else:
                per_trial = seconds
                expanded = ((members[0], record),)
            for source, trial_record in expanded:
                spec = ordered[source]
                if cost_book is not None and per_trial is not None:
                    cost_book.observe(spec.kind, spec.n, per_trial)
                for index in unique[spec]:
                    yield index, dict(trial_record), False
        return

    deriver = KeyDeriver()
    keys = [deriver.key_for(spec) for spec in specs]
    miss_indices: List[int] = []
    pending: Dict[str, List[int]] = {}
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if key in pending:
            # Duplicate within the batch: piggyback on the first miss.
            pending[key].append(index)
            batch_stats.hits += 1
            continue
        hit = cache.lookup(key)
        if hit is not None:
            batch_stats.hits += 1
            if traced:
                get_metrics().inc("cache.hits")
            yield index, hit, True
        else:
            batch_stats.misses += 1
            if traced:
                get_metrics().inc("cache.misses")
            miss_indices.append(index)
            pending[key] = [index]

    if not miss_indices:
        return
    miss_specs = [specs[i] for i in miss_indices]
    miss_keys = [keys[i] for i in miss_indices]
    dispatch, sources = coalesce(miss_specs, batch)
    dispatch_keys = [
        miss_keys[srcs[0]]
        if dspec.kind != "simulate_batch"
        else deriver.key_for(dspec)
        for dspec, srcs in zip(dispatch, sources)
    ]
    dispatch_graphs = None
    if getattr(backend, "wants_graph_hints", False):
        dispatch_graphs = [deriver.graph_for(spec) for spec in dispatch]
        # Coordinate-keyed derivers never build graphs; fill the gaps so
        # in-process misses still share one instance (and one compiled
        # topology) per distinct input.
        built: Dict = {}
        for position, (spec, graph) in enumerate(
            zip(dispatch, dispatch_graphs)
        ):
            if graph is None and spec_needs_graph(spec):
                key = spec.graph_coordinates
                graph = built.get(key)
                if graph is None:
                    graph = built[key] = spec.build_graph()
                dispatch_graphs[position] = graph
    # When the backend's workers persist to this cache's own disk store
    # (async backend sharing store_dir), the record is already on disk
    # by the time it streams back: remember it in memory only, or every
    # line would land twice.  Coalesced trials are the exception: the
    # workers persisted only the *batch* record under the batch key, so
    # the expanded per-trial records must be stored here regardless.
    backend_store = getattr(backend, "store_dir", None)
    workers_persist = (
        backend_store is not None
        and cache.disk_dir is not None
        and Path(backend_store).resolve() == Path(cache.disk_dir).resolve()
    )
    absorb = cache.remember if workers_persist else cache.store
    for position, record, seconds in _backend_stream(
        backend, dispatch, dispatch_graphs, dispatch_keys
    ):
        members = sources[position]
        if dispatch[position].kind == "simulate_batch":
            per_trial = seconds / len(members) if seconds is not None else None
            expanded = zip(members, expand_batch_record(record))
            store_trial = cache.store
        else:
            per_trial = seconds
            expanded = ((members[0], record),)
            store_trial = absorb
        for source, trial_record in expanded:
            index = miss_indices[source]
            if cost_book is not None and per_trial is not None:
                spec = miss_specs[source]
                cost_book.observe(spec.kind, spec.n, per_trial)
            store_trial(keys[index], trial_record)
            batch_stats.stores += 1
            for dup_index in pending[keys[index]]:
                yield dup_index, dict(trial_record), False


def run_jobs(
    specs: Sequence[JobSpec],
    backend=None,
    cache: Optional[ResultCache] = None,
    cost_book=None,
    batch: Optional[int] = None,
    config: Optional[RunConfig] = None,
) -> BatchResult:
    """Execute *specs*, serving repeats from *cache*.

    Args:
        specs: job specs; duplicates within the batch are executed once.
        backend: a backend instance or registry name; defaults to
            :class:`SerialBackend`.
        cache: a :class:`ResultCache`; ``None`` disables caching (every
            spec executes).
        cost_book: optional :class:`~repro.runtime.scheduler.CostBook`
            collecting per-job wall-times (see :func:`iter_jobs`).
        batch: deprecated -- pass ``config=RunConfig(sim_batch=...)``
            instead.  Still honored (it wins over *config*) but emits a
            :class:`DeprecationWarning`.
        config: optional :class:`~repro.runtime.config.RunConfig`
            supplying the ``sim_batch`` coalescing limit (arg > env >
            default; see :func:`iter_jobs`).

    Returns:
        A :class:`BatchResult` with one record per spec, in input order.
    """
    if batch is not None:
        warn_deprecated_kwarg("run_jobs", "batch", "sim_batch")
    elif config is not None:
        batch = config.resolve("sim_batch")
    return _run_jobs(
        specs, backend=backend, cache=cache, cost_book=cost_book,
        batch=batch,
    )


def _run_jobs(
    specs: Sequence[JobSpec],
    backend=None,
    cache: Optional[ResultCache] = None,
    cost_book=None,
    batch: Optional[int] = None,
) -> BatchResult:
    """Warning-free core of :func:`run_jobs` (internal callers)."""
    if backend is None:
        backend = SerialBackend()
    elif isinstance(backend, str):
        backend = make_backend(backend)

    specs = list(specs)
    batch_stats = CacheStats()
    records: List[Optional[Record]] = [None] * len(specs)
    for index, record, _from_cache in iter_jobs(
        specs, backend=backend, cache=cache, stats=batch_stats,
        cost_book=cost_book, batch=batch,
    ):
        records[index] = record
    executed = batch_stats.misses if cache is not None else len(set(specs))
    return BatchResult(
        records=[r for r in records if r is not None],
        cache_stats=batch_stats,
        backend=getattr(backend, "name", type(backend).__name__),
        executed=executed,
    )
