"""Pluggable batch-execution backends behind one ``run_jobs`` API.

``run_jobs(specs)`` is the single entry point the CLI, the sweeps
front-end, and the benchmarks use to execute work:

1. every spec's cache key is derived (graph fingerprint + config
   digest; fingerprints are memoized per graph within the batch);
2. cache hits are answered immediately;
3. the misses are dispatched to the chosen backend --
   :class:`SerialBackend` runs them in-process, while
   :class:`ProcessPoolBackend` fans them over a
   :class:`concurrent.futures.ProcessPoolExecutor` with chunked
   dispatch;
4. fresh records are stored back and the full result list is returned
   in the order of the input specs.

Records are flat primitive dicts (see :mod:`repro.runtime.jobs`), so
backends are interchangeable: the same batch yields byte-identical
aggregates whether it ran serially or on a pool.  Per-job randomness is
carried entirely by ``spec.seed`` (workers derive their streams via
:mod:`repro.runtime.seeding`), never by process-global state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .cache import CacheStats, KeyDeriver, ResultCache
from .jobs import JobSpec, Record, run_job


class SerialBackend:
    """Runs every job in the calling process, one at a time."""

    name = "serial"
    # In-process execution profits from prebuilt graph objects: every
    # job on the same graph then shares one instance -- and therefore
    # one compiled simulator topology (see repro.congest.topology).
    wants_graph_hints = True

    def run(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
    ) -> List[Record]:
        if graphs is None:
            return [run_job(spec) for spec in specs]
        # Reuse graphs the caller already built (e.g. for fingerprinting).
        return [run_job(spec, graph) for spec, graph in zip(specs, graphs)]


class ProcessPoolBackend:
    """Fans jobs over a process pool with chunked dispatch.

    Args:
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of jobs.
        chunksize: jobs handed to a worker per dispatch; ``None`` picks
            ``ceil(len(jobs) / (4 * workers))`` so each worker sees a few
            chunks (amortizing pickling) while keeping the tail balanced.
    """

    name = "process"
    # Workers regenerate graphs from specs; prebuilding in the parent
    # would be wasted work, so run_jobs skips the hint for this backend.
    wants_graph_hints = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ):
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(
        self,
        specs: Sequence[JobSpec],
        graphs: Optional[Sequence] = None,
    ) -> List[Record]:
        # *graphs* is accepted for interface parity but ignored: workers
        # regenerate inputs from the spec, which is cheaper than pickling
        # whole graphs across the process boundary.
        if not specs:
            return []
        # Lazy import: keep module import cheap and fork-safe contexts
        # selectable by the caller's environment.
        from concurrent.futures import ProcessPoolExecutor

        workers = self.max_workers or min(len(specs), os.cpu_count() or 1)
        workers = max(1, min(workers, len(specs)))
        if workers == 1:
            return SerialBackend().run(specs)
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(specs) // (4 * workers)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves input order, so cached and fresh records
            # interleave deterministically regardless of worker timing.
            return list(pool.map(run_job, specs, chunksize=chunksize))


BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
}
"""Backend registry used by the CLI's ``--backend`` flag."""


def make_backend(name: str, **kwargs):
    """Instantiate a backend by registry name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return factory(**kwargs)


def _graph_hints(specs: Sequence[JobSpec]) -> List:
    """Build each distinct input graph once and map it onto *specs*.

    Mirrors the cache layer's per-batch graph memo for cache-less runs:
    specs that share graph coordinates (family/far, n, effective graph
    seed) receive the *same* graph object, so downstream consumers --
    most importantly the simulator's per-graph compiled-topology memo --
    only pay the derivation once per distinct topology.
    """
    built: Dict = {}
    hints = []
    for spec in specs:
        key = spec.graph_coordinates
        graph = built.get(key)
        if graph is None:
            graph = built[key] = spec.build_graph()
        hints.append(graph)
    return hints


@dataclass
class BatchResult:
    """Outcome of one :func:`run_jobs` call.

    Attributes:
        records: one record per input spec, in input order.
        cache_stats: snapshot of this batch's hits/misses (hits are
            lookups answered from the cache *in this call*).
        backend: name of the backend that ran the misses.
        executed: number of jobs actually executed (= misses).
    """

    records: List[Record]
    cache_stats: CacheStats
    backend: str
    executed: int

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def run_jobs(
    specs: Sequence[JobSpec],
    backend=None,
    cache: Optional[ResultCache] = None,
) -> BatchResult:
    """Execute *specs*, serving repeats from *cache*.

    Args:
        specs: job specs; duplicates within the batch are executed once.
        backend: a backend instance or registry name; defaults to
            :class:`SerialBackend`.
        cache: a :class:`ResultCache`; ``None`` disables caching (every
            spec executes).

    Returns:
        A :class:`BatchResult` with one record per spec, in input order.
    """
    if backend is None:
        backend = SerialBackend()
    elif isinstance(backend, str):
        backend = make_backend(backend)

    specs = list(specs)
    batch_stats = CacheStats()
    records: List[Optional[Record]] = [None] * len(specs)

    if cache is None:
        # No cache: still deduplicate identical specs within the batch.
        unique: Dict[JobSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            unique.setdefault(spec, []).append(index)
        ordered = list(unique)
        if getattr(backend, "wants_graph_hints", False):
            fresh = backend.run(ordered, graphs=_graph_hints(ordered))
        else:
            fresh = backend.run(ordered)
        for spec, record in zip(ordered, fresh):
            for index in unique[spec]:
                records[index] = dict(record)
        return BatchResult(
            records=[r for r in records if r is not None],
            cache_stats=batch_stats,
            backend=getattr(backend, "name", type(backend).__name__),
            executed=len(ordered),
        )

    deriver = KeyDeriver()
    keys = [deriver.key_for(spec) for spec in specs]
    miss_indices: List[int] = []
    pending: Dict[str, List[int]] = {}
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if key in pending:
            # Duplicate within the batch: piggyback on the first miss.
            pending[key].append(index)
            batch_stats.hits += 1
            continue
        hit = cache.lookup(key)
        if hit is not None:
            records[index] = hit
            batch_stats.hits += 1
        else:
            batch_stats.misses += 1
            miss_indices.append(index)
            pending[key] = [index]

    miss_specs = [specs[i] for i in miss_indices]
    miss_graphs = [deriver.graph_for(spec) for spec in miss_specs]
    if getattr(backend, "wants_graph_hints", False):
        # Coordinate-keyed derivers never build graphs; fill the gaps so
        # in-process misses still share one instance (and one compiled
        # topology) per distinct input.
        built: Dict = {}
        for position, (spec, graph) in enumerate(zip(miss_specs, miss_graphs)):
            if graph is None:
                key = spec.graph_coordinates
                graph = built.get(key)
                if graph is None:
                    graph = built[key] = spec.build_graph()
                miss_graphs[position] = graph
    fresh = backend.run(miss_specs, graphs=miss_graphs)
    for index, record in zip(miss_indices, fresh):
        cache.store(keys[index], record)
        batch_stats.stores += 1
        for dup_index in pending[keys[index]]:
            records[dup_index] = dict(record)

    return BatchResult(
        records=[r for r in records if r is not None],
        cache_stats=batch_stats,
        backend=getattr(backend, "name", type(backend).__name__),
        executed=len(miss_indices),
    )
