"""Parameter-grid sweeps over the batch runtime.

A :class:`SweepSpec` is a cartesian grid: one job *kind*, plus lists of
graph coordinates (families or far families, sizes, seeds) and
kind-specific parameters (epsilons, methods, ...).  ``expand()`` unrolls
the grid into :class:`~repro.runtime.jobs.JobSpec` objects in a
deterministic order; :func:`run_sweep` executes them on any backend and
wraps the records in a :class:`SweepResult` that renders
:class:`~repro.analysis.tables.Table` views and summary statistics.

This is the layer the benchmarks (E01/E03/E04) and the CLI's ``sweep``
subcommand sit on; anything that used to hand-roll nested ``for`` loops
over ``make_planar`` + ``test_planarity`` goes through here instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import Table
from .cache import ResultCache
from .executor import BatchResult, run_jobs
from .jobs import JobSpec, Record


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian parameter grid for one job kind.

    Attributes:
        kind: registered job kind.
        families: planar families to sweep (ignored for far jobs when
            *fars* is non-empty).
        fars: far-from-planar families to sweep; when non-empty these
            are swept *instead of* ``families``.
        ns: graph sizes.
        seeds: master seeds.
        params: mapping from config knob to the list of values to sweep
            (e.g. ``{"epsilon": [0.5, 0.1]}``); scalars are promoted to
            one-element lists.
    """

    kind: str
    families: Tuple[str, ...] = ("delaunay",)
    fars: Tuple[str, ...] = ()
    ns: Tuple[int, ...] = (500,)
    seeds: Tuple[int, ...] = (0,)
    params: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    @classmethod
    def make(
        cls,
        kind: str,
        families: Sequence[str] = ("delaunay",),
        fars: Sequence[str] = (),
        ns: Sequence[int] = (500,),
        seeds: Sequence[int] = (0,),
        **params: Any,
    ) -> "SweepSpec":
        """Build a spec; scalar *params* values become singleton axes."""
        axes = tuple(
            (key, tuple(value) if isinstance(value, (list, tuple)) else (value,))
            for key, value in sorted(params.items())
        )
        return cls(
            kind=kind,
            families=tuple(families),
            fars=tuple(fars),
            ns=tuple(int(n) for n in ns),
            seeds=tuple(int(s) for s in seeds),
            params=axes,
        )

    @property
    def size(self) -> int:
        """Number of jobs the grid expands to."""
        graphs = len(self.fars) or len(self.families)
        total = graphs * len(self.ns) * len(self.seeds)
        for _key, values in self.params:
            total *= len(values)
        return total

    def expand(self) -> List[JobSpec]:
        """Unroll the grid into job specs (deterministic order).

        Axis order is graphs (outermost), then n, then each param axis
        in sorted-key order, then seeds (innermost) -- so repeated-trial
        seeds for one configuration are adjacent, which keeps chunked
        process-pool dispatch cache-friendly.
        """
        graph_axis: List[Tuple[Optional[str], Optional[str]]]
        if self.fars:
            graph_axis = [(None, far) for far in self.fars]
        else:
            graph_axis = [(family, None) for family in self.families]
        param_keys = [key for key, _values in self.params]
        param_values = [values for _key, values in self.params]
        specs: List[JobSpec] = []
        for (family, far), n in itertools.product(graph_axis, self.ns):
            for combo in itertools.product(*param_values):
                config = dict(zip(param_keys, combo))
                for seed in self.seeds:
                    specs.append(
                        JobSpec.make(
                            self.kind,
                            family=family or "delaunay",
                            far=far,
                            n=n,
                            seed=seed,
                            **config,
                        )
                    )
        return specs


@dataclass
class SweepResult:
    """Records of one executed sweep plus aggregation helpers."""

    spec: SweepSpec
    batch: BatchResult
    records: List[Record] = field(default_factory=list)

    def __post_init__(self):
        if not self.records:
            self.records = list(self.batch.records)

    def column(self, name: str) -> List[Any]:
        """All values of one record field, in record order."""
        return [record.get(name) for record in self.records]

    def to_table(
        self,
        title: str,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        """Render the records as an :class:`analysis.tables.Table`.

        Args:
            title: table title.
            columns: record fields to show; defaults to the union of the
                record keys in first-seen order.
        """
        if columns is None:
            columns = []
            for record in self.records:
                for key in record:
                    if key not in columns:
                        columns.append(key)
        table = Table(title, list(columns))
        for record in self.records:
            table.add_row(*(record.get(col, "-") for col in columns))
        return table

    def summary(self) -> Dict[str, Any]:
        """Batch-level summary: counts, acceptance, round aggregates."""
        rounds = [r for r in self.column("rounds") if isinstance(r, (int, float))]
        accepted = [a for a in self.column("accepted") if isinstance(a, bool)]
        summary: Dict[str, Any] = {
            "jobs": len(self.records),
            "executed": self.batch.executed,
            "cache_hits": self.batch.cache_stats.hits,
            "cache_hit_rate": self.batch.cache_stats.hit_rate,
            "backend": self.batch.backend,
        }
        if rounds:
            summary["rounds_min"] = min(rounds)
            summary["rounds_max"] = max(rounds)
            summary["rounds_mean"] = sum(rounds) / len(rounds)
        if accepted:
            summary["accept_rate"] = sum(accepted) / len(accepted)
        return summary


def run_sweep(
    spec: SweepSpec,
    backend=None,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """Expand *spec* and execute it via :func:`repro.runtime.run_jobs`."""
    batch = run_jobs(spec.expand(), backend=backend, cache=cache)
    return SweepResult(spec=spec, batch=batch)
