"""Parameter-grid sweeps and the sharded sweep orchestrator.

A :class:`SweepSpec` is a cartesian grid: one job *kind*, plus lists of
graph coordinates (families or far families, sizes, seeds) and
kind-specific parameters (epsilons, methods, ...).  ``expand()`` unrolls
the grid into :class:`~repro.runtime.jobs.JobSpec` objects in a
deterministic order; :func:`run_sweep` executes them on any backend and
wraps the records in a :class:`SweepResult` that renders
:class:`~repro.analysis.tables.Table` views and summary statistics.

Sweeps **shard**: :class:`ShardedSweep` splits a grid into ``k``
deterministic pieces -- by a stable key-hash of each job's canonical
encoding (``balance="hash"``), or by measured job cost
(``balance="cost"``: LPT over the scheduler's learned per-kind/per-n
wall-times, hash fallback while there is no history) -- so independent
orchestrator processes (CI legs, machines in a fleet) each run
``--shard i/k`` against one shared on-disk store and a final
``merge()`` -- or simply a full ``--resume`` run, which is then a 100%
cache hit -- reassembles the grid in canonical expansion order.
``resume=True`` certifies a cache is attached and reruns only the keys
the store is missing (the executor's hit path skips even graph
generation under the default coordinate keys).  Runs with a disk store
automatically feed their wall-times back into the cost table
(:class:`~repro.runtime.scheduler.CostBook`), so balance improves as
history accrues.

This is the layer the benchmarks (E01-E16) and the CLI's ``sweep``
subcommand sit on; anything that used to hand-roll nested ``for`` loops
over ``make_planar`` + ``test_planarity`` goes through here instead.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.tables import Table
from ..telemetry.metrics import get_metrics
from ..telemetry.spans import TRACE_PARENT_ENV_VAR, get_tracer
from .batching import auto_batch_size
from .cache import CacheStats, ResultCache
from .config import RunConfig, warn_deprecated_kwarg
from .executor import BatchResult, _run_jobs, iter_jobs, make_backend, run_jobs
from .jobs import JobSpec, Record
from .scheduler import CostBook, CostModel, assign_shards


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian parameter grid for one job kind.

    Attributes:
        kind: registered job kind.
        families: planar families to sweep (ignored for far jobs when
            *fars* is non-empty).
        fars: far-from-planar families to sweep; when non-empty these
            are swept *instead of* ``families``.
        ns: graph sizes.
        seeds: master seeds.
        params: mapping from config knob to the list of values to sweep
            (e.g. ``{"epsilon": [0.5, 0.1]}``); scalars are promoted to
            one-element lists.
    """

    kind: str
    families: Tuple[str, ...] = ("delaunay",)
    fars: Tuple[str, ...] = ()
    ns: Tuple[int, ...] = (500,)
    seeds: Tuple[int, ...] = (0,)
    params: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    @classmethod
    def make(
        cls,
        kind: str,
        families: Sequence[str] = ("delaunay",),
        fars: Sequence[str] = (),
        ns: Sequence[int] = (500,),
        seeds: Sequence[int] = (0,),
        **params: Any,
    ) -> "SweepSpec":
        """Build a spec; scalar *params* values become singleton axes."""
        axes = tuple(
            (key, tuple(value) if isinstance(value, (list, tuple)) else (value,))
            for key, value in sorted(params.items())
        )
        return cls(
            kind=kind,
            families=tuple(families),
            fars=tuple(fars),
            ns=tuple(int(n) for n in ns),
            seeds=tuple(int(s) for s in seeds),
            params=axes,
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict encoding (inverse of :meth:`from_payload`).

        This is what travels inside a service ``submit`` frame: plain
        lists and primitives only, so any codec (JSON, the binary wire
        format) can carry it and the server reconstructs an identical
        grid -- ``SweepSpec.from_payload(s.to_payload()) == s``.
        """
        return {
            "kind": self.kind,
            "families": list(self.families),
            "fars": list(self.fars),
            "ns": list(self.ns),
            "seeds": list(self.seeds),
            "params": [[key, list(values)] for key, values in self.params],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_payload` output."""
        return cls(
            kind=payload["kind"],
            families=tuple(payload.get("families", ())),
            fars=tuple(payload.get("fars", ())),
            ns=tuple(int(n) for n in payload.get("ns", ())),
            seeds=tuple(int(s) for s in payload.get("seeds", ())),
            params=tuple(
                (key, tuple(values))
                for key, values in payload.get("params", ())
            ),
        )

    @property
    def size(self) -> int:
        """Number of jobs the grid expands to."""
        graphs = len(self.fars) or len(self.families)
        total = graphs * len(self.ns) * len(self.seeds)
        for _key, values in self.params:
            total *= len(values)
        return total

    def expand(self) -> List[JobSpec]:
        """Unroll the grid into job specs (deterministic order).

        Axis order is graphs (outermost), then n, then each param axis
        in sorted-key order, then seeds (innermost) -- so repeated-trial
        seeds for one configuration are adjacent, which keeps chunked
        process-pool dispatch cache-friendly.
        """
        graph_axis: List[Tuple[Optional[str], Optional[str]]]
        if self.fars:
            graph_axis = [(None, far) for far in self.fars]
        else:
            graph_axis = [(family, None) for family in self.families]
        param_keys = [key for key, _values in self.params]
        param_values = [values for _key, values in self.params]
        specs: List[JobSpec] = []
        for (family, far), n in itertools.product(graph_axis, self.ns):
            for combo in itertools.product(*param_values):
                config = dict(zip(param_keys, combo))
                for seed in self.seeds:
                    specs.append(
                        JobSpec.make(
                            self.kind,
                            family=family or "delaunay",
                            far=far,
                            n=n,
                            seed=seed,
                            **config,
                        )
                    )
        return specs


def job_shard(spec: JobSpec, shards: int) -> int:
    """Deterministic shard assignment by key-hash of the canonical spec.

    Stable across processes, Python versions, and hash randomization
    (SHA-256 over :meth:`JobSpec.canonical`), so every orchestrator
    partitions a grid identically without coordination.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    digest = hashlib.sha256(spec.canonical().encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass(frozen=True)
class ShardedSweep:
    """A :class:`SweepSpec` split into ``shards`` deterministic pieces.

    Shards partition the expanded grid by :func:`job_shard` (the
    default key-hash split) or, with ``balance="cost"``, by the
    scheduler's LPT assignment over measured job costs
    (:func:`~repro.runtime.scheduler.assign_shards`; falls back to the
    hash split while the cost table is empty).  Each shard can run
    (and resume) independently -- on another process, another machine,
    another CI leg -- against one shared cache store, and
    :meth:`merge` reassembles per-shard results into canonical
    expansion order.  Keep the *same* cost table across a fleet's legs
    for a consistent partition; mismatched tables at worst overlap
    (cache hits) or leave gaps a final ``--resume`` fills.
    """

    spec: SweepSpec
    shards: int = 2
    balance: str = "hash"
    cost_model: Optional[CostModel] = None

    def __post_init__(self):
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.balance not in ("hash", "cost"):
            raise ValueError(
                f"balance must be 'hash' or 'cost', got {self.balance!r}"
            )

    def assignments(self) -> List[int]:
        """Shard index per expanded spec, in canonical expansion order."""
        specs = self.spec.expand()
        if self.balance == "cost":
            return assign_shards(specs, self.shards, model=self.cost_model)
        return [job_shard(spec, self.shards) for spec in specs]

    def shard_specs(self, index: int) -> List[JobSpec]:
        """The expansion-ordered job specs belonging to shard *index*."""
        if not 0 <= index < self.shards:
            raise ValueError(
                f"shard index {index} out of range 0..{self.shards - 1}"
            )
        return [
            spec
            for spec, shard in zip(self.spec.expand(), self.assignments())
            if shard == index
        ]

    def run_shard(
        self,
        index: int,
        backend=None,
        cache: Optional[ResultCache] = None,
    ) -> "SweepResult":
        """Execute one shard; the result covers only that shard's jobs."""
        batch = run_jobs(self.shard_specs(index), backend=backend, cache=cache)
        return SweepResult(spec=self.spec, batch=batch)

    def merge(self, results: Sequence["SweepResult"]) -> "SweepResult":
        """Reassemble per-shard results into canonical expansion order.

        *results* must hold one :class:`SweepResult` per shard, in
        shard-index order (each as returned by :meth:`run_shard`).
        """
        if len(results) != self.shards:
            raise ValueError(
                f"expected {self.shards} shard results, got {len(results)}"
            )
        queues = [list(result.records) for result in results]
        cursors = [0] * self.shards
        merged: List[Record] = []
        assignments = self.assignments()
        for spec, shard in zip(self.spec.expand(), assignments):
            cursor = cursors[shard]
            if cursor >= len(queues[shard]):
                raise ValueError(
                    f"shard {shard} is short {spec.kind!r} records; "
                    "was it run against this grid?"
                )
            merged.append(queues[shard][cursor])
            cursors[shard] = cursor + 1
        stats = _merge_stats(result.batch.cache_stats for result in results)
        batch = BatchResult(
            records=merged,
            cache_stats=stats,
            backend=results[0].batch.backend if results else "serial",
            executed=sum(result.batch.executed for result in results),
        )
        return SweepResult(spec=self.spec, batch=batch)


def _merge_stats(stats: Iterable) -> "CacheStats":
    from .cache import CacheStats

    merged = CacheStats()
    for item in stats:
        merged.hits += item.hits
        merged.misses += item.misses
        merged.stores += item.stores
        merged.evictions += item.evictions
        merged.disk_hits += item.disk_hits
    return merged


@dataclass
class SweepResult:
    """Records of one executed sweep plus aggregation helpers."""

    spec: SweepSpec
    batch: BatchResult
    records: List[Record] = field(default_factory=list)

    def __post_init__(self):
        if not self.records:
            self.records = list(self.batch.records)

    def column(self, name: str) -> List[Any]:
        """All values of one record field, in record order."""
        return [record.get(name) for record in self.records]

    def to_table(
        self,
        title: str,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        """Render the records as an :class:`analysis.tables.Table`.

        Args:
            title: table title.
            columns: record fields to show; defaults to the union of the
                record keys in first-seen order.
        """
        if columns is None:
            columns = []
            for record in self.records:
                for key in record:
                    if key not in columns:
                        columns.append(key)
        table = Table(title, list(columns))
        for record in self.records:
            table.add_row(*(record.get(col, "-") for col in columns))
        return table

    def summary(self) -> Dict[str, Any]:
        """Batch-level summary: counts, acceptance, round aggregates."""
        rounds = [r for r in self.column("rounds") if isinstance(r, (int, float))]
        accepted = [a for a in self.column("accepted") if isinstance(a, bool)]
        summary: Dict[str, Any] = {
            "jobs": len(self.records),
            "executed": self.batch.executed,
            "cache_hits": self.batch.cache_stats.hits,
            "cache_hit_rate": self.batch.cache_stats.hit_rate,
            "backend": self.batch.backend,
        }
        if rounds:
            summary["rounds_min"] = min(rounds)
            summary["rounds_max"] = max(rounds)
            summary["rounds_mean"] = sum(rounds) / len(rounds)
        if accepted:
            summary["accept_rate"] = sum(accepted) / len(accepted)
        return summary


def _set_env(name: str, value: Optional[str]) -> None:
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value


def run_sweep(
    spec: SweepSpec,
    backend=None,
    cache: Optional[ResultCache] = None,
    shard: Optional[Tuple[int, int]] = None,
    resume: bool = False,
    balance: str = "hash",
    cost_model: Optional[CostModel] = None,
    progress=None,
    batch: Union[int, str, None] = None,
    batch_waste: Optional[float] = None,
    config: Optional[RunConfig] = None,
) -> SweepResult:
    """Expand *spec* and execute it via :func:`repro.runtime.run_jobs`.

    Args:
        spec: the grid to run.
        backend / cache: as :func:`~repro.runtime.run_jobs`.
        shard: ``(index, count)`` restricts execution to one
            deterministic shard of the grid (see :class:`ShardedSweep`);
            the result covers only that shard's jobs.
        resume: certify this is a continuation run: requires *cache*
            (otherwise nothing could have survived the earlier run) and
            executes only the keys the cache is missing -- which is the
            executor's normal hit path, so a completed sweep resumes as
            a 100% hit with zero graph generations under coordinate
            keys.
        balance: shard placement policy: ``"hash"`` (key-hash counts)
            or ``"cost"`` (LPT over measured wall-times; falls back to
            hash while the cost table is empty).
        cost_model: explicit :class:`~repro.runtime.scheduler.CostModel`
            for ``balance="cost"``; defaults to the history in the
            cache's disk store.
        progress: optional
            :class:`~repro.telemetry.dashboard.SweepProgress` fed one
            update per landing record (the CLI's ``--progress`` live
            line); switches execution to the streaming
            :func:`~repro.runtime.iter_jobs` path.
        batch: deprecated -- pass ``config=RunConfig(sim_batch=...)``
            instead.  Still honored (it wins over *config*) but emits
            a :class:`DeprecationWarning`.
        batch_waste: deprecated -- pass
            ``config=RunConfig(sim_batch_waste=...)`` instead.  Still
            honored (it wins over *config*) with a
            :class:`DeprecationWarning`.
        config: optional :class:`~repro.runtime.config.RunConfig`.
            Its ``sim_batch`` knob (arg > env > default) sets the
            coalescing limit: an int caps graph-batched
            ``simulate_batch`` jobs at that many member trials (1
            disables), ``"auto"`` sizes batches from the store's
            measured per-trial wall-times so one batch job lands near
            :data:`~repro.runtime.batching.AUTO_TARGET_SECONDS` of
            work (fixed default without history); batching is
            transparent either way -- records, cache state, and cost
            accounting stay per-trial on every backend.  Its
            ``sim_batch_waste`` knob bounds the padding waste of
            ragged batches.  Every *explicitly set* knob is exported
            to the environment for the sweep's duration, so pool
            forks and same-host workers resolve the run identically.

    Runs with a disk store feed their measured wall-times back into
    the store's metadata shard, so later ``balance="cost"`` splits
    have history to work from.  With telemetry enabled
    (:mod:`repro.telemetry`) the whole batch runs under a ``sweep``
    span (plus a nested ``shard`` span for sharded legs) whose id is
    exported as ``REPRO_TRACE_PARENT`` for the duration, so every
    backend's job spans -- including remote workers' -- link under it
    in the merged trace.
    """
    if batch is not None:
        warn_deprecated_kwarg("run_sweep", "batch", "sim_batch")
    if batch_waste is not None:
        warn_deprecated_kwarg("run_sweep", "batch_waste", "sim_batch_waste")
    if config is None:
        config = RunConfig()
    # Deprecated kwargs win over *config*; a plain config defers to the
    # environment, matching the pre-RunConfig behavior exactly.
    batch_limit = batch if batch is not None else config.resolve("sim_batch")
    if resume and cache is None:
        raise ValueError(
            "resume=True needs a cache (e.g. ResultCache(disk_dir=...)); "
            "without one there is nothing to resume from"
        )
    if isinstance(backend, str):
        backend = make_backend(backend)
    store = cache.store_backend if cache is not None else None
    if shard is not None:
        index, count = shard
        if balance == "cost" and cost_model is None:
            cost_model = CostModel.from_store(store)
        specs = ShardedSweep(
            spec, count, balance=balance, cost_model=cost_model
        ).shard_specs(index)
    else:
        specs = spec.expand()
    if isinstance(batch_limit, str) and batch_limit.strip().lower() == "auto":
        # Cost-aware sizing: the store's metadata shard holds measured
        # per-trial wall-times from earlier runs of this grid.
        auto_model = cost_model or CostModel.from_store(store)
        batch_limit = auto_batch_size(auto_model, specs)
    backend_name = (
        getattr(backend, "name", type(backend).__name__)
        if backend is not None
        else "serial"
    )
    cost_book = CostBook(store) if store is not None else None
    tracer = get_tracer()
    if cost_book is not None and tracer.enabled:
        # Attach the pre-sweep model: every observation then feeds the
        # predicted-vs-actual error histogram (scheduler.cost_rel_error).
        cost_book.model = CostModel.from_store(store)
    with ExitStack() as stack:
        # Exported knobs (and the deprecated batch_waste below, which
        # wins by being applied after) are restored on exit, so nested
        # sweeps with different configs stay coherent.
        stack.enter_context(config.export())
        if batch_waste is not None:
            from ..congest.batch import WASTE_ENV_VAR, resolve_pad_waste

            bound = resolve_pad_waste(batch_waste)
            # Exported (and restored on exit) so process-pool workers
            # resolve the same bound when splitting their batch jobs.
            stack.callback(
                _set_env, WASTE_ENV_VAR, os.environ.get(WASTE_ENV_VAR)
            )
            os.environ[WASTE_ENV_VAR] = repr(bound)
        sweep_span = stack.enter_context(
            tracer.span(
                "sweep", kind=spec.kind, jobs=len(specs), backend=backend_name
            )
        )
        if shard is not None:
            stack.enter_context(
                tracer.span(
                    "shard", index=shard[0], count=shard[1], balance=balance
                )
            )
        if tracer.enabled:
            parent_id = tracer.current_span_id()
            if parent_id:
                # Export the batch's parent span for child processes
                # (pool forks, async worker env, remote welcome frame);
                # restored on exit so nested sweeps stay coherent.
                stack.callback(
                    _set_env,
                    TRACE_PARENT_ENV_VAR,
                    os.environ.get(TRACE_PARENT_ENV_VAR),
                )
                os.environ[TRACE_PARENT_ENV_VAR] = parent_id
        try:
            if progress is not None:
                eta_model = cost_model
                if eta_model is None and cost_book is not None:
                    eta_model = cost_book.model or CostModel.from_store(store)
                batch = _run_streaming(
                    specs, backend, cache, cost_book, progress, eta_model,
                    backend_name, batch_limit=batch_limit,
                )
            else:
                batch = _run_jobs(
                    specs, backend=backend, cache=cache,
                    cost_book=cost_book, batch=batch_limit,
                )
        finally:
            # Flush even when the batch aborts: the wall-times of every
            # job that *did* complete are exactly the history a retry's
            # cost-balanced split needs.
            if cost_book is not None:
                cost_book.flush()
        sweep_span.set(
            executed=batch.executed, hits=batch.cache_stats.hits
        )
    if tracer.enabled and tracer.trace_dir is not None:
        get_metrics().flush_to(tracer.trace_dir)
    return SweepResult(spec=spec, batch=batch)


def _run_streaming(
    specs: List[JobSpec],
    backend,
    cache: Optional[ResultCache],
    cost_book: Optional[CostBook],
    progress,
    eta_model: Optional[CostModel],
    backend_name: str,
    batch_limit: Optional[int] = None,
) -> BatchResult:
    """The ``--progress`` execution path: stream records through the
    dashboard as they land, then assemble the same :class:`BatchResult`
    :func:`~repro.runtime.run_jobs` would have returned."""
    stats = CacheStats()
    records: List[Optional[Record]] = [None] * len(specs)
    progress.start(specs, cost_model=eta_model, backend=backend)
    try:
        for index, record, from_cache in iter_jobs(
            specs, backend=backend, cache=cache, stats=stats,
            cost_book=cost_book, batch=batch_limit,
        ):
            records[index] = record
            progress.update(index, record, from_cache)
    finally:
        progress.finish()
    executed = stats.misses if cache is not None else len(set(specs))
    return BatchResult(
        records=[r for r in records if r is not None],
        cache_stats=stats,
        backend=backend_name,
        executed=executed,
    )
