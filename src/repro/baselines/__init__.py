"""Baselines: MPX/Elkin-Neiman partition, spanner baselines, ground truth."""

from .centralized import (
    bipartiteness_ground_truth,
    cycle_freeness_ground_truth,
    planarity_ground_truth,
)
from .mpx_partition import MPXResult, mpx_partition
from .spanners import cluster_spanner, greedy_spanner

__all__ = [
    "MPXResult",
    "bipartiteness_ground_truth",
    "cluster_spanner",
    "cycle_freeness_ground_truth",
    "greedy_spanner",
    "mpx_partition",
    "planarity_ground_truth",
]
