"""Centralized ground-truth baselines.

The distributed testers are compared against exact, centralized
decisions: planarity from the library's own LR test (cross-validated
against networkx in the test-suite), cycle-freeness and bipartiteness
from elementary graph checks.
"""

from __future__ import annotations

import networkx as nx

from ..planarity.lr_planarity import check_planarity


def planarity_ground_truth(graph: nx.Graph) -> bool:
    """Exact planarity decision (LR algorithm)."""
    return check_planarity(graph).is_planar


def cycle_freeness_ground_truth(graph: nx.Graph) -> bool:
    """Exact forest decision: ``m == n - #components``."""
    return graph.number_of_edges() == (
        graph.number_of_nodes() - nx.number_connected_components(graph)
    )


def bipartiteness_ground_truth(graph: nx.Graph) -> bool:
    """Exact bipartiteness decision (BFS 2-coloring)."""
    return nx.is_bipartite(graph)
