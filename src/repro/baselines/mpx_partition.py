"""Exponential-shift clustering baseline (Miller-Peng-Xu / Elkin-Neiman).

The paper remarks (Section 1.1) that the partition of Elkin and Neiman
[12], as adapted in [13, 14], yields parts of diameter ``O(log n / eps)``
with at most ``eps * m`` cut edges w.h.p., giving an alternative Stage I
that costs ``O(log^2 n * poly(1/eps))`` rounds overall.  This module
implements that baseline via the classic exponential-shift clustering:

* every node draws ``delta_u ~ Exp(beta)``;
* node ``v`` joins the cluster of the center maximizing
  ``delta_u - d(u, v)``;
* each edge is cut with probability ``O(beta)`` and cluster radii are
  ``O(log n / beta)`` w.h.p.

With ``beta = eps`` this is the ablation partner of Stage I in benchmark
E12: its round cost scales with the cluster radius ``O(log n / eps)``
(each BFS level is one round), whereas Stage I pays
``O(log n * poly(1/eps))`` with the ``log n`` factor *per phase* but only
``O(log 1/eps)`` phases.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional

import networkx as nx

from ..errors import GraphInputError
from ..graphs.utils import require_simple
from ..partition.parts import Part, Partition, build_part


@dataclass
class MPXResult:
    """Exponential-shift clustering outcome.

    Attributes:
        partition: the clusters as a rooted :class:`Partition`.
        rounds: CONGEST round cost: the maximal start delay plus the
            maximal cluster depth plus one announcement round (each BFS
            wavefront level is one round in the standard implementation).
        max_shift: the largest exponential shift drawn.
        beta: the rate parameter used.
    """

    partition: Partition
    rounds: int
    max_shift: float
    beta: float

    @property
    def cut_size(self) -> int:
        """Number of inter-cluster edges."""
        return self.partition.cut_size()


def mpx_partition(
    graph: nx.Graph,
    beta: float,
    seed: Optional[int] = None,
) -> MPXResult:
    """Cluster *graph* with exponential shifts of rate *beta*.

    Every edge is cut with probability at most ``beta`` (in expectation
    ``E[cut] <= beta * m``), and every cluster has radius
    ``O(log(n)/beta)`` with high probability.
    """
    require_simple(graph, "mpx_partition input")
    if not 0 < beta <= 1:
        raise GraphInputError(f"beta must be in (0, 1], got {beta}")
    rng = random.Random(seed)
    shifts: Dict[Any, float] = {
        v: rng.expovariate(beta) for v in sorted(graph.nodes(), key=repr)
    }
    # Multi-source Dijkstra on keys d(u, v) - delta_u; ties broken by
    # center id for determinism.
    best_key: Dict[Any, float] = {}
    owner: Dict[Any, Any] = {}
    predecessor: Dict[Any, Optional[Any]] = {}
    heap = []
    for v in graph.nodes():
        key = -shifts[v]
        best_key[v] = key
        owner[v] = v
        predecessor[v] = None
        heapq.heappush(heap, (key, repr(v), v, v, None))
    settled = set()
    while heap:
        key, _tie, v, center, pred = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        owner[v] = center
        predecessor[v] = pred
        for w in graph.adj[v]:
            if w in settled:
                continue
            new_key = key + 1.0
            if new_key < best_key[w] - 1e-12:
                best_key[w] = new_key
                heapq.heappush(heap, (new_key, repr(center), w, center, v))

    clusters: Dict[Any, list] = {}
    for v in graph.nodes():
        clusters.setdefault(owner[v], []).append(v)
    parts = []
    max_depth = 0
    for center, members in clusters.items():
        tree_edges = [
            (v, predecessor[v]) for v in members if predecessor[v] is not None
        ]
        part = build_part(center, members, tree_edges)
        max_depth = max(max_depth, part.height)
        parts.append(part)
    partition = Partition(graph, parts)
    max_shift = max(shifts.values()) if shifts else 0.0
    rounds = int(math.ceil(max_shift)) + max_depth + 1
    return MPXResult(
        partition=partition, rounds=rounds, max_shift=max_shift, beta=beta
    )
