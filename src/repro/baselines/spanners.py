"""Baseline spanner constructions for the Corollary 17 comparison.

* :func:`cluster_spanner`: Elkin-Neiman-flavoured baseline -- MPX
  exponential-shift clusters' BFS trees plus one edge per adjacent
  cluster pair.  Stretch ``O(log n / beta)``; size ``n - k + #adjacent
  cluster pairs``.
* :func:`greedy_spanner`: the classic Althofer et al. greedy
  ``(2k-1)``-spanner: scan edges, keep an edge iff the current spanner
  distance between its endpoints exceeds the stretch budget.  Size
  ``O(n^{1+1/k})``; the strongest sequential size baseline (but not a
  distributed algorithm).

Both constructions accept an optional precompiled
:class:`~repro.congest.topology.CompiledTopology` of the input graph;
when given, the spanner comes back as a
:class:`~repro.applications.dense.DenseSpanner` (flat CSR-ready edge
arrays over the topology's index space) instead of a networkx graph,
so the E10 baseline column feeds the vectorized
:func:`~repro.applications.spanner.measure_stretch` directly without
re-converting the graph per trial.  The edge *set* is identical either
way -- the greedy scan order stays ``sorted(graph.edges(), key=repr)``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import networkx as nx

from ..errors import GraphInputError
from ..graphs.utils import require_simple
from ..partition.auxiliary import AuxiliaryGraph
from .mpx_partition import MPXResult, mpx_partition


def _to_dense_spanner(spanner: nx.Graph, topology):
    """Re-index an nx spanner as a DenseSpanner over *topology*."""
    import numpy as np

    from ..applications.dense import DenseSpanner

    index = topology.index
    count = spanner.number_of_edges()
    su = np.fromiter(
        (index[u] for u, _ in spanner.edges()), dtype=np.int64, count=count
    )
    sv = np.fromiter(
        (index[v] for _, v in spanner.edges()), dtype=np.int64, count=count
    )
    return DenseSpanner(topology, su, sv)


def cluster_spanner(
    graph: nx.Graph,
    beta: float,
    seed: Optional[int] = None,
    topology=None,
):
    """MPX-cluster spanner; returns (spanner, MPXResult).

    With *topology* (the graph's compiled topology) the spanner is a
    :class:`~repro.applications.dense.DenseSpanner` over its index
    space; otherwise a networkx graph.  Same edge set either way.
    """
    result = mpx_partition(graph, beta=beta, seed=seed)
    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes())
    for part in result.partition.parts.values():
        spanner.add_edges_from(part.tree_edges())
    aux = AuxiliaryGraph(result.partition)
    for edge in aux.edges():
        u, v = edge.connector
        spanner.add_edge(u, v)
    if topology is not None:
        return _to_dense_spanner(spanner, topology), result
    return spanner, result


def _bounded_distance(spanner: nx.Graph, source, target, limit: int) -> bool:
    """True iff ``d_spanner(source, target) <= limit`` (bounded BFS)."""
    if source == target:
        return True
    seen = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        d = seen[v]
        if d >= limit:
            continue
        for w in spanner.adj[v]:
            if w == target:
                return True
            if w not in seen:
                seen[w] = d + 1
                queue.append(w)
    return False


def greedy_spanner(graph: nx.Graph, stretch: int, topology=None):
    """Althofer et al. greedy *stretch*-spanner (stretch must be odd >= 1).

    Guarantees exact multiplicative stretch on every edge (hence every
    path).  Quadratic-ish running time; intended for baseline tables on
    graphs up to a few thousand nodes.  With *topology* the result is a
    :class:`~repro.applications.dense.DenseSpanner` (same edge set; the
    scan order never changes).
    """
    require_simple(graph, "greedy_spanner input")
    if stretch < 1 or stretch % 2 == 0:
        raise GraphInputError(f"stretch must be odd and >= 1, got {stretch}")
    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes())
    for u, v in sorted(graph.edges(), key=repr):
        if not _bounded_distance(spanner, u, v, stretch):
            spanner.add_edge(u, v)
    if topology is not None:
        return _to_dense_spanner(spanner, topology)
    return spanner
