"""Auxiliary contracted graphs G_i (paper Section 2.1).

Contracting every part of a partition to a single node yields the
weighted auxiliary graph ``G_i``: the weight of an auxiliary edge
``(v(P), v(Q))`` is the number of graph edges with one endpoint in P and
the other in Q.  Each auxiliary edge also carries a *designated
connector*: the concrete graph edge used when the parts merge (paper
Section 2.1.6 selects it by minimum id via a convergecast; we reproduce
that tie-breaking exactly so merges are deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

from ..graphs.utils import id_key
from .parts import Partition


@dataclass(frozen=True)
class AuxEdge:
    """One auxiliary edge with its designated connector edge in G."""

    parts: Tuple[Any, Any]  # (pid_a, pid_b), canonical order
    weight: int
    connector: Tuple[Any, Any]  # (node in pid_a, node in pid_b)


class AuxiliaryGraph:
    """The weighted contraction of a partition."""

    def __init__(self, partition: Partition):
        """Build G_i from *partition* in O(m) time."""
        self.partition = partition
        self._adj: Dict[Any, Dict[Any, int]] = {
            pid: {} for pid in partition.parts
        }
        connectors: Dict[Tuple[Any, Any], Tuple[Any, Any]] = {}
        part_of = partition.part_of
        for u, v in partition.graph.edges():
            pu, pv = part_of[u], part_of[v]
            if pu == pv:
                continue
            self._adj[pu][pv] = self._adj[pu].get(pv, 0) + 1
            self._adj[pv][pu] = self._adj[pv].get(pu, 0) + 1
            key = self._key(pu, pv)
            edge = (u, v) if key == (pu, pv) else (v, u)
            best = connectors.get(key)
            if best is None or (id_key(edge[0]), id_key(edge[1])) < (
                id_key(best[0]),
                id_key(best[1]),
            ):
                connectors[key] = edge
        self._connectors = connectors

    @staticmethod
    def _key(pa: Any, pb: Any) -> Tuple[Any, Any]:
        return (pa, pb) if id_key(pa) <= id_key(pb) else (pb, pa)

    # -- queries -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of auxiliary nodes (= parts)."""
        return len(self._adj)

    def nodes(self) -> Iterator[Any]:
        """Iterate over part ids."""
        return iter(self._adj)

    def neighbors(self, pid: Any) -> Dict[Any, int]:
        """Mapping from neighboring pid to edge weight."""
        return self._adj[pid]

    def degree(self, pid: Any) -> int:
        """Number of distinct auxiliary neighbors."""
        return len(self._adj[pid])

    def weight(self, pa: Any, pb: Any) -> int:
        """Weight of auxiliary edge (pa, pb); 0 when absent."""
        return self._adj[pa].get(pb, 0)

    def weighted_degree(self, pid: Any) -> int:
        """Total weight of auxiliary edges incident to *pid*."""
        return sum(self._adj[pid].values())

    def total_weight(self) -> int:
        """Total auxiliary edge weight = number of cut edges in G."""
        return sum(self.weighted_degree(pid) for pid in self._adj) // 2

    def edge_count(self) -> int:
        """Number of distinct auxiliary edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def connector(self, pa: Any, pb: Any) -> Tuple[Any, Any]:
        """The designated graph edge for auxiliary edge (pa, pb).

        Returned oriented as ``(node in pa, node in pb)``.
        """
        key = self._key(pa, pb)
        u, v = self._connectors[key]
        return (u, v) if key == (pa, pb) else (v, u)

    def edges(self) -> Iterator[AuxEdge]:
        """Iterate over auxiliary edges (canonical orientation)."""
        for key, connector in self._connectors.items():
            pa, pb = key
            yield AuxEdge(parts=key, weight=self._adj[pa][pb], connector=connector)

    def edge_parts(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over auxiliary edges as bare ``(pid_a, pid_b)`` pairs.

        The lightweight view consumed by hot sweeps (e.g. the forest
        decomposition's orientation pass) that need neither weights nor
        connectors.
        """
        return iter(self._connectors)
