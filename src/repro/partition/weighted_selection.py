"""Theorem 4: the randomized partition for minor-free graphs.

Under a minor-free promise the arboricity of every auxiliary graph is
bounded by a constant, so the forest-decomposition verification step can
be dropped.  Instead of the heaviest out-edge of an orientation, every
auxiliary node draws an incident edge with probability proportional to
its weight, repeats ``s = Theta(log 1/delta)`` times, and keeps the
heaviest draw (the *weighted-edge selection*, paper Section 4).  Lemma 13
shows the selected pseudoforest retains a ``1/(16*alpha)`` weight
fraction with probability ``1 - delta``; the merging machinery
(Cole-Vishkin + CHW marking, which tolerates pseudoforest cycles by
Claim 15) then contracts as in Stage I, giving Claim 14's per-phase decay
of ``1 - 1/(64*alpha)``.

Round cost: each draw is emulated by a uniform-edge-selection
convergecast over part trees (Section 4.1), so a phase costs
``O(poly(1/eps) * (log(1/delta) + log* n))`` rounds -- no ``log n`` term.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..congest.ledger import RoundLedger, TreeCostModel
from ..errors import PartitionError
from ..graphs.utils import id_key
from .auxiliary import AuxiliaryGraph
from .coloring import cole_vishkin_emulated, randomized_coloring_emulated
from .marking import mark_and_choose
from .parts import Partition
from .stage1 import (
    PhaseStats,
    Stage1Result,
    _charge_merging_overhead,
    merge_parts,
    resolve_engine,
)


def default_trials(delta: float, phase_budget: int) -> int:
    """Number of selection trials per phase: ``Theta(log(phases / delta))``.

    The per-phase failure budget is ``delta / phase_budget`` (union bound
    over phases); the constant in front of the logarithm is 1 here --
    Lemma 13's provable constant is ``16*alpha - 1`` but the selection is
    far better in practice, and benchmark E6 measures the realized
    success probability directly.
    """
    per_phase = max(delta / max(phase_budget, 1), 1e-9)
    return max(1, int(math.ceil(math.log2(1.0 / per_phase))))


def weighted_edge_selection(
    aux: AuxiliaryGraph,
    trials: int,
    rng: random.Random,
) -> Tuple[Dict[Any, Optional[Any]], Dict[Tuple[Any, Any], int]]:
    """Each part draws incident edges ~ weight, keeps the heaviest of s draws.

    The drawn edge becomes the part's out-edge; when both endpoints
    select the same auxiliary edge it is oriented out of the
    lexicographically smaller id (paper Section 4), keeping out-degree
    <= 1, i.e. a directed pseudoforest.
    """
    drawn: Dict[Any, Optional[Any]] = {}
    for pid in sorted(aux.nodes(), key=id_key):
        nbrs = aux.neighbors(pid)
        if not nbrs:
            drawn[pid] = None
            continue
        targets = sorted(nbrs, key=id_key)
        weights = [nbrs[t] for t in targets]
        best: Optional[Any] = None
        best_weight = -1
        for _ in range(trials):
            choice = rng.choices(targets, weights=weights, k=1)[0]
            w = nbrs[choice]
            if w > best_weight or (
                w == best_weight and (best is None or id_key(choice) < id_key(best))
            ):
                best, best_weight = choice, w
        drawn[pid] = best

    # Resolve double selections: the edge becomes the out-edge of the
    # smaller id; the larger endpoint is left without an out-edge.
    out_edge: Dict[Any, Optional[Any]] = dict(drawn)
    for pid, target in drawn.items():
        if target is None:
            continue
        if drawn.get(target) == pid and id_key(target) < id_key(pid):
            out_edge[pid] = None
    weights_out: Dict[Tuple[Any, Any], int] = {}
    for pid, target in out_edge.items():
        if target is not None:
            weights_out[(pid, target)] = aux.weight(pid, target)
    return out_edge, weights_out


def randomized_phase_cap(m: int, target_cut: float, alpha: int) -> int:
    """A-priori phase bound using Claim 14's decay ``1 - 1/(64*alpha)``."""
    if m == 0 or target_cut >= m:
        return 0
    decay = 1.0 - 1.0 / (64 * alpha)
    return int(math.ceil(math.log(max(target_cut, 0.5) / m) / math.log(decay)))


@dataclass
class RandomizedPartitionResult(Stage1Result):
    """Stage1Result plus the randomized-variant parameters."""

    trials: int = 0
    delta: float = 0.0

    @property
    def met_target(self) -> bool:
        """Whether the cut target was reached within the phase cap."""
        return self.partition.cut_size() <= self.target_cut


def partition_randomized(
    graph: nx.Graph,
    epsilon: float,
    delta: float = 0.1,
    alpha: int = 3,
    target_cut: Optional[float] = None,
    trials: Optional[int] = None,
    max_phases: Optional[int] = None,
    early_stop: bool = True,
    seed: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    coloring: str = "cole-vishkin",
    coloring_rounds: Optional[int] = None,
    engine: Optional[str] = None,
) -> RandomizedPartitionResult:
    """Theorem 4 partition: ``O(poly(1/eps)(log 1/delta + log* n))`` rounds.

    Args:
        graph: the input graph; quality guarantees assume it is
            minor-free with arboricity <= alpha (the promise).  On other
            inputs the algorithm still terminates but may miss the target.
        epsilon: edge-cut parameter; default target ``epsilon * n`` per
            Theorem 4 ("the total number of edges between parts is at
            most epsilon n").
        delta: confidence parameter.
        alpha: arboricity bound of the promised family (3 for planar).
        trials: selection repetitions per phase; default
            ``Theta(log(phases / delta))``.
        coloring: ``"cole-vishkin"`` (default; O(log* n) super-rounds) or
            ``"randomized"`` -- Remark 1's trade-off: a fixed
            *coloring_rounds* budget with abstention, removing the
            dependence on n entirely at the cost of the (exponentially
            small) abstention fraction slowing the decay.
        coloring_rounds: budget for the randomized coloring; defaults to
            ``ceil(log2(phases/delta)) + 2``.
        engine: partition engine (``"auto"``/``"dense"``/``"legacy"``;
            see :func:`repro.partition.stage1.resolve_engine`).  Engines
            consume the RNG stream in the same order and produce
            identical results.
        max_phases / early_stop / seed / ledger / cost_model: as Stage I.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    m = graph.number_of_edges()
    n = graph.number_of_nodes()
    if target_cut is None:
        target_cut = epsilon * n
    cap = randomized_phase_cap(m, target_cut, alpha)
    if max_phases is None:
        max_phases = cap
    if trials is None:
        trials = default_trials(delta, cap or 1)
    rng = random.Random(seed)
    ledger = ledger if ledger is not None else RoundLedger()
    model = cost_model or TreeCostModel()

    if resolve_engine(engine, graph) == "dense":
        return _partition_randomized_dense(
            graph,
            delta=delta,
            alpha=alpha,
            target_cut=target_cut,
            trials=trials,
            max_phases=max_phases,
            early_stop=early_stop,
            rng=rng,
            ledger=ledger,
            model=model,
            coloring=coloring,
            coloring_rounds=coloring_rounds,
            cap=cap,
        )

    partition = Partition.singletons(graph)
    phases: List[PhaseStats] = []
    cut = m

    for phase_index in range(1, max_phases + 1):
        if cut == 0 or (early_stop and cut <= target_cut):
            break
        aux = AuxiliaryGraph(partition)
        height = partition.max_height()

        out_edge, weights = weighted_edge_selection(aux, trials, rng)
        # Section 4.1: each of the s draws is one uniform-edge-selection
        # convergecast (+1 boundary round to learn neighboring roots).
        ledger.charge(
            trials * (model.convergecast(height) + 1) + 1,
            "randomized.selection",
            f"{trials} weighted draws over trees of height {height}",
        )
        colors, cv_rounds = _color_pseudoforest(
            out_edge,
            coloring,
            coloring_rounds,
            cap,
            delta,
            rng,
            ledger,
            model,
            height,
        )
        marking = mark_and_choose(out_edge, weights, colors)
        _charge_merging_overhead(ledger, model, height, marking)

        if not marking.contract_edges:
            # Possible only under randomized coloring when every decision
            # abstained (exponentially unlikely); the phase made no
            # progress -- retry with fresh randomness.
            phases.append(
                PhaseStats(
                    phase=phase_index,
                    parts_before=partition.size,
                    parts_after=partition.size,
                    cut_before=cut,
                    cut_after=cut,
                    max_height_before=height,
                    max_height_after=height,
                    fd_super_rounds=0,
                    cv_super_rounds=cv_rounds,
                    max_marked_tree_height=0,
                    marked_weight=marking.marked_weight,
                    contracted_weight=0,
                )
            )
            continue

        new_partition = merge_parts(partition, aux, marking.contract_edges)
        new_cut = new_partition.cut_size()
        phases.append(
            PhaseStats(
                phase=phase_index,
                parts_before=partition.size,
                parts_after=new_partition.size,
                cut_before=cut,
                cut_after=new_cut,
                max_height_before=height,
                max_height_after=new_partition.max_height(),
                fd_super_rounds=0,
                cv_super_rounds=cv_rounds,
                max_marked_tree_height=max(
                    marking.tree_heights.values(), default=0
                ),
                marked_weight=marking.marked_weight,
                contracted_weight=marking.contracted_weight,
            )
        )
        if new_cut >= cut:
            # Cannot happen: every marked tree contracts its heavier
            # parity class, which has positive weight (see marking.py).
            raise PartitionError(
                f"phase {phase_index} made no progress (cut {cut} -> {new_cut})"
            )
        partition, cut = new_partition, new_cut

    return RandomizedPartitionResult(
        partition=partition,
        success=True,
        rejecting_parts=(),
        phases=phases,
        ledger=ledger,
        target_cut=target_cut,
        theoretical_phase_cap=cap,
        trials=trials,
        delta=delta,
    )


def _color_pseudoforest(
    out_edge,
    coloring: str,
    coloring_rounds: Optional[int],
    cap: int,
    delta: float,
    rng: random.Random,
    ledger: RoundLedger,
    model: TreeCostModel,
    height: int,
    initial_colors=None,
):
    """Sub-step 2a for both engines: CV or randomized coloring of F_i."""
    if coloring == "cole-vishkin":
        return cole_vishkin_emulated(
            out_edge,
            initial_colors=initial_colors,
            ledger=ledger,
            cost_model=model,
            height=height,
            category="randomized.coloring",
        )
    if coloring == "randomized":
        budget = coloring_rounds
        if budget is None:
            budget = int(math.ceil(math.log2(max(2.0, (cap or 1) / delta)))) + 2
        colors, _abstaining = randomized_coloring_emulated(
            out_edge,
            rounds=budget,
            rng=rng,
            ledger=ledger,
            cost_model=model,
            height=height,
        )
        return colors, budget
    raise ValueError(f"unknown coloring {coloring!r}")


def _partition_randomized_dense(
    graph: nx.Graph,
    delta: float,
    alpha: int,
    target_cut: float,
    trials: int,
    max_phases: int,
    early_stop: bool,
    rng: random.Random,
    ledger: RoundLedger,
    model: TreeCostModel,
    coloring: str,
    coloring_rounds: Optional[int],
    cap: int,
) -> RandomizedPartitionResult:
    """The Theorem 4 phase loop on the CSR-native dense state.

    The weighted selection runs vectorized on the aux edge arrays
    (:func:`repro.partition.dense.weighted_selection_dense`): it
    pre-draws the same ``rng.random()`` sequence the sequential loop
    would consume (parts in sorted-root order, trials inner) and
    replicates ``random.choices``'s cumulative-weight arithmetic bit
    for bit, so the RNG stream -- and therefore every draw -- matches
    the legacy engine exactly.  The randomized coloring likewise
    consumes conflicts in out-edge insertion order, preserved under the
    dense-index relabeling (dense indices sort like the original
    non-negative int ids).
    """
    from ..congest.topology import compile_topology
    from .dense import DensePartitionState, weighted_selection_dense

    topology = compile_topology(graph)
    ids = topology.nodes
    state = DensePartitionState(topology)
    phases: List[PhaseStats] = []
    cut = graph.number_of_edges()

    for phase_index in range(1, max_phases + 1):
        if cut == 0 or (early_stop and cut <= target_cut):
            break
        aux = state.build_aux()
        height = state.max_height()

        out_edge, weights = weighted_selection_dense(aux, trials, rng)
        ledger.charge(
            trials * (model.convergecast(height) + 1) + 1,
            "randomized.selection",
            f"{trials} weighted draws over trees of height {height}",
        )
        colors, cv_rounds = _color_pseudoforest(
            out_edge,
            coloring,
            coloring_rounds,
            cap,
            delta,
            rng,
            ledger,
            model,
            height,
            initial_colors=(
                {i: ids[i] for i in out_edge}
                if coloring == "cole-vishkin"
                else None
            ),
        )
        marking = mark_and_choose(out_edge, weights, colors)
        _charge_merging_overhead(ledger, model, height, marking)

        parts_before = state.size
        if not marking.contract_edges:
            phases.append(
                PhaseStats(
                    phase=phase_index,
                    parts_before=parts_before,
                    parts_after=parts_before,
                    cut_before=cut,
                    cut_after=cut,
                    max_height_before=height,
                    max_height_after=height,
                    fd_super_rounds=0,
                    cv_super_rounds=cv_rounds,
                    max_marked_tree_height=0,
                    marked_weight=marking.marked_weight,
                    contracted_weight=0,
                )
            )
            continue

        state.merge(marking.contract_edges, aux)
        new_cut = state.cut_size()
        phases.append(
            PhaseStats(
                phase=phase_index,
                parts_before=parts_before,
                parts_after=state.size,
                cut_before=cut,
                cut_after=new_cut,
                max_height_before=height,
                max_height_after=state.max_height(),
                fd_super_rounds=0,
                cv_super_rounds=cv_rounds,
                max_marked_tree_height=max(
                    marking.tree_heights.values(), default=0
                ),
                marked_weight=marking.marked_weight,
                contracted_weight=marking.contracted_weight,
            )
        )
        if new_cut >= cut:
            raise PartitionError(
                f"phase {phase_index} made no progress (cut {cut} -> {new_cut})"
            )
        cut = new_cut

    return RandomizedPartitionResult(
        partition=state.to_partition(graph),
        success=True,
        rejecting_parts=(),
        phases=phases,
        ledger=ledger,
        target_cut=target_cut,
        theoretical_phase_cap=cap,
        dense_state=state,
        trials=trials,
        delta=delta,
    )
