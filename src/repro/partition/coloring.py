"""Emulated Cole-Vishkin 3-coloring of the selected (pseudo)forest F_i.

Sub-step 2a of the merging step (paper Section 2.1.2).  The forest lives
on the auxiliary graph (one node per part); each auxiliary CV round is
emulated on G by relaying the current color through part trees
(Section 2.1.6), so the ledger is charged
``super_rounds * aux_message_relay(height)`` rounds.

The update rules are shared with the simulated protocol
(:mod:`repro.congest.programs.cole_vishkin`) via the same pure functions,
and the test-suite asserts that the emulated and simulated runs produce
identical colorings on identical forests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..congest.ledger import RoundLedger, TreeCostModel
from ..congest.programs.cole_vishkin import cv_schedule, cv_step_value
from ..errors import PartitionError


def cole_vishkin_emulated(
    parents: Dict[Any, Optional[Any]],
    initial_colors: Optional[Dict[Any, int]] = None,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    height: int = 0,
    category: str = "stage1.coloring",
) -> Tuple[Dict[Any, int], int]:
    """3-color a directed pseudoforest; return (colors, super_rounds).

    Args:
        parents: out-edge (parent) per node; ``None`` for roots.  Every
            node of the pseudoforest must appear as a key.
        initial_colors: distinct non-negative ints per node; defaults to
            the node ids when those are ints (the CONGEST assumption), or
            to ranks in sorted id order otherwise.
        ledger / cost_model / height: emulation cost accounting.
        category: ledger category for the charge.
    """
    nodes = list(parents)
    for v, p in parents.items():
        if p is not None and p not in parents:
            raise PartitionError(f"parent {p!r} of {v!r} missing from pseudoforest")
    if initial_colors is None:
        if all(isinstance(v, int) and v >= 0 for v in nodes):
            initial_colors = {v: v for v in nodes}
        else:
            initial_colors = {v: i for i, v in enumerate(sorted(nodes, key=repr))}
    colors = dict(initial_colors)
    if len(set(colors.values())) != len(nodes):
        raise PartitionError("initial CV colors must be distinct")

    children: Dict[Any, list] = {v: [] for v in nodes}
    for v, p in parents.items():
        if p is not None:
            children[p].append(v)

    schedule = cv_schedule(max(colors.values(), default=1))
    for phase in schedule:
        colors = _apply_phase(phase, colors, parents, children)

    _check_proper(colors, parents)
    if ledger is not None:
        model = cost_model or TreeCostModel()
        per_round = model.aux_message_relay(height)
        ledger.charge(
            len(schedule) * per_round,
            category,
            f"{len(schedule)} CV super-rounds x {per_round} rounds "
            f"(height {height})",
        )
    return colors, len(schedule)


def _apply_phase(phase, colors, parents, children):
    new = dict(colors)
    if phase == "cv":
        for v, c in colors.items():
            p = parents[v]
            if p is None:
                new[v] = cv_step_value(c, c ^ 1)
            else:
                new[v] = cv_step_value(c, colors[p])
    elif phase == "shift":
        for v, c in colors.items():
            p = parents[v]
            if p is None:
                new[v] = 0 if c != 0 else 1
            else:
                new[v] = colors[p]
    elif phase.startswith("elim"):
        target = int(phase[4:])
        for v, c in colors.items():
            if c != target:
                continue
            forbidden = set()
            p = parents[v]
            if p is not None:
                forbidden.add(colors[p])
            for child in children[v]:
                forbidden.add(colors[child])
            new[v] = min(x for x in (0, 1, 2) if x not in forbidden)
    else:  # pragma: no cover - defensive
        raise PartitionError(f"unknown CV phase {phase!r}")
    return new


def _check_proper(colors, parents):
    for v, p in parents.items():
        if p is not None and colors[v] == colors[p]:
            raise PartitionError(
                f"CV produced an improper coloring on edge ({v!r}, {p!r})"
            )
    bad = {c for c in colors.values() if c not in (0, 1, 2)}
    if bad:
        raise PartitionError(f"CV left colors outside {{0,1,2}}: {bad!r}")


def randomized_coloring_emulated(
    parents: Dict[Any, Optional[Any]],
    rounds: int,
    rng,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    height: int = 0,
    category: str = "randomized.coloring",
) -> Tuple[Dict[Any, Optional[int]], int]:
    """Remark 1: constant-round randomized 3-coloring with abstention.

    Every node picks a uniform color from {0, 1, 2}; for a fixed budget
    of super-rounds, nodes whose color equals their parent's re-pick.
    Each conflicted node resolves with probability 2/3 per round, so
    after ``r`` rounds the expected conflict fraction is ``3^-r``.
    Nodes still conflicted after the budget **abstain** (color ``None``):
    the marking step ignores them, which can only reduce the contracted
    weight -- correctness (Claim 15) is preserved unconditionally, and
    only the per-phase decay degrades with the (exponentially small)
    abstention rate.  This removes the ``log* n`` of Cole-Vishkin for
    constant success probability, realizing the paper's Remark 1
    trade-off.

    Returns (colors-with-possible-None, number of abstaining nodes).
    """
    if rounds < 1:
        raise PartitionError("randomized coloring needs at least one round")
    nodes = list(parents)
    colors: Dict[Any, Optional[int]] = {v: rng.randrange(3) for v in nodes}
    for _ in range(rounds):
        conflicted = [
            v
            for v, p in parents.items()
            if p is not None and colors[v] == colors[p]
        ]
        if not conflicted:
            break
        for v in conflicted:
            colors[v] = rng.randrange(3)
    abstaining = 0
    for v, p in parents.items():
        if p is not None and colors[v] == colors[p]:
            colors[v] = None
            abstaining += 1
    if ledger is not None:
        model = cost_model or TreeCostModel()
        per_round = model.aux_message_relay(height)
        ledger.charge(
            rounds * per_round,
            category,
            f"{rounds} randomized-coloring super-rounds x {per_round} rounds "
            f"(height {height}); {abstaining} abstentions",
        )
    return colors, abstaining
