"""Partition bookkeeping: parts, rooted spanning trees, validation.

Stage I maintains a partition of the nodes where each part is connected,
has a designated root known to all its nodes, and carries a rooted
spanning tree (paper Lemma 6).  Parts are identified by their root's id,
matching the paper's convention that the root id identifies ``v(P_i^j)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Tuple

import networkx as nx

from ..errors import PartitionError


@dataclass
class Part:
    """One part: a connected node set with a rooted spanning tree.

    Attributes:
        root: designated root node (also the part's identifier).
        nodes: the part's node set.
        parents: spanning-tree parent pointers (child -> parent) for every
            non-root node of the part.
        height: height of the spanning tree.
    """

    root: Any
    nodes: FrozenSet[Any]
    parents: Dict[Any, Any] = field(default_factory=dict)
    height: int = 0

    @property
    def pid(self) -> Any:
        """Part identifier (the root node's id)."""
        return self.root

    def __len__(self) -> int:
        return len(self.nodes)

    def tree_edges(self) -> Iterator[Tuple[Any, Any]]:
        """Spanning-tree edges as (child, parent) pairs."""
        return iter(self.parents.items())


def build_part(root: Any, nodes, tree_edges) -> Part:
    """Construct a part from a root and an edge set; recompute the tree.

    *tree_edges* must connect exactly the node set; parent pointers and
    height are derived by BFS from the root (so callers may pass edges in
    any orientation).
    """
    node_set = frozenset(nodes)
    adjacency: Dict[Any, List[Any]] = {v: [] for v in node_set}
    for u, v in tree_edges:
        if u not in node_set or v not in node_set:
            raise PartitionError(f"tree edge ({u!r}, {v!r}) leaves the part")
        adjacency[u].append(v)
        adjacency[v].append(u)
    parents: Dict[Any, Any] = {}
    height = 0
    seen = {root}
    queue = deque([(root, 0)])
    while queue:
        v, depth = queue.popleft()
        height = max(height, depth)
        for w in adjacency[v]:
            if w not in seen:
                seen.add(w)
                parents[w] = v
                queue.append((w, depth + 1))
    if seen != node_set:
        raise PartitionError(
            f"spanning tree of part rooted at {root!r} does not reach "
            f"{len(node_set - seen)} nodes"
        )
    return Part(root=root, nodes=node_set, parents=parents, height=height)


class Partition:
    """A partition of a graph's nodes into rooted connected parts."""

    def __init__(self, graph: nx.Graph, parts: List[Part]):
        """Wrap *parts* over *graph*; derives the node -> part index."""
        self.graph = graph
        self.parts: Dict[Any, Part] = {}
        self.part_of: Dict[Any, Any] = {}
        for part in parts:
            if part.pid in self.parts:
                raise PartitionError(f"duplicate part id {part.pid!r}")
            self.parts[part.pid] = part
            for node in part.nodes:
                if node in self.part_of:
                    raise PartitionError(f"node {node!r} appears in two parts")
                self.part_of[node] = part.pid
        missing = set(graph.nodes()) - set(self.part_of)
        if missing:
            raise PartitionError(f"{len(missing)} nodes not covered by any part")

    @classmethod
    def singletons(cls, graph: nx.Graph) -> "Partition":
        """The initial partition P_1: every node is its own part."""
        return cls(
            graph,
            [Part(root=v, nodes=frozenset([v])) for v in graph.nodes()],
        )

    # -- queries ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of parts."""
        return len(self.parts)

    def cut_edges(self) -> Iterator[Tuple[Any, Any]]:
        """Edges of the graph whose endpoints lie in different parts."""
        part_of = self.part_of
        for u, v in self.graph.edges():
            if part_of[u] != part_of[v]:
                yield (u, v)

    def cut_size(self) -> int:
        """Number of inter-part edges (the weight of the auxiliary graph)."""
        return sum(1 for _ in self.cut_edges())

    def max_height(self) -> int:
        """Maximum spanning-tree height over parts."""
        return max((p.height for p in self.parts.values()), default=0)

    def max_diameter(self) -> int:
        """Maximum exact diameter of the induced subgraphs of the parts."""
        from ..graphs.utils import diameter

        best = 0
        for part in self.parts.values():
            if len(part) > 1:
                best = max(best, diameter(self.graph.subgraph(part.nodes)))
        return best

    def part_subgraph(self, pid: Any) -> nx.Graph:
        """Induced subgraph of the part with id *pid*."""
        return self.graph.subgraph(self.parts[pid].nodes)

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check all Lemma 6 invariants; raise :class:`PartitionError`."""
        for part in self.parts.values():
            if part.root not in part.nodes:
                raise PartitionError(f"root {part.root!r} outside its part")
            sub = self.graph.subgraph(part.nodes)
            if len(part) > 1 and not nx.is_connected(sub):
                raise PartitionError(f"part {part.pid!r} is not connected")
            if set(part.parents) != part.nodes - {part.root}:
                raise PartitionError(
                    f"part {part.pid!r}: parent pointers do not cover the part"
                )
            depth_seen: Dict[Any, int] = {part.root: 0}
            for node in part.parents:
                # Walk to the root, detecting cycles and escapes.
                chain = []
                v = node
                while v not in depth_seen:
                    chain.append(v)
                    v = part.parents.get(v)
                    if v is None or v not in part.nodes:
                        raise PartitionError(
                            f"part {part.pid!r}: broken parent chain at {node!r}"
                        )
                    if len(chain) > len(part.nodes):
                        raise PartitionError(
                            f"part {part.pid!r}: parent pointers contain a cycle"
                        )
                base = depth_seen[v]
                for offset, w in enumerate(reversed(chain), start=1):
                    depth_seen[w] = base + offset
            for child, parent in part.parents.items():
                if not self.graph.has_edge(child, parent):
                    raise PartitionError(
                        f"part {part.pid!r}: tree edge ({child!r}, {parent!r}) "
                        "is not a graph edge"
                    )
            true_height = max(depth_seen.values(), default=0)
            if true_height != part.height:
                raise PartitionError(
                    f"part {part.pid!r}: recorded height {part.height} != "
                    f"actual {true_height}"
                )
