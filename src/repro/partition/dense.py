"""CSR-native Stage I engine: the partition phase loop on flat arrays.

The seed phase loop re-derived everything from networkx views each
phase: :class:`~repro.partition.auxiliary.AuxiliaryGraph` iterated
``graph.edges()`` with per-edge ``id_key`` calls, ``cut_size`` iterated
them again, and every merge rebuilt frozensets and ``Part`` objects.
This module reruns the identical algorithm on the
:class:`~repro.congest.topology.CompiledTopology`'s dense-index arrays:

* the input graph is compiled once; undirected edges live in two numpy
  index arrays (``eu``, ``ev``) shared by every phase;
* the partition state is a numpy ``part_of`` vector plus flat parent /
  tree-adjacency tables over dense indices -- cut sizes and auxiliary
  weights come from vectorized sweeps (``unique`` over packed endpoint
  pairs) instead of per-edge dict churn;
* the *decision* layer (forest decomposition, heaviest-out-edge
  selection, Cole-Vishkin, CHW marking, weighted selection) is reused
  verbatim from the emulated modules, operating on dense indices, so
  there is exactly one implementation of the paper's logic.

Equivalence: dense indices are assigned in sorted-id order, so for
graphs with non-negative integer labels (every bundled generator) all
tie-breaks agree with the seed's ``id_key`` order, Cole-Vishkin seeds
from the original ids, and RNG streams are consumed in the same order --
the engine yields bit-identical partitions, phase stats, ledgers and
round counts, which ``tests/test_partition_dense.py`` asserts against
the legacy engine on every bundled generator.  :func:`dense_supported`
gates the engine; unsupported inputs fall back to the legacy path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import networkx as nx

from ..congest.ledger import RoundLedger, TreeCostModel
from ..congest.programs.cole_vishkin import cv_schedule
from ..congest.topology import CompiledTopology
from ..errors import PartitionError
from .marking import MarkingResult
from .parts import Part, Partition

try:  # numpy ships with the scientific toolchain; gate anyway.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via dense_supported
    np = None

_MAX_ID = 2**62  # int64 headroom for the vectorized CV bit tricks


def dense_supported(graph: nx.Graph) -> bool:
    """Whether the CSR-native engine reproduces the legacy engine exactly.

    Requires numpy, a non-empty graph (the legacy engine returns an
    empty partition where ``compile_topology`` would refuse), and
    non-negative (int64-sized) integer node labels: dense indices then
    order identically to ``id_key``, and Cole-Vishkin's id-seeded
    colors fit the vectorized bit tricks.  Anything else falls back to
    the legacy dict engine (same results, smaller constant factor).
    """
    if np is None or graph.number_of_nodes() == 0:
        return False
    return all(
        isinstance(v, int) and not isinstance(v, bool) and 0 <= v < _MAX_ID
        for v in graph.nodes()
    )


class DenseAuxiliaryGraph:
    """Weighted contraction of a dense partition state, built vectorized.

    The primary representation is flat arrays over *compact* part
    indices ``0..k-1`` (``pids[c]`` maps back to the part's root dense
    index): one row per auxiliary edge with endpoints, weight, and the
    designated connector, plus a compact degree table.  The whole build
    is one masked sweep over the compiled edge arrays: weights via
    ``unique`` counts over packed endpoint-pair keys, designated
    connectors via a lexsort (minimum oriented edge per pair -- the
    seed's exact min-id tie-break).

    Dict adjacency in the :class:`~repro.partition.auxiliary.AuxiliaryGraph`
    interface (part ids = dense root indices) is materialized lazily for
    consumers that need per-node maps (the randomized engine's weighted
    selection); the deterministic engine's sweeps never touch it.

    Attributes:
        pids: compact index -> root dense index.
        ea / eb: per aux edge, compact endpoint indices (``ea < eb`` in
            root order).
        weights: per aux edge, multiplicity (number of cut edges).
        conn_u / conn_v: per aux edge, the designated connector's dense
            node endpoints (``conn_u`` inside ``pids[ea]``'s part).
        degrees: compact degree table (distinct aux neighbors).
        cut: total cut weight (number of inter-part edges).
    """

    __slots__ = (
        "pids",
        "ea",
        "eb",
        "weights",
        "conn_u",
        "conn_v",
        "degrees",
        "cut",
        "_pair_keys",
        "_n",
        "_adj",
    )

    def __init__(self, part_of, eu, ev, n: int, roots=None):
        pu = part_of[eu]
        pv = part_of[ev]
        mask = pu != pv
        self.cut = int(mask.sum())
        cu = pu[mask]
        cv = pv[mask]
        lo = np.minimum(cu, cv)
        hi = np.maximum(cu, cv)
        # Connector endpoints oriented (node in lo-part, node in hi-part),
        # matching AuxiliaryGraph.connector's canonical orientation.
        su = eu[mask]
        sv = ev[mask]
        swapped = cu != lo
        ca = np.where(swapped, sv, su)
        cb = np.where(swapped, su, sv)
        pair_key = lo * n + hi
        conn_key = ca * n + cb
        order = np.lexsort((conn_key, pair_key))
        pair_sorted = pair_key[order]
        uniq, first, counts = np.unique(
            pair_sorted, return_index=True, return_counts=True
        )
        chosen = order[first]

        if roots is None:
            roots = np.unique(part_of).tolist()
        pids = list(roots)
        k = len(pids)
        compact_of = np.full(n, -1, dtype=np.int64)
        compact_of[np.asarray(pids, dtype=np.int64)] = np.arange(
            k, dtype=np.int64
        )
        self.pids = pids
        self._n = n
        self._pair_keys = uniq
        self.ea = compact_of[uniq // n]
        self.eb = compact_of[uniq % n]
        self.weights = counts.astype(np.int64)
        self.conn_u = ca[chosen]
        self.conn_v = cb[chosen]
        degrees = np.zeros(k, dtype=np.int64)
        np.add.at(degrees, self.ea, 1)
        np.add.at(degrees, self.eb, 1)
        self.degrees = degrees
        self._adj = None

    # -- array accessors ------------------------------------------------------

    @property
    def compact_count(self) -> int:
        """Number of auxiliary nodes (compact index range)."""
        return len(self.pids)

    def connector_compact(self, child: int, center: int) -> Tuple[int, int]:
        """Designated connector for compact pair, oriented child->center."""
        pa, pb = self.pids[child], self.pids[center]
        if pa <= pb:
            key = pa * self._n + pb
            flip = False
        else:
            key = pb * self._n + pa
            flip = True
        pos = int(np.searchsorted(self._pair_keys, key))
        u = int(self.conn_u[pos])
        v = int(self.conn_v[pos])
        return (v, u) if flip else (u, v)

    # -- AuxiliaryGraph query interface (dict view, lazy) ---------------------

    def _dicts(self) -> Dict[int, Dict[int, int]]:
        adj = self._adj
        if adj is None:
            adj = {root: {} for root in self.pids}
            pids = self.pids
            for a, b, weight in zip(
                self.ea.tolist(), self.eb.tolist(), self.weights.tolist()
            ):
                pa, pb = pids[a], pids[b]
                adj[pa][pb] = weight
                adj[pb][pa] = weight
            self._adj = adj
        return adj

    @property
    def node_count(self) -> int:
        return len(self.pids)

    def nodes(self) -> Iterator[int]:
        return iter(self.pids)

    def neighbors(self, pid: int) -> Dict[int, int]:
        return self._dicts()[pid]

    def degree(self, pid: int) -> int:
        return len(self._dicts()[pid])

    def weight(self, pa: int, pb: int) -> int:
        return self._dicts()[pa].get(pb, 0)

    def weighted_degree(self, pid: int) -> int:
        return sum(self._dicts()[pid].values())

    def total_weight(self) -> int:
        return self.cut

    def edge_count(self) -> int:
        return len(self._pair_keys)

    def connector(self, pa: int, pb: int) -> Tuple[int, int]:
        if pa <= pb:
            key = pa * self._n + pb
            flip = False
        else:
            key = pb * self._n + pa
            flip = True
        pos = int(np.searchsorted(self._pair_keys, key))
        u = int(self.conn_u[pos])
        v = int(self.conn_v[pos])
        return (v, u) if flip else (u, v)

    def edge_parts(self) -> Iterator[Tuple[int, int]]:
        pids = self.pids
        for a, b in zip(self.ea.tolist(), self.eb.tolist()):
            yield (pids[a], pids[b])


def forest_decomposition_dense(
    aux: DenseAuxiliaryGraph,
    alpha: int,
    n_graph: int,
    height: int,
    budget: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    charge_full_budget: bool = True,
) -> Tuple[bool, "np.ndarray", "np.ndarray", int]:
    """Vectorized Barenboim-Elkin deactivation on the aux edge arrays.

    Array port of
    :func:`repro.partition.forest_decomposition.forest_decomposition_emulated`:
    each super-round deactivates every active compact node of aux degree
    <= 3*alpha and decrements the degrees of its still-active neighbors
    with one masked scatter-add per endpoint side.  Charges the ledger
    identically.

    Returns ``(success, active_mask, inactive_round, super_rounds)``
    with ``inactive_round`` holding the 1-based deactivation super-round
    (0 = never deactivated) per compact index.
    """
    from ..congest.programs.forest_decomposition import (
        barenboim_elkin_round_budget,
    )

    if budget is None:
        budget = barenboim_elkin_round_budget(n_graph)
    threshold = 3 * alpha
    k = aux.compact_count
    ea, eb = aux.ea, aux.eb
    degrees = aux.degrees.copy()
    active = np.ones(k, dtype=bool)
    inactive_round = np.zeros(k, dtype=np.int64)
    executed = 0
    for super_round in range(1, budget + 1):
        if not active.any():
            break
        executed = super_round
        deactivating = active & (degrees <= threshold)
        if not deactivating.any():
            # No node can ever deactivate again: the active subgraph has
            # min degree > 3*alpha, certifying arboricity > alpha.
            executed = budget
            break
        inactive_round[deactivating] = super_round
        active &= ~deactivating
        da = deactivating[ea]
        db = deactivating[eb]
        np.add.at(degrees, eb[da & active[eb]], -1)
        np.add.at(degrees, ea[db & active[ea]], -1)

    if ledger is not None:
        model = cost_model or TreeCostModel()
        per_super_round = model.super_round(height, alpha)
        charged_rounds = budget if charge_full_budget else executed
        ledger.charge(
            charged_rounds * per_super_round,
            "stage1.forest_decomposition",
            f"{charged_rounds} super-rounds x {per_super_round} rounds "
            f"(height {height}, alpha {alpha})",
        )
    super_rounds = budget if charge_full_budget else executed
    return (not bool(active.any()), active, inactive_round, super_rounds)


def orient_and_select_dense(
    aux: DenseAuxiliaryGraph, inactive_round: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Fused array port of ``_orient`` + ``select_heaviest_out_edges``.

    Orients every aux edge by deactivation time (never-deactivated
    endpoints lose; ties by id order), then picks each compact node's
    heaviest outgoing edge with ties to the smallest neighbor -- one
    lexsort replaces the per-candidate comparison loop, with identical
    winners.  Returns ``(parent, weight)`` over compact indices
    (-1 / 0 where a node has no out-edge).
    """
    k = aux.compact_count
    ea, eb, w = aux.ea, aux.eb, aux.weights
    ra = inactive_round[ea]
    rb = inactive_round[eb]
    none_a = ra == 0
    none_b = rb == 0
    keep = ~(none_a & none_b)
    a_wins = keep & (
        none_b | (~none_a & ((ra < rb) | ((ra == rb) & (ea < eb))))
    )
    b_wins = keep & ~a_wins
    src = np.concatenate((ea[a_wins], eb[b_wins]))
    dst = np.concatenate((eb[a_wins], ea[b_wins]))
    ww = np.concatenate((w[a_wins], w[b_wins]))
    parent = np.full(k, -1, dtype=np.int64)
    weight = np.zeros(k, dtype=np.int64)
    if len(src):
        order = np.lexsort((dst, -ww, src))
        src_sorted = src[order]
        owners, first = np.unique(src_sorted, return_index=True)
        best = order[first]
        parent[owners] = dst[best]
        weight[owners] = ww[best]
    return parent, weight


def weighted_selection_dense(
    aux: DenseAuxiliaryGraph,
    trials: int,
    rng,
) -> Tuple[Dict[int, Optional[int]], Dict[Tuple[int, int], int]]:
    """Vectorized Theorem 4 weighted-edge selection on the aux arrays.

    Array port of
    :func:`repro.partition.weighted_selection.weighted_edge_selection`
    that never materializes the lazy dict adjacency and replaces the
    per-draw ``rng.choices`` (which rebuilds its cumulative-weight list
    on *every* trial, ``O(trials * degree)`` Python work per part) with
    one CSR sweep plus a batched ``searchsorted``.

    **The RNG stream is consumed identically**: the legacy path draws
    one ``rng.random()`` per (part, trial) in ascending part order --
    compact order equals root-id order, so pre-drawing the same count
    in row-major order yields the exact floats.  Each draw then
    replicates ``random.choices``'s selection arithmetic bit for bit:
    ``index = bisect_right(cum_weights, r * total, 0, degree - 1)``
    with the multiplication performed in float64 exactly as CPython
    does.  The global ``searchsorted`` adds the segment base in float64
    (one possible ulp of error), so a two-step exact correction against
    the integer segment-local cumulative weights pins every index to
    the bisect result before use.  Best-of-draws keeps the heaviest
    edge with ties to the smallest neighbor id -- the same fold the
    sequential loop computes.

    Returns ``(out_edge, weights)`` keyed by part roots (dense ids), in
    ascending-root insertion order, exactly like the legacy function.
    """
    pids = aux.pids
    k = aux.compact_count
    ea, eb, w = aux.ea, aux.eb, aux.weights
    # Symmetric CSR over compact indices, neighbors ascending (= id_key
    # order of the roots, the legacy iteration order).
    src = np.concatenate((ea, eb))
    dst = np.concatenate((eb, ea))
    ww = np.concatenate((w, w))
    order = np.lexsort((dst, src))
    src_s = src[order]
    dst_s = dst[order]
    w_s = ww[order]
    counts = np.bincount(src_s, minlength=k)
    indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    cum = np.cumsum(w_s, dtype=np.int64)
    cum0 = np.concatenate((np.zeros(1, dtype=np.int64), cum))
    base = cum0[indptr[:-1]]  # total weight before each segment
    totals = (cum0[indptr[1:]] - base).astype(np.float64)

    active = np.nonzero(counts > 0)[0]
    drawn: Dict[int, Optional[int]] = {}
    if len(active) and trials > 0:
        # One rng.random() per (active part, trial), part-major: the
        # exact draws the sequential loop would consume.
        flat = np.array(
            [rng.random() for _ in range(len(active) * trials)],
            dtype=np.float64,
        ).reshape(len(active), trials)
        x = flat * totals[active][:, None]  # CPython: random() * total
        seg_start = indptr[active]
        seg_len = counts[active]
        queries = (base[active].astype(np.float64)[:, None] + x).ravel()
        approx = np.searchsorted(cum, queries, side="right").reshape(
            len(active), trials
        )
        local = approx - seg_start[:, None]
        hi = (seg_len - 1)[:, None]
        local = np.clip(local, 0, hi)
        # Exact off-by-one correction: the float base addition can be a
        # ulp off, never more (cumulative weights are distinct ints).
        flat_local = local + seg_start[:, None]
        lower = cum0[flat_local]  # cum before the candidate slot
        down = (local > 0) & (lower - base[active][:, None] > x)
        local -= down
        flat_local = local + seg_start[:, None]
        upper = cum0[flat_local + 1]
        up = (local < hi) & (upper - base[active][:, None] <= x)
        local += up
        flat_local = (local + seg_start[:, None]).ravel()
        cand = dst_s[flat_local].reshape(len(active), trials)
        cand_w = w_s[flat_local].reshape(len(active), trials)
        best_w = cand_w.max(axis=1)
        # Ties to the smallest neighbor id (compact order = id order).
        best_nb = np.where(cand_w == best_w[:, None], cand, k).min(axis=1)
        chosen = dict(
            zip(active.tolist(), zip(best_nb.tolist(), best_w.tolist()))
        )
    else:
        chosen = {}

    weight_of: Dict[int, int] = {}
    for compact in range(k):
        pid = pids[compact]
        pick = chosen.get(compact)
        if pick is None:
            drawn[pid] = None
        else:
            drawn[pid] = pids[pick[0]]
            weight_of[pid] = pick[1]

    # Resolve double selections exactly as the legacy path: the edge
    # becomes the out-edge of the smaller id; the larger endpoint is
    # left without an out-edge.
    out_edge: Dict[int, Optional[int]] = dict(drawn)
    for pid, target in drawn.items():
        if target is None:
            continue
        if drawn.get(target) == pid and target < pid:
            out_edge[pid] = None
    weights_out: Dict[Tuple[int, int], int] = {}
    for pid, target in out_edge.items():
        if target is not None:
            weights_out[(pid, target)] = weight_of[pid]
    return out_edge, weights_out


def cole_vishkin_dense(
    parent: "np.ndarray",
    init_colors: "np.ndarray",
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    height: int = 0,
    category: str = "stage1.coloring",
) -> Tuple["np.ndarray", int]:
    """Vectorized Cole-Vishkin 3-coloring of a compact pseudoforest.

    Array port of :func:`repro.partition.coloring.cole_vishkin_emulated`
    for the deterministic dense engine: *parent* holds compact parent
    indices (-1 at roots) and *init_colors* the distinct non-negative
    initial colors (the original part-root ids, matching the legacy
    id-seeded start).  Every phase applies the exact update rules of
    ``_apply_phase`` -- the shared :func:`cv_schedule` drives both -- so
    the final coloring is identical; the same ledger charge is recorded.
    """
    k = len(parent)
    roots = parent < 0
    safe_parent = np.where(roots, np.arange(k, dtype=np.int64), parent)
    nonroot = ~roots
    colors = init_colors.astype(np.int64)
    one = np.int64(1)

    schedule = cv_schedule(int(colors.max()) if k else 1)
    for phase in schedule:
        pc = colors[safe_parent]
        if phase == "cv":
            own = colors
            effective = np.where(roots, own ^ 1, pc)
            diff = own ^ effective
            low = diff & -diff
            # low is a single set bit, exactly representable in float64,
            # so log2 recovers the bit index without rounding.
            index = np.log2(low.astype(np.float64)).astype(np.int64)
            colors = 2 * index + ((own >> index) & 1)
        elif phase == "shift":
            colors = np.where(roots, np.where(colors != 0, 0, 1), pc)
        else:  # elim{target}
            target = int(phase[4:])
            forbidden = np.zeros(k, dtype=np.int64)
            np.bitwise_or.at(
                forbidden, parent[nonroot], one << colors[nonroot]
            )
            forbidden |= np.where(nonroot, one << pc, 0)
            choice = np.where(
                forbidden & 1 == 0, 0, np.where(forbidden & 2 == 0, 1, 2)
            )
            colors = np.where(colors == target, choice, colors)

    if bool((nonroot & (colors == colors[safe_parent])).any()):
        raise PartitionError("CV produced an improper coloring")
    if bool(((colors < 0) | (colors > 2)).any()):
        raise PartitionError("CV left colors outside {0,1,2}")
    if ledger is not None:
        model = cost_model or TreeCostModel()
        per_round = model.aux_message_relay(height)
        ledger.charge(
            len(schedule) * per_round,
            category,
            f"{len(schedule)} CV super-rounds x {per_round} rounds "
            f"(height {height})",
        )
    return colors, len(schedule)


def mark_and_choose_dense(
    parent: "np.ndarray",
    weight: "np.ndarray",
    colors: "np.ndarray",
) -> MarkingResult:
    """Array port of CHW marking + parity choice on compact indices.

    Applies the exact decision rules of
    :func:`repro.partition.marking.mark_and_choose` (all nodes
    participate -- the deterministic engine's CV coloring never
    abstains): *parent* is the selected out-edge per compact node (-1 if
    none), *weight* the weight of that edge, *colors* a proper
    {0,1,2}-coloring.  The returned :class:`MarkingResult` carries
    compact indices; edge-list order is unspecified (legacy sorts by
    ``repr``) but the edge *sets*, tree heights and weights are
    identical.
    """
    k = len(parent)
    has_parent = parent >= 0
    safe_parent = np.where(has_parent, parent, 0)
    edge_weight = np.where(has_parent, weight, 0)

    # Incoming weight sums (all children / color-3 children only).
    w_in = np.zeros(k, dtype=np.int64)
    np.add.at(w_in, parent[has_parent], edge_weight[has_parent])
    child_is3 = has_parent & (colors == 2)
    w_in3 = np.zeros(k, dtype=np.int64)
    np.add.at(w_in3, parent[child_is3], edge_weight[child_is3])

    # Per-node "mark my out-edge" decisions (sub-step 2b).
    up1 = (colors == 0) & has_parent & (edge_weight >= w_in)
    up2 = (
        (colors == 1)
        & has_parent
        & (colors[safe_parent] == 2)
        & (edge_weight >= w_in3)
    )
    parent_color = colors[safe_parent]
    down1 = has_parent & (parent_color == 0) & ~up1[safe_parent]
    down2 = (
        child_is3 & (parent_color == 1) & ~up2[safe_parent]
    )
    marked = up1 | up2 | down1 | down2

    marked_idx = np.nonzero(marked)[0].tolist()
    parent_list = parent.tolist()
    weight_list = edge_weight.tolist()
    marked_edges = [(v, parent_list[v]) for v in marked_idx]
    marked_weight = sum(weight_list[v] for v in marked_idx)

    # Parity choice (sub-steps 3-4), per marked tree.
    marked_children: Dict[int, List[int]] = {}
    touched = set()
    for v in marked_idx:
        p = parent_list[v]
        marked_children.setdefault(p, []).append(v)
        touched.add(v)
        touched.add(p)
    marked_out = set(marked_idx)
    roots = [v for v in touched if v not in marked_out]

    level: Dict[int, int] = {}
    tree_root: Dict[int, int] = {}
    tree_heights: Dict[int, int] = {}
    for root in roots:
        depth = 0
        frontier = [root]
        height = 0
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                if v in level:
                    raise PartitionError(
                        "marked subgraph is not a forest (Claim 15)"
                    )
                level[v] = depth
                tree_root[v] = root
                nxt.extend(marked_children.get(v, ()))
            height = depth
            depth += 1
            frontier = nxt
        tree_heights[root] = height
    if len(level) != len(touched):
        raise PartitionError("marked subgraph contains a cycle (Claim 15)")

    parity_weight: Dict[int, List[int]] = {root: [0, 0] for root in roots}
    for v in marked_idx:
        parity_weight[tree_root[parent_list[v]]][level[v] % 2] += weight_list[v]

    contract: List[Tuple[int, int]] = []
    contracted_weight = 0
    for v in marked_idx:
        w0, w1 = parity_weight[tree_root[parent_list[v]]]
        chosen = 0 if w0 >= w1 else 1
        if level[v] % 2 == chosen:
            contract.append((v, parent_list[v]))
            contracted_weight += weight_list[v]

    children = {c for c, _p in contract}
    centers = {p for _c, p in contract}
    overlap = children & centers
    if overlap:
        raise PartitionError(
            f"contraction edges do not form stars; chained nodes: {overlap!r}"
        )
    return MarkingResult(
        marked_edges=marked_edges,
        contract_edges=contract,
        tree_heights=tree_heights,
        marked_weight=marked_weight,
        contracted_weight=contracted_weight,
    )


class DensePartitionState:
    """Flat-array partition bookkeeping over dense node indices.

    Attributes:
        topology: the compiled topology (dense ids, CSR, edge arrays).
        part_of: numpy vector mapping dense index -> root dense index.
        parent: spanning-tree parent per dense index (-1 at roots).
        tree_adj: adjacency lists of the spanning forest; merges only
            ever *add* connector edges, so the forest grows in place.
        heights: root index -> spanning-tree height.
        sizes: root index -> part size.
    """

    def __init__(self, topology: CompiledTopology):
        n = topology.n
        self.topology = topology
        self.eu, self.ev = topology.edge_arrays()
        self.part_of = np.arange(n, dtype=np.int64)
        self.parent = [-1] * n
        self.tree_adj: List[List[int]] = [[] for _ in range(n)]
        self.heights: Dict[int, int] = dict.fromkeys(range(n), 0)
        self.sizes: Dict[int, int] = dict.fromkeys(range(n), 1)
        self._seen = [0] * n
        self._generation = 0

    @property
    def size(self) -> int:
        """Number of parts."""
        return len(self.heights)

    def max_height(self) -> int:
        return max(self.heights.values(), default=0)

    def cut_size(self) -> int:
        part_of = self.part_of
        return int((part_of[self.eu] != part_of[self.ev]).sum())

    def build_aux(self) -> DenseAuxiliaryGraph:
        return DenseAuxiliaryGraph(
            self.part_of,
            self.eu,
            self.ev,
            self.topology.n,
            roots=self.heights,
        )

    def merge(
        self,
        contract_edges: List[Tuple[int, int]],
        aux: DenseAuxiliaryGraph,
    ) -> None:
        """Contract star edges (child root -> center root) in place.

        Mirrors :func:`repro.partition.stage1.merge_parts`: each child's
        tree is glued to its center through the designated connector and
        the merged part is re-rooted at the center by BFS over the
        spanning forest.  Parent pointers and heights of a tree are
        unique regardless of traversal order, so the recomputed tables
        match the legacy ``build_part`` exactly.
        """
        star_children: Dict[int, List[int]] = {}
        absorbed = set()
        for child, center in contract_edges:
            star_children.setdefault(center, []).append(child)
            if child in absorbed:
                raise PartitionError(f"part {child!r} contracted twice")
            absorbed.add(child)
        overlap = absorbed & set(star_children)
        if overlap:
            raise PartitionError(f"contraction is not star-shaped at {overlap!r}")

        n = self.topology.n
        root_map = np.arange(n, dtype=np.int64)
        tree_adj = self.tree_adj
        for child, center in contract_edges:
            root_map[child] = center
            u, v = aux.connector(child, center)
            tree_adj[u].append(v)
            tree_adj[v].append(u)
        self.part_of = root_map[self.part_of]

        parent = self.parent
        seen = self._seen
        for center, children in star_children.items():
            expected = self.sizes[center] + sum(
                self.sizes[c] for c in children
            )
            self._generation += 1
            generation = self._generation
            seen[center] = generation
            parent[center] = -1
            height = -1
            reached = 0
            frontier = [center]
            while frontier:
                height += 1
                reached += len(frontier)
                nxt: List[int] = []
                for v in frontier:
                    for w in tree_adj[v]:
                        if seen[w] != generation:
                            seen[w] = generation
                            parent[w] = v
                            nxt.append(w)
                frontier = nxt
            if reached != expected:
                raise PartitionError(
                    f"spanning tree of part rooted at {center!r} does not "
                    f"reach {expected - reached} nodes"
                )
            self.sizes[center] = expected
            self.heights[center] = height
            for child in children:
                del self.sizes[child]
                del self.heights[child]

    def to_partition(self, graph: nx.Graph) -> Partition:
        """Materialize the dense state as a legacy :class:`Partition`."""
        ids = self.topology.nodes
        parent = self.parent
        members: Dict[int, List[int]] = {root: [] for root in self.heights}
        for idx, root in enumerate(self.part_of.tolist()):
            members[root].append(idx)
        parts = []
        for root, group in members.items():
            parents = {
                ids[idx]: ids[parent[idx]] for idx in group if parent[idx] >= 0
            }
            parts.append(
                Part(
                    root=ids[root],
                    nodes=frozenset(ids[idx] for idx in group),
                    parents=parents,
                    height=self.heights[root],
                )
            )
        return Partition(graph, parts)
