"""Stage I partitioning: deterministic (Thm 1/3) and randomized (Thm 4)."""

from .auxiliary import AuxEdge, AuxiliaryGraph
from .coloring import cole_vishkin_emulated, randomized_coloring_emulated
from .dense import DenseAuxiliaryGraph, DensePartitionState, dense_supported
from .forest_decomposition import (
    ForestDecompositionResult,
    forest_decomposition_emulated,
)
from .marking import MarkingResult, mark_and_choose
from .parts import Part, Partition, build_part
from .stage1 import (
    ENGINES,
    ENGINE_ENV_VAR,
    PhaseStats,
    Stage1Result,
    merge_parts,
    partition_stage1,
    resolve_engine,
    select_heaviest_out_edges,
    theoretical_phase_cap,
)
from .weighted_selection import (
    RandomizedPartitionResult,
    partition_randomized,
    weighted_edge_selection,
)

__all__ = [
    "AuxEdge",
    "AuxiliaryGraph",
    "DenseAuxiliaryGraph",
    "DensePartitionState",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "ForestDecompositionResult",
    "MarkingResult",
    "Part",
    "Partition",
    "PhaseStats",
    "RandomizedPartitionResult",
    "Stage1Result",
    "build_part",
    "cole_vishkin_emulated",
    "dense_supported",
    "randomized_coloring_emulated",
    "forest_decomposition_emulated",
    "mark_and_choose",
    "merge_parts",
    "partition_randomized",
    "partition_stage1",
    "resolve_engine",
    "select_heaviest_out_edges",
    "theoretical_phase_cap",
    "weighted_edge_selection",
]
