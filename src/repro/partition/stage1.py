"""Stage I: the deterministic partition algorithm (paper Section 2.1).

Repeatedly contracts the partition through phases of forest decomposition
(on the auxiliary graph) + CHW merging until the number of inter-part
edges drops below the target (``epsilon * m / 2`` for the planarity
tester; ``epsilon * n`` for the Theorem 3 partition).  Claims reproduced:

* Claim 1 / Claim 3: each phase multiplies the cut weight by at most
  ``1 - 1/(12*alpha)`` (we assert the provable ``1 - 1/(36*alpha)``),
  so ``O(log 1/epsilon)`` phases suffice; on planar (arboricity <= 3)
  graphs the forest decomposition never rejects.
* Claim 4: part diameters grow at most geometrically (<= 4^i); we track
  spanning-tree heights exactly.
* Lemma 6: parts keep rooted spanning trees; maintained by construction
  and checked by ``Partition.validate`` in tests.

Termination: the default mode stops as soon as the cut target is met
(substitution 2 in DESIGN.md -- a fixed-schedule CONGEST execution would
run the a-priori phase cap; we report both).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..congest.ledger import RoundLedger, TreeCostModel
from ..errors import PartitionError
from ..graphs.utils import id_key
from ..telemetry import get_tracer
from .auxiliary import AuxiliaryGraph
from .coloring import cole_vishkin_emulated
from .forest_decomposition import forest_decomposition_emulated
from .marking import MarkingResult, mark_and_choose
from .parts import Partition, build_part

ENGINE_ENV_VAR = "REPRO_PARTITION_ENGINE"

ENGINES = ("auto", "dense", "legacy")
"""Partition engines selectable via ``engine=`` or the environment."""


def resolve_engine(engine: Optional[str], graph: nx.Graph) -> str:
    """Resolve the partition engine for *graph*.

    ``None`` consults ``REPRO_PARTITION_ENGINE`` and defaults to
    ``"auto"``; auto picks the CSR-native dense engine whenever
    :func:`~repro.partition.dense.dense_supported` certifies exact
    equivalence (numpy present, non-negative int labels) and the legacy
    dict engine otherwise.  Requesting ``"dense"`` on an unsupported
    input raises.
    """
    from .dense import dense_supported

    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "auto"
    if engine not in ENGINES:
        raise ValueError(f"unknown partition engine {engine!r}; choose from {ENGINES}")
    if engine == "auto":
        return "dense" if dense_supported(graph) else "legacy"
    if engine == "dense" and not dense_supported(graph):
        raise ValueError(
            "dense partition engine requires numpy and non-negative "
            "integer node labels"
        )
    return engine


@dataclass
class PhaseStats:
    """Measurements of one Stage I phase (benchmark E7/E8 inputs)."""

    phase: int
    parts_before: int
    parts_after: int
    cut_before: int
    cut_after: int
    max_height_before: int
    max_height_after: int
    fd_super_rounds: int
    cv_super_rounds: int
    max_marked_tree_height: int
    marked_weight: int
    contracted_weight: int

    @property
    def decay(self) -> float:
        """Cut-weight decay factor achieved by this phase."""
        if self.cut_before == 0:
            return 1.0
        return self.cut_after / self.cut_before


@dataclass
class Stage1Result:
    """Outcome of Stage I.

    Attributes:
        partition: the final partition (or the partition at rejection).
        success: False when some part obtained evidence of arboricity
            > alpha (the graph is certainly not planar).
        rejecting_parts: root ids holding the rejection evidence.
        phases: per-phase statistics.
        ledger: round-cost accounting for the whole stage.
        target_cut: the cut-size target that was used.
        theoretical_phase_cap: the a-priori phase bound t.
        dense_state: the final :class:`~repro.partition.dense.
            DensePartitionState` when the dense engine ran (``None``
            under the legacy engine).  Downstream consumers -- the
            Corollary 17 spanner builder and the application verifiers
            -- read the partition's parent/part-of arrays from here
            instead of round-tripping through :class:`Partition`.
    """

    partition: Partition
    success: bool
    rejecting_parts: Tuple[Any, ...]
    phases: List[PhaseStats]
    ledger: RoundLedger
    target_cut: float
    theoretical_phase_cap: int
    dense_state: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds charged for Stage I."""
        return self.ledger.total

    @property
    def final_cut(self) -> int:
        """Number of inter-part edges in the final partition."""
        return self.phases[-1].cut_after if self.phases else self.partition.cut_size()


def theoretical_phase_cap(m: int, target_cut: float, alpha: int) -> int:
    """A-priori number of phases t with m * decay^t <= target.

    Uses the conservative provable per-phase decay ``1 - 1/(36*alpha)``
    (heaviest-out-edge selection keeps >= 1/(3*alpha) of the weight, the
    marking keeps >= 1/3 of that, the parity choice >= 1/2).
    """
    if m == 0 or target_cut >= m:
        return 0
    decay = 1.0 - 1.0 / (36 * alpha)
    return int(math.ceil(math.log(max(target_cut, 0.5) / m) / math.log(decay)))


def select_heaviest_out_edges(
    aux: AuxiliaryGraph, out_edges: Dict[Any, List[Any]]
) -> Tuple[Dict[Any, Optional[Any]], Dict[Tuple[Any, Any], int]]:
    """Sub-step 1: each part selects its heaviest out-edge (ties: id order).

    Returns the pseudoforest ``{pid: parent pid or None}`` plus the weight
    of each selected edge keyed by (child, parent).  Because the
    orientation from the forest decomposition is acyclic, the result is in
    fact a forest.
    """
    selected: Dict[Any, Optional[Any]] = {}
    weights: Dict[Tuple[Any, Any], int] = {}
    for pid in aux.nodes():
        best: Optional[Any] = None
        best_weight = -1
        for nbr in out_edges.get(pid, ()):
            w = aux.weight(pid, nbr)
            if w > best_weight or (
                w == best_weight and (best is None or id_key(nbr) < id_key(best))
            ):
                best, best_weight = nbr, w
        selected[pid] = best
        if best is not None:
            weights[(pid, best)] = best_weight
    return selected, weights


def merge_parts(
    partition: Partition,
    aux: AuxiliaryGraph,
    contract_edges: List[Tuple[Any, Any]],
) -> Partition:
    """Sub-step 4: contract star edges, gluing spanning trees via connectors.

    For each contracted auxiliary edge (child part -> center part) the
    designated connector edge joins the child's spanning tree to the
    center's; the merged part keeps the center's root (paper
    Section 2.1.6: "notifying all nodes that r_h(i,j) is their new root").
    """
    star_children: Dict[Any, List[Any]] = {}
    absorbed = set()
    for child, center in contract_edges:
        star_children.setdefault(center, []).append(child)
        if child in absorbed:
            raise PartitionError(f"part {child!r} contracted twice")
        absorbed.add(child)
    overlap = absorbed & set(star_children)
    if overlap:
        raise PartitionError(f"contraction is not star-shaped at {overlap!r}")

    new_parts = []
    for pid, part in partition.parts.items():
        if pid in absorbed:
            continue
        children = star_children.get(pid, ())
        if not children:
            new_parts.append(part)
            continue
        nodes = set(part.nodes)
        tree_edges = list(part.tree_edges())
        for child_pid in children:
            child = partition.parts[child_pid]
            nodes.update(child.nodes)
            tree_edges.extend(child.tree_edges())
            u, v = aux.connector(child_pid, pid)
            tree_edges.append((u, v))
        new_parts.append(build_part(part.root, nodes, tree_edges))
    return Partition(partition.graph, new_parts)


def _charge_merging_overhead(
    ledger: RoundLedger,
    model: TreeCostModel,
    height: int,
    marking: MarkingResult,
) -> None:
    """Rounds for sub-steps 1, 2b, 3 and 4 (all but the CV coloring).

    Per Section 2.1.6: the heaviest-out-edge designation is a broadcast +
    convergecast over part trees; the marking decision needs per-color
    incoming weight sums (one convergecast carrying <= 3 values); the
    parity decision walks each marked tree (height <= 10) with one
    auxiliary hop per level, twice (levels down, weights up); the
    contraction notification is one broadcast + path flip.
    """
    relay = model.aux_message_relay(height)
    ledger.charge(2 * relay, "stage1.merge.designate", "sub-step 1: pick u_i^j")
    ledger.charge(
        model.convergecast(height, messages=3) + model.broadcast(height),
        "stage1.merge.marking",
        "sub-step 2b: per-color incoming weight sums",
    )
    tree_h = max(marking.tree_heights.values(), default=0)
    ledger.charge(
        (2 * tree_h + 2) * relay,
        "stage1.merge.parity",
        f"sub-step 3: levels+weights over marked trees (height {tree_h})",
    )
    ledger.charge(2 * relay, "stage1.merge.contract", "sub-step 4: re-root")


def partition_stage1(
    graph: nx.Graph,
    epsilon: float,
    alpha: int = 3,
    target_cut: Optional[float] = None,
    max_phases: Optional[int] = None,
    early_stop: bool = True,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    charge_full_budget: bool = True,
    engine: Optional[str] = None,
) -> Stage1Result:
    """Run Stage I on *graph*.

    Args:
        graph: simple undirected graph (int-labeled recommended).
        epsilon: distance parameter; the default cut target is
            ``epsilon * m / 2`` per Claim 3.
        alpha: arboricity bound to verify (3 = planar).
        target_cut: override the cut target (Theorem 3 uses
            ``epsilon * n``).
        max_phases: phase cap; defaults to the theoretical bound.
        early_stop: stop as soon as the target is met (see module doc).
        ledger: optional shared ledger (a fresh one is made otherwise).
        cost_model: emulation cost formulas.
        charge_full_budget: charge the full O(log n) forest-decomposition
            schedule per phase (paper behavior).
        engine: ``"auto"`` (default; CSR-native when supported),
            ``"dense"``, or ``"legacy"`` -- see :func:`resolve_engine`.
            Engines produce identical results; only wall-clock differs.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    m = graph.number_of_edges()
    if target_cut is None:
        target_cut = epsilon * m / 2
    ledger = ledger if ledger is not None else RoundLedger()
    model = cost_model or TreeCostModel()
    cap = theoretical_phase_cap(m, target_cut, alpha)
    if max_phases is None:
        max_phases = cap

    if resolve_engine(engine, graph) == "dense":
        return _partition_stage1_dense(
            graph,
            alpha=alpha,
            target_cut=target_cut,
            max_phases=max_phases,
            early_stop=early_stop,
            ledger=ledger,
            model=model,
            charge_full_budget=charge_full_budget,
            cap=cap,
        )

    partition = Partition.singletons(graph)
    phases: List[PhaseStats] = []
    cut = m  # singletons: every edge is a cut edge

    for phase_index in range(1, max_phases + 1):
        if cut == 0 or (early_stop and cut <= target_cut):
            break
        aux = AuxiliaryGraph(partition)
        height = partition.max_height()

        fd = forest_decomposition_emulated(
            aux,
            alpha,
            ledger=ledger,
            cost_model=model,
            charge_full_budget=charge_full_budget,
        )
        if not fd.success:
            return Stage1Result(
                partition=partition,
                success=False,
                rejecting_parts=fd.rejecting_parts,
                phases=phases,
                ledger=ledger,
                target_cut=target_cut,
                theoretical_phase_cap=cap,
            )

        out_edge, weights = select_heaviest_out_edges(aux, fd.out_edges)
        colors, cv_rounds = cole_vishkin_emulated(
            out_edge, ledger=ledger, cost_model=model, height=height
        )
        marking = mark_and_choose(out_edge, weights, colors)
        _charge_merging_overhead(ledger, model, height, marking)

        new_partition = merge_parts(partition, aux, marking.contract_edges)
        new_cut = new_partition.cut_size()
        phases.append(
            PhaseStats(
                phase=phase_index,
                parts_before=partition.size,
                parts_after=new_partition.size,
                cut_before=cut,
                cut_after=new_cut,
                max_height_before=height,
                max_height_after=new_partition.max_height(),
                fd_super_rounds=fd.super_rounds,
                cv_super_rounds=cv_rounds,
                max_marked_tree_height=max(
                    marking.tree_heights.values(), default=0
                ),
                marked_weight=marking.marked_weight,
                contracted_weight=marking.contracted_weight,
            )
        )
        if new_cut >= cut and cut > 0:
            raise PartitionError(
                f"phase {phase_index} made no progress (cut {cut} -> {new_cut})"
            )
        partition, cut = new_partition, new_cut

    return Stage1Result(
        partition=partition,
        success=True,
        rejecting_parts=(),
        phases=phases,
        ledger=ledger,
        target_cut=target_cut,
        theoretical_phase_cap=cap,
    )


def _partition_stage1_dense(
    graph: nx.Graph,
    alpha: int,
    target_cut: float,
    max_phases: int,
    early_stop: bool,
    ledger: RoundLedger,
    model: TreeCostModel,
    charge_full_budget: bool,
    cap: int,
) -> Stage1Result:
    """The Stage I phase loop on the CSR-native dense state.

    Same control flow and decision layer as the legacy loop above; the
    per-phase O(m) sweeps (auxiliary build, cut counting, merges) run on
    the compiled topology's flat arrays.  Part ids are dense indices
    internally; Cole-Vishkin seeds from the original ids so colorings --
    and therefore every contraction -- match the legacy engine bit for
    bit (asserted by the differential suite).
    """
    import numpy as _np

    from ..congest.topology import compile_topology
    from .dense import (
        DensePartitionState,
        cole_vishkin_dense,
        forest_decomposition_dense,
        mark_and_choose_dense,
        orient_and_select_dense,
    )

    topology = compile_topology(graph)
    ids = topology.nodes
    state = DensePartitionState(topology)
    n = topology.n
    m = graph.number_of_edges()
    phases: List[PhaseStats] = []
    cut = m
    tracer = get_tracer()

    for phase_index in range(1, max_phases + 1):
        if cut == 0 or (early_stop and cut <= target_cut):
            break
        with tracer.span("stage1.aux_build", phase=phase_index, parts=state.size):
            aux = state.build_aux()
        height = state.max_height()
        pids = aux.pids

        with tracer.span("stage1.forest", phase=phase_index, aux_edges=aux.edge_count()):
            success, active, inactive_round, fd_super_rounds = (
                forest_decomposition_dense(
                    aux,
                    alpha,
                    n_graph=n,
                    height=height,
                    ledger=ledger,
                    cost_model=model,
                    charge_full_budget=charge_full_budget,
                )
            )
        if not success:
            rejecting = tuple(
                sorted(ids[pids[c]] for c in _np.nonzero(active)[0].tolist())
            )
            return Stage1Result(
                partition=state.to_partition(graph),
                success=False,
                rejecting_parts=rejecting,
                phases=phases,
                ledger=ledger,
                target_cut=target_cut,
                theoretical_phase_cap=cap,
                dense_state=state,
            )

        # Sub-steps 1-4 on compact arrays: heaviest-out-edge selection,
        # vectorized Cole-Vishkin, CHW marking, star contraction.
        with tracer.span("stage1.cv", phase=phase_index):
            parent_c, weight_c = orient_and_select_dense(aux, inactive_round)
            init_colors = _np.fromiter(
                (ids[pid] for pid in pids), dtype=_np.int64, count=len(pids)
            )
            colors, cv_rounds = cole_vishkin_dense(
                parent_c,
                init_colors,
                ledger=ledger,
                cost_model=model,
                height=height,
            )
        with tracer.span("stage1.marking", phase=phase_index):
            marking = mark_and_choose_dense(parent_c, weight_c, colors)
            _charge_merging_overhead(ledger, model, height, marking)

            parts_before = state.size
            state.merge(
                [(pids[c], pids[p]) for c, p in marking.contract_edges], aux
            )
            new_cut = state.cut_size()
        phases.append(
            PhaseStats(
                phase=phase_index,
                parts_before=parts_before,
                parts_after=state.size,
                cut_before=cut,
                cut_after=new_cut,
                max_height_before=height,
                max_height_after=state.max_height(),
                fd_super_rounds=fd_super_rounds,
                cv_super_rounds=cv_rounds,
                max_marked_tree_height=max(
                    marking.tree_heights.values(), default=0
                ),
                marked_weight=marking.marked_weight,
                contracted_weight=marking.contracted_weight,
            )
        )
        if new_cut >= cut and cut > 0:
            raise PartitionError(
                f"phase {phase_index} made no progress (cut {cut} -> {new_cut})"
            )
        cut = new_cut

    return Stage1Result(
        partition=state.to_partition(graph),
        success=True,
        rejecting_parts=(),
        phases=phases,
        ledger=ledger,
        target_cut=target_cut,
        theoretical_phase_cap=cap,
        dense_state=state,
    )
