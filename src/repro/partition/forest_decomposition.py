"""Emulated Barenboim-Elkin forest decomposition on auxiliary graphs.

This is the same deactivation process as
:mod:`repro.congest.programs.forest_decomposition`, but executed on the
contracted graph ``G_i`` with round costs charged through the ledger per
the paper's super-round emulation (Section 2.1.5): each super-round costs
one boundary exchange plus a convergecast carrying at most ``3*alpha + 1``
aggregated (root-id, count) messages plus a broadcast, over part trees of
the current maximum height.

Cross-validated against the simulated protocol in the test-suite: on
phase 1 (singleton parts) the two produce identical deactivation
schedules and orientations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..congest.ledger import RoundLedger, TreeCostModel
from ..congest.programs.forest_decomposition import barenboim_elkin_round_budget
from ..graphs.utils import id_key
from .auxiliary import AuxiliaryGraph


@dataclass
class ForestDecompositionResult:
    """Outcome of the emulated deactivation process on one G_i.

    Attributes:
        success: True when every auxiliary node deactivated in time.
        rejecting_parts: part ids still active after the budget --
            distributed *evidence* that the arboricity exceeds alpha,
            hence that G is not planar (Definition 2 / Claim 3).
        inactive_round: deactivation super-round per part id.
        out_edges: acyclic orientation with out-degree <= 3*alpha.
        super_rounds: budget of super-rounds charged (the certification
            requires executing the full schedule even if deactivation
            finishes early -- nodes cannot detect global quiescence).
    """

    success: bool
    rejecting_parts: Tuple[Any, ...]
    inactive_round: Dict[Any, Optional[int]]
    out_edges: Dict[Any, List[Any]]
    super_rounds: int


def forest_decomposition_emulated(
    aux: AuxiliaryGraph,
    alpha: int,
    budget: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    charge_full_budget: bool = True,
    n_graph: Optional[int] = None,
    height: Optional[int] = None,
) -> ForestDecompositionResult:
    """Run the deactivation process on *aux*; orient its edges.

    Args:
        aux: the auxiliary graph G_i (any object exposing the
            :class:`AuxiliaryGraph` query interface, e.g. the CSR-native
            :class:`~repro.partition.dense.DenseAuxiliaryGraph`).
        alpha: arboricity bound (3 for planar graphs).
        budget: number of super-rounds; defaults to the certified
            ``O(log n)`` bound for the *underlying* node count, matching
            the paper (nodes know n, not the number of parts).
        ledger: round ledger to charge (optional).
        cost_model: emulation cost formulas.
        charge_full_budget: charge all budgeted super-rounds (paper
            behavior: the schedule length is fixed a priori).  When False,
            only executed super-rounds are charged.
        n_graph: underlying node count; defaults to
            ``aux.partition.graph.number_of_nodes()`` (dense callers pass
            it explicitly -- their aux carries no partition object).
        height: current maximum part height for the ledger charge;
            defaults to ``aux.partition.max_height()``.
    """
    if n_graph is None:
        n_graph = aux.partition.graph.number_of_nodes()
    if budget is None:
        budget = barenboim_elkin_round_budget(n_graph)
    threshold = 3 * alpha

    active = set(aux.nodes())
    active_degree = {pid: aux.degree(pid) for pid in aux.nodes()}
    inactive_round: Dict[Any, Optional[int]] = {pid: None for pid in aux.nodes()}
    executed = 0
    for super_round in range(1, budget + 1):
        if not active:
            break
        executed = super_round
        deactivating = [pid for pid in active if active_degree[pid] <= threshold]
        if not deactivating:
            # No node can ever deactivate again: the active subgraph has
            # min degree > 3*alpha, certifying arboricity > alpha.
            executed = budget
            break
        for pid in deactivating:
            inactive_round[pid] = super_round
        active.difference_update(deactivating)
        for pid in deactivating:
            for nbr in aux.neighbors(pid):
                if nbr in active:
                    active_degree[nbr] -= 1

    rejecting = tuple(sorted(active, key=id_key))
    out_edges = _orient(aux, inactive_round)

    if ledger is not None:
        model = cost_model or TreeCostModel()
        if height is None:
            height = aux.partition.max_height()
        per_super_round = model.super_round(height, alpha)
        charged_rounds = budget if charge_full_budget else executed
        ledger.charge(
            charged_rounds * per_super_round,
            "stage1.forest_decomposition",
            f"{charged_rounds} super-rounds x {per_super_round} rounds "
            f"(height {height}, alpha {alpha})",
        )

    return ForestDecompositionResult(
        success=not rejecting,
        rejecting_parts=rejecting,
        inactive_round=inactive_round,
        out_edges=out_edges,
        super_rounds=budget if charge_full_budget else executed,
    )


def _orient(
    aux: AuxiliaryGraph, inactive_round: Dict[Any, Optional[int]]
) -> Dict[Any, List[Any]]:
    """Orient every auxiliary edge by deactivation time (ties: id order).

    Edges incident to never-deactivated nodes are oriented toward them
    (they deactivate "later"); edges between two active nodes are dropped
    (the process rejected anyway).
    """
    out: Dict[Any, List[Any]] = {pid: [] for pid in aux.nodes()}
    for pa, pb in aux.edge_parts():
        ra, rb = inactive_round[pa], inactive_round[pb]
        if ra is None and rb is None:
            continue
        if rb is None:
            out[pa].append(pb)
        elif ra is None:
            out[pb].append(pa)
        elif ra < rb or (ra == rb and id_key(pa) < id_key(pb)):
            out[pa].append(pb)
        else:
            out[pb].append(pa)
    return out
