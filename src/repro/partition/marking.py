"""CHW shallow-subtree marking and even/odd contraction choice.

Sub-steps 2b-4 of the merging step (paper Section 2.1.2, after Czygrinow,
Hanckowiak & Wawrzyniak).  Input: a directed pseudoforest ``F_i`` over
part ids (each node has at most one out-edge) with auxiliary edge
weights, plus a proper 3-coloring.  The marking rules select a set
``T_i`` of *shallow* subtrees (Claim 1: height at most 10, total weight
at least half of ``w(F_i)``); each tree's root then compares the total
weight of "even" edges (child at even level) against "odd" edges and
contracts the heavier class, producing vertex-disjoint *stars*.

Claim 15: even on pseudoforests (directed cycles possible), the marked
subgraph is always a forest; this is asserted at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import PartitionError


@dataclass
class MarkingResult:
    """Outcome of the marking + contraction choice.

    Attributes:
        marked_edges: the selected subtree edges, as (child, parent).
        contract_edges: the star edges chosen for contraction.
        tree_heights: height of each marked subtree, keyed by its root.
        marked_weight: total weight of marked edges, w(T_i).
        contracted_weight: total weight of contracted edges.
    """

    marked_edges: List[Tuple[Any, Any]]
    contract_edges: List[Tuple[Any, Any]]
    tree_heights: Dict[Any, int]
    marked_weight: int
    contracted_weight: int


def mark_and_choose(
    out_edge: Dict[Any, Optional[Any]],
    weight: Dict[Tuple[Any, Any], int],
    colors: Dict[Any, int],
) -> MarkingResult:
    """Run sub-steps 2b-4 on the pseudoforest ``{v: out_edge[v]}``.

    Args:
        out_edge: each node's selected out-neighbor (None when absent).
        weight: weight of each pseudoforest edge keyed by (child, parent).
        colors: proper 3-coloring with values {0, 1, 2}; the paper's
            color classes {1, 2, 3} map to {0, 1, 2} here (class "3" = 2).
    """
    incoming: Dict[Any, List[Any]] = {v: [] for v in out_edge}
    for v, p in out_edge.items():
        if p is not None:
            if p not in incoming:
                raise PartitionError(f"out-edge target {p!r} not a pseudoforest node")
            incoming[p].append(v)

    marked: set = set()
    color_one, color_two, color_three = 0, 1, 2

    def participates(v: Any) -> bool:
        # Nodes with color None abstained from the randomized coloring
        # (Remark 1); they make no decisions and their edges stay
        # unmarked, so the marked graph is the marked graph of the
        # properly-colored subgraph and Claim 15 applies unchanged.
        return colors[v] is not None

    for u in out_edge:
        if not participates(u):
            continue
        color = colors[u]
        if color == color_one:
            p = out_edge[u]
            considered = [v for v in incoming[u] if participates(v)]
            w_in = sum(weight[(v, u)] for v in considered)
            if p is not None and participates(p) and weight[(u, p)] >= w_in:
                marked.add((u, p))
            else:
                marked.update((v, u) for v in considered)
        elif color == color_two:
            p = out_edge[u]
            in3 = [v for v in incoming[u] if colors[v] == color_three]
            w_in3 = sum(weight[(v, u)] for v in in3)
            if (
                p is not None
                and colors[p] == color_three
                and weight[(u, p)] >= w_in3
            ):
                marked.add((u, p))
            else:
                marked.update((v, u) for v in in3)

    return _choose_parity(out_edge, weight, marked)


def _choose_parity(out_edge, weight, marked) -> MarkingResult:
    """Compute levels per marked tree and contract the heavier parity."""
    marked_children: Dict[Any, List[Any]] = {v: [] for v in out_edge}
    marked_out: Dict[Any, Optional[Any]] = {v: None for v in out_edge}
    for child, parent in marked:
        marked_children[parent].append(child)
        marked_out[child] = parent

    # Roots of marked trees: nodes with a marked incident edge but no
    # marked out-edge.  Claim 15 guarantees there are no marked cycles.
    touched = {v for e in marked for v in e}
    roots = [v for v in touched if marked_out[v] is None]

    level: Dict[Any, int] = {}
    tree_heights: Dict[Any, int] = {}
    for root in roots:
        stack = [(root, 0)]
        height = 0
        while stack:
            v, depth = stack.pop()
            if v in level:
                raise PartitionError("marked subgraph is not a forest (Claim 15)")
            level[v] = depth
            height = max(height, depth)
            for child in marked_children[v]:
                stack.append((child, depth + 1))
        tree_heights[root] = height
    if len(level) != len(touched):
        raise PartitionError("marked subgraph contains a cycle (Claim 15)")

    # Per-tree parity decision; trees are identified by their root.
    tree_root: Dict[Any, Any] = {}
    for root in roots:
        stack = [root]
        while stack:
            v = stack.pop()
            tree_root[v] = root
            stack.extend(marked_children[v])

    parity_weight: Dict[Any, List[int]] = {root: [0, 0] for root in roots}
    for child, parent in marked:
        parity_weight[tree_root[parent]][level[child] % 2] += weight[(child, parent)]

    contract: List[Tuple[Any, Any]] = []
    contracted_weight = 0
    for child, parent in marked:
        w0, w1 = parity_weight[tree_root[parent]]
        chosen_parity = 0 if w0 >= w1 else 1
        if level[child] % 2 == chosen_parity:
            contract.append((child, parent))
            contracted_weight += weight[(child, parent)]

    _assert_stars(contract)
    return MarkingResult(
        marked_edges=sorted(marked, key=repr),
        contract_edges=sorted(contract, key=repr),
        tree_heights=tree_heights,
        marked_weight=sum(weight[e] for e in marked),
        contracted_weight=contracted_weight,
    )


def _assert_stars(contract: List[Tuple[Any, Any]]) -> None:
    """Contracted edges must form stars: children merge into centers."""
    children = {c for c, _p in contract}
    centers = {p for _c, p in contract}
    overlap = children & centers
    if overlap:
        raise PartitionError(
            f"contraction edges do not form stars; chained nodes: {overlap!r}"
        )
