"""Structured tracing: nested timed spans with a multi-process JSONL sink.

The runtime runs fleets -- process pools, asyncio worker subprocesses,
remote TCP workers that join and die mid-batch -- and when a sweep
stalls there is no way to see *where time went*.  This module is the
zero-dependency core every layer emits into: a :class:`Tracer` produces
nested timed **spans** (sweep -> shard -> job -> stage/round) and
point-in-time **events** (worker connects, requeues, heartbeats),
each carrying structured attributes.

Everything is **off by default**.  Enablement is environment-driven so
it crosses process boundaries for free (pool workers fork/spawn with
the parent's environment, async workers inherit it explicitly, remote
workers adopt it from the server's ``welcome`` frame):

* ``REPRO_TELEMETRY=1`` turns the tracer on (in-memory buffering when
  no sink directory is set -- useful for tests and overhead probes);
* ``REPRO_TRACE_DIR=<dir>`` turns it on *and* sinks every span/event
  as one JSON line into ``<dir>/trace-<token>.jsonl``, where
  ``<token>`` is unique per process -- concurrent writers never share
  a file, so no cross-process locking is needed and the merged trace
  is simply every ``trace-*.jsonl`` in the directory;
* ``REPRO_TRACE_PARENT=<span id>`` seeds the parent of root spans, so
  a worker process's job spans link under the orchestrator's sweep
  span across the process boundary.

Disabled-path discipline: every hot seam guards with one global read
(:func:`telemetry_enabled`) and the gate in E15 holds the disabled
overhead under 3%.  Span ids are ``<token>.<seq>`` -- globally unique
without coordination.  Durations come from ``perf_counter`` and are
clamped at zero (a negative duration can never be emitted); start
timestamps are wall-clock so spans from different hosts align.

Fork safety: a forked child inherits the parent's tracer object; the
first emit in the child notices the pid change and re-initializes its
token, its sink file, and its span stacks, so parent and child never
interleave writes into one file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"
"""Truthy values ("1", "true", "yes", "on") enable the tracer."""

TRACE_DIR_ENV_VAR = "REPRO_TRACE_DIR"
"""Sink directory for per-process ``trace-<token>.jsonl`` files."""

TRACE_PARENT_ENV_VAR = "REPRO_TRACE_PARENT"
"""Span id adopted as the parent of this process's root spans."""

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    if os.environ.get(TRACE_DIR_ENV_VAR):
        return True
    return os.environ.get(TELEMETRY_ENV_VAR, "").lower() in _TRUTHY


class Span:
    """One timed span; a context manager that emits on exit.

    ``id`` is stable from construction, so instrumentation can tag
    records with it while the span is still open.  ``set`` attaches
    attributes after entry (e.g. an outcome computed inside the span).
    """

    __slots__ = (
        "tracer", "name", "id", "parent", "attrs",
        "_t0", "_start", "duration",
    )

    def __init__(self, tracer: "Tracer", name: str, parent: Optional[str],
                 attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.id = tracer._next_id()
        self.parent = parent
        self.attrs = attrs
        self._t0 = 0.0
        self._start = 0.0
        self.duration = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._t0 = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Clamped at zero: a clock hiccup can never emit a negative
        # duration (the BENCH telemetry block relies on this).
        self.duration = max(0.0, time.perf_counter() - self._start)
        self.tracer._pop(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._emit_span(self)


class _NullSpan:
    """The disabled tracer's span: no-op, reusable, ``id`` is ``None``."""

    __slots__ = ()
    id = None
    parent = None
    duration = 0.0

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span/event recorder with a JSONL sink.

    One instance per process (see :func:`get_tracer`); thread-safe.
    Spans nest per *thread* (a thread-local stack supplies the default
    parent); root spans adopt ``REPRO_TRACE_PARENT`` so traces stay
    coherent across process boundaries.
    """

    def __init__(self, enabled: bool, trace_dir: Optional[str] = None):
        self.enabled = enabled
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self.span_count = 0
        self.event_count = 0
        self.traced_seconds = 0.0
        self._lock = threading.Lock()
        self._buffer: List[Dict[str, Any]] = []
        self._init_process()

    # -- process identity ------------------------------------------------------

    def _init_process(self) -> None:
        self._pid = os.getpid()
        self.token = f"{self._pid:x}-{os.urandom(3).hex()}"
        self._seq = 0
        self._file = None
        self._local = threading.local()

    def _ensure_process(self) -> None:
        if os.getpid() != self._pid:
            # Forked child: fresh token, fresh sink, fresh span stacks
            # (the parent's open handle must never be written through).
            self._lock = threading.Lock()
            self._init_process()

    def _next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{self.token}.{self._seq}"

    # -- span stack ------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(span)

    def current_span_id(self) -> Optional[str]:
        """The innermost open span of this thread, else the env parent."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].id
        return os.environ.get(TRACE_PARENT_ENV_VAR) or None

    # -- public API ------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a nested timed span (context manager).

        Returns the reusable null span when disabled, so call sites pay
        one attribute check and nothing else.
        """
        if not self.enabled:
            return _NULL_SPAN
        self._ensure_process()
        return Span(self, name, self.current_span_id(), attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time event under the current span."""
        if not self.enabled:
            return
        self._ensure_process()
        self._write(
            {
                "ev": "event",
                "name": name,
                "id": self._next_id(),
                "parent": self.current_span_id(),
                "pid": self._pid,
                "tid": threading.current_thread().name,
                "t0": round(time.time(), 6),
                "attrs": attrs,
            }
        )
        self.event_count += 1

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the in-memory buffer (no-sink tracers)."""
        with self._lock:
            buffered, self._buffer = self._buffer, []
        return buffered

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None

    # -- sink ------------------------------------------------------------------

    def _emit_span(self, span: Span) -> None:
        self._ensure_process()
        self._write(
            {
                "ev": "span",
                "name": span.name,
                "id": span.id,
                "parent": span.parent,
                "pid": self._pid,
                "tid": threading.current_thread().name,
                "t0": round(span._t0, 6),
                "dur": round(span.duration, 6),
                "attrs": span.attrs,
            }
        )
        self.span_count += 1
        self.traced_seconds += span.duration

    def _write(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":"), default=str)
        with self._lock:
            if self.trace_dir is None:
                self._buffer.append(payload)
                return
            if self._file is None:
                try:
                    self.trace_dir.mkdir(parents=True, exist_ok=True)
                    self._file = open(
                        self.trace_dir / f"trace-{self.token}.jsonl", "a"
                    )
                except OSError:
                    # Sink unavailable (read-only fs, vanished dir):
                    # degrade to buffering rather than crash the job.
                    self.trace_dir = None
                    self._buffer.append(payload)
                    return
            try:
                self._file.write(line + "\n")
                self._file.flush()
            except OSError:
                pass


_RESOLVED: Optional[Tracer] = None
_RESOLVE_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process tracer, resolved lazily from the environment.

    The resolution is cached: toggling the env vars mid-process takes
    effect after :func:`reset` (tests) or :func:`configure` (the CLI).
    """
    tracer = _RESOLVED
    if tracer is None:
        with _RESOLVE_LOCK:
            tracer = _RESOLVED
            if tracer is None:
                tracer = Tracer(
                    _env_enabled(), os.environ.get(TRACE_DIR_ENV_VAR)
                )
                globals()["_RESOLVED"] = tracer
    return tracer


def telemetry_enabled() -> bool:
    """One-read guard for hot seams: is the tracer on?"""
    tracer = _RESOLVED
    if tracer is None:
        tracer = get_tracer()
    return tracer.enabled


def reset() -> None:
    """Drop the cached tracer (and metrics); next use re-reads the env."""
    global _RESOLVED
    with _RESOLVE_LOCK:
        if _RESOLVED is not None:
            _RESOLVED.close()
        _RESOLVED = None
    from .metrics import reset_metrics

    reset_metrics()


def configure(
    trace_dir: Optional[str] = None,
    parent: Optional[str] = None,
    enabled: bool = True,
) -> Tracer:
    """Enable telemetry for this process *and its children*.

    Writes the environment knobs (so pool/async workers inherit them)
    and rebuilds the tracer.  ``enabled=False`` clears everything.
    """
    if enabled:
        os.environ[TELEMETRY_ENV_VAR] = "1"
        if trace_dir is not None:
            os.environ[TRACE_DIR_ENV_VAR] = str(trace_dir)
            try:
                # Eager creation: adopters probe the directory's
                # existence (adopt_trace), and the probe must not race
                # this process's first lazy write.
                Path(trace_dir).mkdir(parents=True, exist_ok=True)
            except OSError:
                pass  # the sink degrades to buffering on first write
    else:
        os.environ.pop(TELEMETRY_ENV_VAR, None)
        os.environ.pop(TRACE_DIR_ENV_VAR, None)
        os.environ.pop(TRACE_PARENT_ENV_VAR, None)
    if parent is not None:
        os.environ[TRACE_PARENT_ENV_VAR] = parent
    reset()
    return get_tracer()


def adopt_trace(info: Any) -> bool:
    """Adopt a trace context advertised by a remote sweep server.

    *info* is the ``welcome`` frame's ``trace`` object (``{"dir": ...,
    "parent": ...}``).  Adoption requires the directory to be visible
    on this host (shared filesystem) -- a worker on another machine
    quietly declines and runs untraced rather than forking a local
    trace nobody will merge.  Returns whether adoption happened.
    """
    if not isinstance(info, dict):
        return False
    trace_dir = info.get("dir")
    if not trace_dir:
        return False
    try:
        if not Path(trace_dir).is_dir():
            return False
    except OSError:
        return False
    configure(trace_dir=str(trace_dir), parent=info.get("parent"))
    return True
