"""Fleet metrics: counters, gauges, and histograms with a JSON registry.

Spans answer *where one run's time went*; metrics answer *how the
fleet is doing* -- queue depth, cache hit ratio, store bytes
reclaimed, heartbeat RTT, requeue counts, per-worker utilization,
CostModel prediction error.  The registry is a process-local
:class:`Metrics` singleton (:func:`get_metrics`); instrumented seams
guard every update with :func:`~repro.telemetry.spans.telemetry_enabled`
so the disabled path costs one global read.

Snapshotting: :meth:`Metrics.snapshot` renders the whole registry as a
plain JSON-safe dict; :meth:`Metrics.flush_to` writes it as
``metrics-<token>.json`` next to the process's trace file, so a merged
trace directory carries one metrics registry per participating process
(orchestrator and each worker).

Metric names are dotted strings (``remote.requeues``,
``store.bytes_reclaimed``, ``scheduler.cost_rel_error``); the full
taxonomy is tabulated in ARCHITECTURE.md's Telemetry section.

Histograms use fixed geometric bucket boundaries (powers of 10 from
1e-4 to 1e3) -- coarse, but dependency-free, mergeable across
processes by summing, and wide enough to cover both sub-millisecond
heartbeat RTTs and multi-minute job latencies on one scale.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional

HISTOGRAM_BOUNDS = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
)
"""Upper bucket bounds (``le``); values above the last go to ``+inf``."""


class Histogram:
    """Count/total/min/max plus geometric bucket counts."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            value = 0.0  # durations/RTTs: negatives are clock artifacts
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for position, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[position] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> Dict[str, Any]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(mean, 6),
            "min": round(self.min, 6) if self.min is not None else None,
            "max": round(self.max, 6) if self.max is not None else None,
            "bounds": list(HISTOGRAM_BOUNDS),
            "buckets": list(self.buckets),
        }


class Metrics:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, delta: float = 1.0) -> None:
        """Increment counter *name* (monotone; use gauges for levels)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to the current level (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name*."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """The registry as one JSON-safe dict (sorted names)."""
        with self._lock:
            return {
                "counters": {
                    name: (
                        int(value) if float(value).is_integer() else value
                    )
                    for name, value in sorted(self._counters.items())
                },
                "gauges": {
                    name: value for name, value in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def flush_to(self, directory) -> Optional[Path]:
        """Write the snapshot as ``metrics-<token>.json`` under *directory*.

        Named by the tracer's process token so concurrent processes
        never clobber each other.  Returns the path, or ``None`` when
        the registry is empty or the directory is unwritable.
        """
        snapshot = self.snapshot()
        if not any(snapshot.values()):
            return None
        from .spans import get_tracer

        try:
            target = Path(directory)
            target.mkdir(parents=True, exist_ok=True)
            path = target / f"metrics-{get_tracer().token}.json"
            path.write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            )
            return path
        except OSError:
            return None

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_METRICS = Metrics()


def get_metrics() -> Metrics:
    """The process metrics registry (always available; gating is the
    caller's job via :func:`~repro.telemetry.spans.telemetry_enabled`)."""
    return _METRICS


def reset_metrics() -> None:
    """Clear the registry (called by :func:`repro.telemetry.reset`)."""
    _METRICS.clear()


def read_metrics(directory) -> Dict[str, Dict[str, Any]]:
    """Load every ``metrics-*.json`` under *directory*, keyed by token."""
    registries: Dict[str, Dict[str, Any]] = {}
    try:
        paths = sorted(Path(directory).glob("metrics-*.json"))
    except OSError:
        return registries
    for path in paths:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            token = path.stem.split("-", 1)[1] if "-" in path.stem else path.stem
            registries[token] = payload
    return registries
