"""Observability core: structured tracing, fleet metrics, dashboards.

Zero-dependency telemetry every runtime layer emits into -- off by
default, enabled with ``REPRO_TELEMETRY=1`` / ``REPRO_TRACE_DIR`` /
``sweep --trace DIR``:

* :mod:`repro.telemetry.spans` -- the :class:`Tracer`: nested timed
  spans (sweep -> shard -> job -> round) and point events with a
  per-process JSONL sink that merges across process boundaries;
* :mod:`repro.telemetry.metrics` -- counters / gauges / histograms
  (queue depth, cache hit ratio, heartbeat RTT, requeues, CostModel
  error) snapshotted to a JSON registry per process;
* :mod:`repro.telemetry.analysis` -- trace readers: merge, Chrome
  ``trace_event`` export, hotspot ranking, span trees (the
  ``repro-planarity trace`` CLI family);
* :mod:`repro.telemetry.dashboard` -- the live ``sweep --progress``
  line (workers, throughput, CostModel ETA, straggler flags).

Typical use::

    from repro.telemetry import configure, get_tracer

    configure(trace_dir="/tmp/trace")        # this process + children
    with get_tracer().span("phase", kind="demo"):
        ...
    # then: repro-planarity trace view /tmp/trace
"""

from .analysis import (
    chrome_trace,
    read_events,
    render_tree,
    span_tree,
    top_spans,
)
from .dashboard import STRAGGLER_FACTOR, SweepProgress
from .metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    Metrics,
    get_metrics,
    read_metrics,
    reset_metrics,
)
from .spans import (
    TELEMETRY_ENV_VAR,
    TRACE_DIR_ENV_VAR,
    TRACE_PARENT_ENV_VAR,
    Span,
    Tracer,
    adopt_trace,
    configure,
    get_tracer,
    reset,
    telemetry_enabled,
)

__all__ = [
    "HISTOGRAM_BOUNDS",
    "Histogram",
    "Metrics",
    "STRAGGLER_FACTOR",
    "Span",
    "SweepProgress",
    "TELEMETRY_ENV_VAR",
    "TRACE_DIR_ENV_VAR",
    "TRACE_PARENT_ENV_VAR",
    "Tracer",
    "adopt_trace",
    "chrome_trace",
    "configure",
    "get_metrics",
    "get_tracer",
    "read_events",
    "read_metrics",
    "render_tree",
    "reset",
    "reset_metrics",
    "span_tree",
    "telemetry_enabled",
    "top_spans",
]
