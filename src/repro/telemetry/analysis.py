"""Trace-file analysis: merge, Chrome export, hotspot ranking, trees.

A trace directory holds one ``trace-<token>.jsonl`` per participating
process (orchestrator, pool workers, async workers, remote workers on
a shared filesystem).  Merging is trivial by construction -- read every
file, sort by start time -- because span ids are globally unique and
parent links cross process boundaries via ``REPRO_TRACE_PARENT`` /
the remote ``welcome`` frame's trace context.

Three consumers sit on the merged event list:

* :func:`chrome_trace` renders the ``trace_event`` JSON array format
  that ``chrome://tracing`` and Perfetto load directly (complete
  ``"X"`` events for spans, instant ``"i"`` events for points);
* :func:`top_spans` aggregates span durations by ``(name, kind)`` --
  the ``trace top`` CLI sorts it total-descending, so the slowest job
  kind ranks first;
* :func:`span_tree` / :func:`render_tree` rebuild the parent/child
  forest for ``trace view``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple


def read_events(directory) -> List[Dict[str, Any]]:
    """Every span/event line from every ``trace-*.jsonl``, by start time.

    Torn or corrupt lines (a worker killed mid-write) are skipped, not
    fatal -- same durability stance as the sharded store.
    """
    events: List[Dict[str, Any]] = []
    root = Path(directory)
    for path in sorted(root.glob("trace-*.jsonl")):
        try:
            with open(path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(payload, dict) and payload.get("ev") in (
                        "span",
                        "event",
                    ):
                        events.append(payload)
        except OSError:
            continue
    events.sort(key=lambda ev: (ev.get("t0", 0.0), str(ev.get("id"))))
    return events


def chrome_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Render merged events in Chrome ``trace_event`` JSON format.

    Timestamps are microseconds since the earliest event, so the
    viewer's timeline starts at zero.  Span/event ids and parents ride
    along in ``args`` for cross-referencing with the raw trace.
    """
    events = list(events)
    origin = min((ev.get("t0", 0.0) for ev in events), default=0.0)
    out: List[Dict[str, Any]] = []
    for ev in events:
        args = dict(ev.get("attrs") or {})
        args["id"] = ev.get("id")
        if ev.get("parent"):
            args["parent"] = ev["parent"]
        entry: Dict[str, Any] = {
            "name": ev.get("name", "?"),
            "cat": ev.get("ev", "span"),
            "ts": round((ev.get("t0", 0.0) - origin) * 1e6, 1),
            "pid": ev.get("pid", 0),
            "tid": ev.get("tid", "main"),
            "args": args,
        }
        if ev.get("ev") == "span":
            entry["ph"] = "X"
            entry["dur"] = round(ev.get("dur", 0.0) * 1e6, 1)
        else:
            entry["ph"] = "i"
            entry["s"] = "p"  # process-scoped instant
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def top_spans(
    events: Iterable[Dict[str, Any]], name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Aggregate span durations by ``(span name, kind attribute)``.

    Rows are sorted by total seconds descending (slowest group first),
    which is what ``trace top`` prints.  *name* restricts the
    aggregation to one span name (e.g. ``"job"``).
    """
    groups: Dict[Tuple[str, str], List[float]] = {}
    for ev in events:
        if ev.get("ev") != "span":
            continue
        if name is not None and ev.get("name") != name:
            continue
        attrs = ev.get("attrs") or {}
        key = (str(ev.get("name", "?")), str(attrs.get("kind", "-")))
        groups.setdefault(key, []).append(float(ev.get("dur", 0.0)))
    rows = [
        {
            "name": span_name,
            "kind": kind,
            "count": len(durations),
            "total_s": round(sum(durations), 6),
            "mean_s": round(sum(durations) / len(durations), 6),
            "max_s": round(max(durations), 6),
        }
        for (span_name, kind), durations in groups.items()
    ]
    rows.sort(key=lambda row: (-row["total_s"], row["name"], row["kind"]))
    return rows


def span_tree(
    events: Iterable[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, List[Dict[str, Any]]]]:
    """Build the span/event forest: ``(roots, children-by-parent-id)``.

    An event whose parent id never appears (a worker whose orchestrator
    trace is missing) becomes a root rather than vanishing.
    """
    events = list(events)
    known = {ev.get("id") for ev in events}
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for ev in events:
        parent = ev.get("parent")
        if parent and parent in known:
            children.setdefault(parent, []).append(ev)
        else:
            roots.append(ev)
    return roots, children


def render_tree(
    events: Iterable[Dict[str, Any]], max_lines: int = 200
) -> List[str]:
    """Indented text rendering of the span forest (``trace view``)."""
    roots, children = span_tree(events)
    lines: List[str] = []

    def describe(ev: Dict[str, Any]) -> str:
        attrs = ev.get("attrs") or {}
        decor = " ".join(
            f"{key}={attrs[key]}"
            for key in sorted(attrs)
            if isinstance(attrs[key], (str, int, float, bool))
        )
        if ev.get("ev") == "span":
            head = f"{ev.get('name')} [{ev.get('dur', 0.0):.4f}s]"
        else:
            head = f"* {ev.get('name')}"
        tail = f" pid={ev.get('pid')}"
        return f"{head} {decor}{tail}" if decor else f"{head}{tail}"

    def walk(ev: Dict[str, Any], depth: int) -> None:
        if len(lines) >= max_lines:
            return
        lines.append("  " * depth + describe(ev))
        for child in children.get(ev.get("id"), ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if len(lines) >= max_lines:
        lines.append(f"... (truncated at {max_lines} lines)")
    return lines
