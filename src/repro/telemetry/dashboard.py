"""Live line-mode sweep dashboard (``sweep --progress``).

One ``\\r``-rewritten stderr line tracks a sweep in flight::

    sweep 37/96 | hits 12 | workers 3 | 4.1 jobs/s | eta 14s | stragglers 1

* progress and hit counts come from the executor's streaming path
  (:func:`repro.runtime.iter_jobs` yields results as they land);
* ``workers`` is the remote backend's live connection count (omitted
  for backends without one);
* the ETA comes from the :class:`~repro.runtime.scheduler.CostModel`:
  predicted seconds of unfinished jobs divided by the observed
  predicted-seconds-per-wall-second rate, so it accounts for both
  parallelism and model bias; with no cost history it falls back to a
  jobs-per-second extrapolation;
* a job is flagged a **straggler** when its measured wall-time exceeds
  3x its predicted cost -- the flag the scalability-lab roadmap item
  needs for re-dispatch experiments.

The dashboard never touches the records themselves, writes only to the
stream it was given, and throttles rendering, so it is safe to leave
on for huge sweeps.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, Sequence

STRAGGLER_FACTOR = 3.0
"""A job whose wall-time exceeds predicted * factor is a straggler."""


class SweepProgress:
    """Streaming progress renderer for one sweep run."""

    def __init__(
        self,
        stream=None,
        min_interval: float = 0.1,
        label: str = "sweep",
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.label = label
        self.total = 0
        self.done = 0
        self.hits = 0
        self.executed = 0
        self.stragglers = 0
        self.straggler_indices: List[int] = []
        self._predicted: List[Optional[float]] = []
        self._predicted_done = 0.0
        self._predicted_total = 0.0
        self._predicted_known = False
        self._backend = None
        self._started = 0.0
        self._last_render = 0.0
        self._width = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self, specs: Sequence, cost_model=None, backend=None) -> None:
        self.total = len(specs)
        self._backend = backend
        self._predicted = [
            cost_model.predict(spec.kind, spec.n)
            if cost_model is not None
            else None
            for spec in specs
        ]
        known = [cost for cost in self._predicted if cost]
        self._predicted_known = bool(known)
        self._predicted_total = sum(known)
        self._started = time.perf_counter()
        self._render(force=True)

    def update(self, index: int, record: Dict[str, Any], from_cache: bool) -> None:
        self.done += 1
        if from_cache:
            self.hits += 1
        else:
            self.executed += 1
        predicted = (
            self._predicted[index] if index < len(self._predicted) else None
        )
        if predicted:
            self._predicted_done += predicted
            seconds = record.get("trace_s")
            if (
                isinstance(seconds, (int, float))
                and seconds > predicted * STRAGGLER_FACTOR
            ):
                self.stragglers += 1
                self.straggler_indices.append(index)
        self._render()

    def finish(self) -> None:
        self._render(force=True)
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass

    # -- rendering -------------------------------------------------------------

    def eta_seconds(self) -> Optional[float]:
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        if self._predicted_known and self._predicted_done > 0:
            remaining = max(self._predicted_total - self._predicted_done, 0.0)
            rate = self._predicted_done / elapsed  # predicted-s per wall-s
            if rate > 0:
                return remaining / rate
        if self.done:
            return (self.total - self.done) * elapsed / self.done
        return None

    def line(self) -> str:
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        parts = [f"{self.label} {self.done}/{self.total}"]
        parts.append(f"hits {self.hits}")
        workers = getattr(self._backend, "active_workers", None)
        if workers is not None:
            parts.append(f"workers {workers}")
        parts.append(f"{self.done / elapsed:.1f} jobs/s")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if self.stragglers:
            parts.append(f"stragglers {self.stragglers}")
        return " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        text = self.line()
        pad = " " * max(0, self._width - len(text))
        self._width = len(text)
        try:
            self.stream.write("\r" + text + pad)
            self.stream.flush()
        except (OSError, ValueError):
            pass
