"""Experiment-harness utilities: statistics and table rendering."""

from .stats import (
    LinearFit,
    fit_rounds_vs_log2_n,
    fit_rounds_vs_log_n,
    geometric_mean,
    linear_fit,
    predicted_detection_probability,
    wilson_interval,
)
from .tables import Table, format_cell

__all__ = [
    "LinearFit",
    "Table",
    "fit_rounds_vs_log2_n",
    "fit_rounds_vs_log_n",
    "format_cell",
    "geometric_mean",
    "linear_fit",
    "predicted_detection_probability",
    "wilson_interval",
]
