"""Plain-text and markdown tables for the benchmark harness.

Every experiment prints its rows in the same format the paper's claims
are phrased in, and can additionally persist them as markdown for
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A fixed-width table with a title, headers, and typed rows."""

    def __init__(self, title: str, headers: Sequence[str]):
        """Create a table with *headers*."""
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; cells are formatted with :func:`format_cell`."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([format_cell(c) for c in cells])

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = self._widths()
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the text rendering (used by benches and the CLI)."""
        print()
        print(self.render())
        print()


def format_cell(value: Any) -> str:
    """Human formatting: floats to 3 significant places, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
