"""Statistics helpers for the experiment harness.

Small, dependency-light routines: Wilson confidence intervals for
detection rates, least-squares fits of round counts against ``log n`` and
``log^2 n`` (the E3/E12 scaling analysis), and the predicted detection
profile ``1 - (1 - gamma)^s`` from the sampling lemma.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass
class LinearFit:
    """Least-squares fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares on (xs, ys)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("xs are constant")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r2)


def fit_rounds_vs_log_n(ns: Sequence[int], rounds: Sequence[int]) -> LinearFit:
    """Fit ``rounds ~ a * log2(n) + b`` (benchmark E3)."""
    return linear_fit([math.log2(n) for n in ns], list(rounds))


def fit_rounds_vs_log2_n(ns: Sequence[int], rounds: Sequence[int]) -> LinearFit:
    """Fit ``rounds ~ a * log2(n)^2 + b`` (the MPX ablation, E12)."""
    return linear_fit([math.log2(n) ** 2 for n in ns], list(rounds))


def predicted_detection_probability(gamma: float, samples: int) -> float:
    """Sampling-lemma profile: ``1 - (1 - gamma)^s``.

    *gamma* is the violating fraction among non-tree edges and *samples*
    the number of sampled edges; the tester detects iff the sample hits a
    violating edge (each sampled edge is checked against all edges).
    """
    if not 0 <= gamma <= 1:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    return 1.0 - (1.0 - gamma) ** max(0, samples)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("values must be positive")
    return math.exp(sum(math.log(v) for v in values) / len(values))
